"""Tests for the PRF framework bridge (Appendix A / Li et al. [29])."""

from __future__ import annotations

import pytest

from repro.baselines import global_topk, probability_only, u_kranks
from repro.core import (
    attribute_expected_ranks,
    exponential_weights,
    linear_weights,
    position_weights,
    prf_rank,
    prf_scores,
    rank,
    step_weights,
)
from repro.datagen import (
    generate_attribute_relation,
    generate_tuple_relation,
)
from repro.exceptions import RankingError


class TestWeightConstructors:
    def test_linear(self):
        assert linear_weights(4).tolist() == [4.0, 3.0, 2.0, 1.0]

    def test_exponential(self):
        assert exponential_weights(3, 0.5).tolist() == [1.0, 0.5, 0.25]

    def test_step(self):
        assert step_weights(4, 2).tolist() == [1.0, 1.0, 0.0, 0.0]
        assert step_weights(2, 5).tolist() == [1.0, 1.0]

    def test_position(self):
        assert position_weights(3, 1).tolist() == [0.0, 1.0, 0.0]

    def test_validation(self):
        with pytest.raises(RankingError):
            linear_weights(0)
        with pytest.raises(RankingError):
            exponential_weights(3, 0.0)
        with pytest.raises(RankingError):
            exponential_weights(3, 1.5)
        with pytest.raises(RankingError):
            step_weights(3, -1)
        with pytest.raises(RankingError):
            position_weights(3, 3)


class TestReductions:
    """PRF recovers the known semantics under the right weights."""

    @pytest.mark.parametrize("seed", range(4))
    def test_linear_weights_equal_expected_rank_attribute(self, seed):
        relation = generate_attribute_relation(7, pdf_size=3, seed=seed)
        scores = prf_scores(relation, linear_weights(relation.size))
        ranks = attribute_expected_ranks(relation, ties="by_index")
        for tid, value in scores.items():
            assert value == pytest.approx(relation.size - ranks[tid])

    @pytest.mark.parametrize("seed", range(4))
    def test_step_weights_equal_global_topk(self, seed):
        relation = generate_tuple_relation(
            9, rule_fraction=0.4, seed=seed
        )
        assert prf_rank(
            relation, 3, step_weights(relation.size, 3)
        ).tids() == global_topk(relation, 3).tids()

    @pytest.mark.parametrize("seed", range(4))
    def test_position_weights_recover_u_kranks(self, seed):
        relation = generate_tuple_relation(
            8, rule_fraction=0.3, seed=seed
        )
        reference = u_kranks(relation, 3).tids()
        for position in range(3):
            winner = prf_rank(
                relation,
                1,
                position_weights(relation.size, position),
            ).tids()[0]
            assert winner == reference[position]

    def test_alpha_one_is_membership_probability(self):
        relation = generate_tuple_relation(
            10, rule_fraction=0.0, seed=5
        )
        by_prf = prf_rank(
            relation,
            relation.size,
            exponential_weights(relation.size, 1.0),
        )
        by_probability = probability_only(relation, relation.size)
        assert by_prf.tids() == by_probability.tids()

    def test_tuple_level_linear_weights_diverge_from_expected_rank(self):
        """In the tuple-level model the expected rank charges absent
        tuples |W| while PRF gives them weight zero, so the two can
        rank differently — the documented divergence."""
        diverged = False
        for seed in range(20):
            relation = generate_tuple_relation(
                8, rule_fraction=0.4, seed=seed
            )
            by_prf = prf_rank(
                relation,
                relation.size,
                linear_weights(relation.size),
            ).tids()
            by_expected = rank(relation, relation.size).tids()
            if by_prf != by_expected:
                diverged = True
                break
        assert diverged


class TestInterface:
    def test_callable_weights(self, fig4):
        result = prf_rank(fig4, 2, lambda position: 0.5**position)
        reference = prf_rank(fig4, 2, exponential_weights(fig4.size, 0.5))
        assert result.tids() == reference.tids()

    def test_vector_length_checked(self, fig4):
        with pytest.raises(RankingError):
            prf_scores(fig4, [1.0, 0.5])

    def test_non_finite_weights_rejected(self, fig4):
        with pytest.raises(RankingError):
            prf_scores(fig4, [1.0, float("inf"), 0.0, 0.0])

    def test_negative_k(self, fig4):
        with pytest.raises(RankingError):
            prf_rank(fig4, -1, linear_weights(fig4.size))

    def test_registered_method(self, fig4):
        result = rank(fig4, 2, method="prf_exponential", alpha=0.8)
        assert result.method == "prf_exponential[0.8]"
        assert len(result) == 2

    def test_alpha_sweep_monotone_drift(self, fig4):
        """Small alpha rewards top positions (score order); large
        alpha drifts toward probability order."""
        sharp = rank(fig4, 4, method="prf_exponential", alpha=1e-9)
        assert sharp.tids()[0] in ("t1", "t3")  # top-position lovers
        flat = rank(fig4, 4, method="prf_exponential", alpha=1.0)
        assert flat.tids()[0] == "t3"  # p = 1 dominates
