"""Session reports aggregated from capture + trace JSONL."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.engine.io import save_attribute_csv
from repro.obs.report import build_report


def _query(
    seq,
    method="expected_rank",
    wall=0.01,
    n=100,
    accessed=50,
    **extra,
):
    record = {
        "type": "query",
        "seq": seq,
        "method": method,
        "k": 5,
        "wall_seconds": wall,
        "n": n,
        "tuples_accessed": accessed,
        "dataset_digest": "d0",
        "trace_id": f"trace{seq}",
    }
    record.update(extra)
    return record


@pytest.fixture
def attribute_csv(fig2, tmp_path):
    path = tmp_path / "attr.csv"
    save_attribute_csv(fig2, path)
    return path


class TestBuildReport:
    def test_summary_counts(self):
        report = build_report(
            [
                _query(0),
                _query(1, method="median_rank"),
                {"type": "metrics"},
            ]
        )
        assert report.summary["queries"] == 2
        assert report.summary["methods"] == 2
        assert report.summary["datasets"] == 1
        assert report.exit_code() == 0

    def test_slowest_ordering_and_trace_ids(self):
        report = build_report(
            [
                _query(0, wall=0.001),
                _query(1, wall=0.5),
                _query(2, wall=0.01),
            ],
            top_n=2,
        )
        assert [entry["seq"] for entry in report.slowest] == [1, 2]
        assert report.slowest[0]["trace_id"] == "trace1"

    def test_per_method_percentiles(self):
        queries = [
            _query(index, wall=0.002) for index in range(10)
        ]
        report = build_report(queries)
        stats = report.methods["expected_rank"]
        assert stats["count"] == 10
        # The bucketed histogram returns the bucket upper bound that
        # covers the observations.
        assert stats["p50"] >= 0.002
        assert stats["p99"] >= stats["p50"]

    def test_pruning_fractions(self):
        report = build_report(
            [
                _query(0, n=100, accessed=25),
                _query(1, n=100, accessed=100),
                _query(2, n=100, accessed=None),
            ]
        )
        pruning = report.pruning
        assert pruning["queries_with_cost"] == 2
        assert pruning["mean_fraction"] == pytest.approx(0.625)
        assert pruning["full_scans"] == 1

    def test_rates_from_capture_and_trace(self):
        capture = [
            _query(0, degraded=True, attempts=3, faults_survived=2),
            _query(1),
        ]
        trace = [
            {"type": "event", "name": "robust.retry"},
            {"type": "event", "name": "robust.retry"},
            {
                "type": "metrics",
                "counters": {"robust.quarantine.rows": 4},
            },
        ]
        report = build_report(capture, trace)
        assert report.rates["degraded_rate"] == pytest.approx(0.5)
        assert report.rates["retried_rate"] == pytest.approx(0.5)
        assert report.rates["fault_survival_rate"] == pytest.approx(
            0.5
        )
        assert report.rates["quarantined_rows"] == 4
        assert report.events == {"robust.retry": 2}

    def test_span_stats_from_trace(self):
        trace = [
            {
                "type": "span",
                "span_id": "a",
                "name": "db.topk",
                "duration_seconds": 0.01,
            },
            {
                "type": "span",
                "span_id": "b",
                "name": "db.topk",
                "duration_seconds": 0.02,
            },
        ]
        report = build_report([], trace)
        assert report.spans["db.topk"]["count"] == 2
        assert report.spans["db.topk"][
            "total_seconds"
        ] == pytest.approx(0.03)

    def test_problems_flip_exit_code(self):
        report = build_report(
            [_query(0)], problems=["line 3: invalid JSON"]
        )
        assert report.exit_code() == 12
        assert "line 3" in report.describe()

    def test_empty_report_is_well_formed(self):
        report = build_report([])
        assert report.summary["queries"] == 0
        assert report.exit_code() == 0
        assert "session report" in report.describe()


class TestReportCli:
    def _capture(self, attribute_csv, tmp_path, capsys):
        out = tmp_path / "cap.jsonl"
        workload = tmp_path / "workload.jsonl"
        workload.write_text(
            '{"k": 2}\n{"k": 3, "method": "expected_score"}\n'
        )
        assert (
            main(
                [
                    "capture",
                    str(attribute_csv),
                    str(workload),
                    "--capture-out",
                    str(out),
                ]
            )
            == 0
        )
        capsys.readouterr()
        return out

    def test_text_report(self, attribute_csv, tmp_path, capsys):
        out = self._capture(attribute_csv, tmp_path, capsys)
        code = main(["report", "--capture", str(out)])
        output = capsys.readouterr().out
        assert code == 0
        assert "queries: 2" in output
        assert "method expected_rank" in output

    def test_json_report(self, attribute_csv, tmp_path, capsys):
        out = self._capture(attribute_csv, tmp_path, capsys)
        code = main(
            ["report", "--capture", str(out), "--json", "--top", "1"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["summary"]["queries"] == 2
        assert len(payload["slowest"]) == 1

    def test_needs_an_input(self, capsys):
        code = main(["report"])
        assert code == 2
        assert "--capture" in capsys.readouterr().err

    def test_corrupt_lines_warn_exit_12(
        self, attribute_csv, tmp_path, capsys
    ):
        out = self._capture(attribute_csv, tmp_path, capsys)
        with out.open("a") as handle:
            handle.write("{oops\n")
        code = main(["report", "--capture", str(out)])
        streams = capsys.readouterr()
        assert code == 12
        assert "warning:" in streams.err
        assert "queries: 2" in streams.out

    def test_combines_capture_and_trace(
        self, attribute_csv, tmp_path, capsys
    ):
        out = self._capture(attribute_csv, tmp_path, capsys)
        trace_path = tmp_path / "trace.jsonl"
        assert (
            main(
                [
                    "--metrics-out",
                    str(trace_path),
                    "topk",
                    str(attribute_csv),
                    "-k",
                    "2",
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            [
                "report",
                "--capture",
                str(out),
                "--trace",
                str(trace_path),
                "--json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["spans"]
        assert payload["sources"]["traces"] == [str(trace_path)]
