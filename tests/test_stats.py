"""Tests for the statistics toolbox (Poisson binomial, bounds, metrics)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.stats import (
    PoissonBinomialBuilder,
    binomial_pmf,
    chernoff_lower_tail,
    hoeffding_lower_tail,
    jaccard_similarity,
    kendall_tau_coefficient,
    kendall_tau_distance,
    markov_upper_tail,
    mixture_pmf,
    poisson_binomial_cdf,
    poisson_binomial_pmf,
    poisson_binomial_quantile,
    spearman_footrule,
    topk_precision,
    topk_recall,
)


class TestPoissonBinomialPmf:
    def test_empty_is_point_mass_at_zero(self):
        assert poisson_binomial_pmf([]).tolist() == [1.0]

    def test_two_fair_coins(self):
        assert poisson_binomial_pmf([0.5, 0.5]).tolist() == pytest.approx(
            [0.25, 0.5, 0.25]
        )

    def test_heterogeneous_probabilities(self):
        pmf = poisson_binomial_pmf([0.1, 0.9])
        assert pmf[0] == pytest.approx(0.9 * 0.1)
        assert pmf[1] == pytest.approx(0.1 * 0.1 + 0.9 * 0.9)
        assert pmf[2] == pytest.approx(0.1 * 0.9)

    def test_matches_binomial(self):
        pmf = poisson_binomial_pmf([0.3] * 6)
        for j in range(7):
            expected = math.comb(6, j) * 0.3**j * 0.7 ** (6 - j)
            assert pmf[j] == pytest.approx(expected)

    def test_sums_to_one(self):
        rng = np.random.default_rng(0)
        pmf = poisson_binomial_pmf(rng.uniform(size=40))
        assert pmf.sum() == pytest.approx(1.0)

    def test_degenerate_probabilities(self):
        pmf = poisson_binomial_pmf([0.0, 1.0, 1.0])
        assert pmf.tolist() == pytest.approx([0.0, 0.0, 1.0, 0.0])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            poisson_binomial_pmf([1.5])

    def test_cdf(self):
        cdf = poisson_binomial_cdf([0.5, 0.5])
        assert cdf.tolist() == pytest.approx([0.25, 0.75, 1.0])

    def test_quantile(self):
        pmf = poisson_binomial_pmf([0.5, 0.5])
        assert poisson_binomial_quantile(pmf, 0.25) == 0
        assert poisson_binomial_quantile(pmf, 0.5) == 1
        assert poisson_binomial_quantile(pmf, 0.9) == 2

    def test_quantile_rejects_bad_phi(self):
        with pytest.raises(ValueError):
            poisson_binomial_quantile([1.0], 0.0)


class TestBinomialPmf:
    def test_matches_poisson_binomial_dp(self):
        for count, probability in ((5, 0.3), (12, 0.71), (1, 0.5)):
            fast = binomial_pmf(count, probability)
            slow = poisson_binomial_pmf([probability] * count)
            assert fast == pytest.approx(slow, abs=1e-12)

    def test_degenerate_cases(self):
        assert binomial_pmf(0, 0.7).tolist() == [1.0]
        assert binomial_pmf(3, 0.0).tolist() == [1.0, 0.0, 0.0, 0.0]
        assert binomial_pmf(3, 1.0).tolist() == [0.0, 0.0, 0.0, 1.0]

    def test_large_count_stays_normalised(self):
        pmf = binomial_pmf(5000, 0.013)
        assert pmf.sum() == pytest.approx(1.0)
        assert pmf.argmax() in (64, 65, 66)  # mode near n*p = 65

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            binomial_pmf(-1, 0.5)
        with pytest.raises(ValueError):
            binomial_pmf(3, 1.2)


class TestBuilder:
    def test_incremental_matches_batch(self):
        rng = np.random.default_rng(1)
        probabilities = rng.uniform(size=25)
        builder = PoissonBinomialBuilder()
        for probability in probabilities:
            builder.add(probability)
        assert builder.pmf() == pytest.approx(
            poisson_binomial_pmf(probabilities)
        )
        assert builder.count == 25

    def test_mean_tracks_sum(self):
        builder = PoissonBinomialBuilder([0.25, 0.5])
        assert builder.mean == pytest.approx(0.75)
        assert builder.expectation() == pytest.approx(0.75)

    def test_cdf_at(self):
        builder = PoissonBinomialBuilder([0.5, 0.5])
        assert builder.cdf_at(-1) == 0.0
        assert builder.cdf_at(0) == pytest.approx(0.25)
        assert builder.cdf_at(5) == pytest.approx(1.0)

    def test_quantile(self):
        builder = PoissonBinomialBuilder([0.5, 0.5])
        assert builder.quantile(0.5) == 1


class TestMixture:
    def test_weighted_mix(self):
        mixed = mixture_pmf([(0.5, [1.0]), (0.5, [0.0, 1.0])])
        assert mixed.tolist() == pytest.approx([0.5, 0.5])

    def test_padding_to_length(self):
        mixed = mixture_pmf([(1.0, [0.4, 0.6])], length=4)
        assert mixed.tolist() == pytest.approx([0.4, 0.6, 0.0, 0.0])

    def test_rejects_bad_weights(self):
        with pytest.raises(ValueError):
            mixture_pmf([(0.7, [1.0])])
        with pytest.raises(ValueError):
            mixture_pmf([])


class TestBounds:
    def test_markov_basic(self):
        assert markov_upper_tail(2.0, 10.0) == pytest.approx(0.2)

    def test_markov_clamped(self):
        assert markov_upper_tail(50.0, 10.0) == 1.0

    def test_markov_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            markov_upper_tail(1.0, 0.0)
        with pytest.raises(ValueError):
            markov_upper_tail(-1.0, 1.0)

    def test_markov_is_sound_for_discrete_pdf(self):
        from repro.models import DiscretePDF

        pdf = DiscretePDF([1, 5, 20], [0.5, 0.3, 0.2])
        for threshold in (2, 5, 10, 25):
            assert pdf.pr_greater_equal(threshold) <= markov_upper_tail(
                pdf.expectation(), threshold
            ) + 1e-12

    def test_hoeffding_decreasing_in_deviation(self):
        small = hoeffding_lower_tail(10.0, 20, 1.0)
        large = hoeffding_lower_tail(10.0, 20, 5.0)
        assert large < small <= 1.0

    def test_hoeffding_no_deviation(self):
        assert hoeffding_lower_tail(10.0, 20, 0.0) == 1.0

    def test_hoeffding_rejects_bad_count(self):
        with pytest.raises(ValueError):
            hoeffding_lower_tail(1.0, 0, 1.0)

    def test_chernoff_above_mean_is_trivial(self):
        assert chernoff_lower_tail(5.0, 6.0) == 1.0

    def test_chernoff_sound_for_binomial(self):
        """Empirical check: bound dominates the true lower tail."""
        pmf = poisson_binomial_pmf([0.5] * 30)
        mean = 15.0
        for threshold in (5, 8, 11):
            true_tail = float(pmf[: threshold + 1].sum())
            assert true_tail <= chernoff_lower_tail(mean, threshold) + 1e-12


class TestTopKMetrics:
    def test_precision_recall(self):
        assert topk_precision(["a", "b"], ["b", "c"]) == pytest.approx(0.5)
        assert topk_recall(["a", "b"], ["b", "c", "d"]) == pytest.approx(
            1 / 3
        )

    def test_empty_answer_conventions(self):
        assert topk_precision([], ["a"]) == 1.0
        assert topk_recall(["a"], []) == 1.0

    def test_jaccard(self):
        assert jaccard_similarity(["a", "b"], ["b", "c"]) == pytest.approx(
            1 / 3
        )
        assert jaccard_similarity([], []) == 1.0

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            topk_precision(["a", "a"], ["a"])


class TestRankCorrelation:
    def test_identical_rankings(self):
        ranking = ["a", "b", "c", "d"]
        assert kendall_tau_distance(ranking, ranking) == 0
        assert kendall_tau_coefficient(ranking, ranking) == 1.0
        assert spearman_footrule(ranking, ranking) == 0

    def test_reversed_rankings(self):
        forward = ["a", "b", "c", "d"]
        backward = list(reversed(forward))
        assert kendall_tau_distance(forward, backward) == 6
        assert kendall_tau_coefficient(forward, backward) == -1.0

    def test_single_swap(self):
        assert kendall_tau_distance(["a", "b", "c"], ["b", "a", "c"]) == 1

    def test_footrule(self):
        assert spearman_footrule(["a", "b", "c"], ["c", "b", "a"]) == 4

    def test_mismatched_items_rejected(self):
        with pytest.raises(ValueError):
            kendall_tau_distance(["a", "b"], ["a", "c"])

    def test_trivial_rankings(self):
        assert kendall_tau_coefficient(["a"], ["a"]) == 1.0

    def test_distance_matches_naive_counting(self):
        import itertools
        import random

        rng = random.Random(3)
        items = list("abcdefgh")
        for _ in range(20):
            first = items[:]
            second = items[:]
            rng.shuffle(first)
            rng.shuffle(second)
            position = {item: i for i, item in enumerate(second)}
            naive = sum(
                1
                for x, y in itertools.combinations(first, 2)
                if position[x] > position[y]
            )
            assert kendall_tau_distance(first, second) == naive
