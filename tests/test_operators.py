"""Tests for the relational operators over uncertain relations."""

from __future__ import annotations

import pytest

from repro.baselines import brute_force_expected_ranks
from repro.core import rank, tuple_expected_ranks
from repro.engine import project, select, select_by_score, union_disjoint
from repro.exceptions import EngineError
from repro.models import (
    AttributeLevelRelation,
    AttributeTuple,
    DiscretePDF,
    ExclusionRule,
    TupleLevelRelation,
    TupleLevelTuple,
)


@pytest.fixture
def tagged_attribute():
    return AttributeLevelRelation(
        [
            AttributeTuple(
                "a", DiscretePDF.point(3.0), {"site": "north"}
            ),
            AttributeTuple(
                "b", DiscretePDF.point(2.0), {"site": "south"}
            ),
            AttributeTuple(
                "c", DiscretePDF.point(1.0), {"site": "north"}
            ),
        ]
    )


@pytest.fixture
def tagged_tuple():
    return TupleLevelRelation(
        [
            TupleLevelTuple("a", 9.0, 0.5, {"source": "radar"}),
            TupleLevelTuple("b", 7.0, 0.4, {"source": "visual"}),
            TupleLevelTuple("c", 5.0, 0.5, {"source": "radar"}),
            TupleLevelTuple("d", 3.0, 0.9, {"source": "visual"}),
        ],
        rules=[ExclusionRule("pair", ["a", "c"])],
    )


class TestSelect:
    def test_attribute_selection(self, tagged_attribute):
        north = select(
            tagged_attribute,
            lambda tid, attrs: attrs["site"] == "north",
        )
        assert north.tids() == ("a", "c")

    def test_tuple_selection_keeps_rule_semantics(self, tagged_tuple):
        radar = select(
            tagged_tuple,
            lambda tid, attrs: attrs["source"] == "radar",
        )
        assert radar.tids() == ("a", "c")
        assert radar.exclusive_with("a", "c")

    def test_rule_collapses_to_singleton(self, tagged_tuple):
        only_a = select(tagged_tuple, lambda tid, attrs: tid != "c")
        assert only_a.rule_of("a").is_singleton

    def test_selection_preserves_distributions(self, tagged_tuple):
        """Surviving tuples rank exactly as a fresh relation would —
        checked against the enumeration oracle."""
        visual = select(
            tagged_tuple,
            lambda tid, attrs: attrs["source"] == "visual",
        )
        fast = tuple_expected_ranks(visual)
        slow = brute_force_expected_ranks(visual)
        for tid in fast:
            assert fast[tid] == pytest.approx(slow[tid])

    def test_unsupported_type(self):
        with pytest.raises(EngineError):
            select([1, 2], lambda tid, attrs: True)  # type: ignore


class TestSelectByScore:
    def test_threshold(self, tagged_tuple):
        high = select_by_score(tagged_tuple, lambda score: score >= 5.0)
        assert high.tids() == ("a", "b", "c")
        assert high.exclusive_with("a", "c")

    def test_rejects_attribute_model(self, tagged_attribute):
        with pytest.raises(EngineError):
            select_by_score(
                tagged_attribute, lambda score: True
            )  # type: ignore[arg-type]


class TestProject:
    def test_attribute_projection(self, tagged_attribute):
        bare = project(tagged_attribute, [])
        assert bare.tuple_by_id("a").attributes == {}
        assert bare.tuple_by_id("a").score == DiscretePDF.point(3.0)

    def test_tuple_projection_keeps_rules(self, tagged_tuple):
        bare = project(tagged_tuple, [])
        assert bare.exclusive_with("a", "c")
        assert bare.tuple_by_id("d").attributes == {}

    def test_partial_projection(self, tagged_tuple):
        doubled = TupleLevelRelation(
            [
                TupleLevelTuple(
                    "x", 1.0, 1.0, {"keep": 1, "drop": 2}
                )
            ]
        )
        kept = project(doubled, ["keep"])
        assert kept.tuple_by_id("x").attributes == {"keep": 1}


class TestUnion:
    def test_attribute_union(self, tagged_attribute):
        extra = AttributeLevelRelation(
            [AttributeTuple("z", DiscretePDF.point(9.0))]
        )
        merged = union_disjoint(tagged_attribute, extra)
        assert merged.size == 4
        assert rank(merged, 1).tids() == ("z",)

    def test_tuple_union_preserves_rules(self, tagged_tuple):
        extra = TupleLevelRelation(
            [
                TupleLevelTuple("e", 8.0, 0.5),
                TupleLevelTuple("f", 6.0, 0.5),
            ],
            rules=[ExclusionRule("pair2", ["e", "f"])],
        )
        merged = union_disjoint(tagged_tuple, extra)
        assert merged.size == 6
        assert merged.exclusive_with("a", "c")
        assert merged.exclusive_with("e", "f")
        assert not merged.exclusive_with("a", "e")

    def test_clashing_rule_ids_renamed(self, tagged_tuple):
        extra = TupleLevelRelation(
            [
                TupleLevelTuple("e", 8.0, 0.5),
                TupleLevelTuple("f", 6.0, 0.5),
            ],
            rules=[ExclusionRule("pair", ["e", "f"])],
        )
        merged = union_disjoint(tagged_tuple, extra)
        assert merged.exclusive_with("e", "f")

    def test_overlapping_ids_rejected(self, tagged_tuple):
        with pytest.raises(EngineError):
            union_disjoint(tagged_tuple, tagged_tuple)

    def test_mixed_models_rejected(self, tagged_attribute, tagged_tuple):
        with pytest.raises(EngineError):
            union_disjoint(tagged_attribute, tagged_tuple)


class TestPipelines:
    def test_select_then_rank_end_to_end(self, tagged_tuple):
        """A realistic query: filter by source, then top-2 by
        expected rank."""
        visual = select(
            tagged_tuple,
            lambda tid, attrs: attrs["source"] == "visual",
        )
        result = rank(visual, 2)
        assert result.tid_set() == {"b", "d"}
