"""Strict vs lenient ingest over a malformed-input corpus.

The same corpus is loaded both ways: strict must raise
:class:`~repro.exceptions.SchemaError` naming the first offending
source line, and lenient must quarantine exactly the bad rows (with
stable codes) while loading everything salvageable.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.engine.io import (
    load_attribute_csv,
    load_json,
    load_tuple_csv,
    save_json,
)
from repro.exceptions import QuarantineError, SchemaError
from repro.robust import QuarantineLog

BAD_ATTRIBUTE_CSV = """\
tid,value,probability
t1,100,0.4
t1,70,0.6
,50,1.0
t2,nan,0.5
t2,92,0.6
t3,inf,1.0
t4,85,1.5
t5,85,0
t6,80,1.0
"""

BAD_TUPLE_CSV = """\
tid,score,probability,rule
t1,100,0.4,
t2,92,0.5,tau2
t2,80,0.5,
t3,nan,1.0,
t4,80,0.5,tau2
t5,70,2.0,
t6,60,0.5,solo
"""


@pytest.fixture
def bad_attribute_csv(tmp_path):
    path = tmp_path / "bad_attr.csv"
    path.write_text(BAD_ATTRIBUTE_CSV)
    return path


@pytest.fixture
def bad_tuple_csv(tmp_path):
    path = tmp_path / "bad_tup.csv"
    path.write_text(BAD_TUPLE_CSV)
    return path


class TestStrictMode:
    def test_attribute_csv_names_first_bad_line(self, bad_attribute_csv):
        with pytest.raises(SchemaError) as excinfo:
            load_attribute_csv(bad_attribute_csv)
        message = str(excinfo.value)
        assert str(bad_attribute_csv) in message
        assert "line 4" in message  # the empty-tid row

    def test_tuple_csv_names_first_bad_line(self, bad_tuple_csv):
        with pytest.raises(SchemaError) as excinfo:
            load_tuple_csv(bad_tuple_csv)
        message = str(excinfo.value)
        assert "line 4" in message  # the duplicate t2
        assert "duplicate" in message

    def test_nan_score_rejected(self, tmp_path):
        path = tmp_path / "nan.csv"
        path.write_text("tid,score,probability\nt1,nan,0.5\n")
        with pytest.raises(SchemaError) as excinfo:
            load_tuple_csv(path)
        assert "line 2" in str(excinfo.value)

    def test_infinite_score_rejected(self, tmp_path):
        path = tmp_path / "inf.csv"
        path.write_text("tid,value,probability\nt1,-inf,1.0\n")
        with pytest.raises(SchemaError):
            load_attribute_csv(path)

    @pytest.mark.parametrize("probability", ["1.5", "0", "-0.2", "nan"])
    def test_out_of_range_probability_rejected(
        self, tmp_path, probability
    ):
        path = tmp_path / "prob.csv"
        path.write_text(
            f"tid,score,probability\nt1,10,{probability}\n"
        )
        with pytest.raises(SchemaError):
            load_tuple_csv(path)

    def test_single_member_rule_rejected(self, tmp_path):
        path = tmp_path / "solo.csv"
        path.write_text(
            "tid,score,probability,rule\n"
            "t1,10,0.5,lonely\n"
            "t2,9,0.5,\n"
        )
        with pytest.raises(SchemaError) as excinfo:
            load_tuple_csv(path)
        assert "lonely" in str(excinfo.value)

    def test_dangling_json_rule_member_rejected(self, fig4, tmp_path):
        path = tmp_path / "rel.json"
        save_json(fig4, path)
        document = json.loads(path.read_text())
        document["rules"][0]["tids"].append("ghost")
        path.write_text(json.dumps(document))
        with pytest.raises(SchemaError) as excinfo:
            load_json(path)
        assert "ghost" in str(excinfo.value)

    def test_structural_errors_fatal_even_in_lenient(self, tmp_path):
        missing = tmp_path / "missing.csv"
        missing.write_text("alpha,beta\n1,2\n")
        with pytest.raises(SchemaError):
            load_attribute_csv(missing, mode="lenient")
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(SchemaError):
            load_tuple_csv(empty, mode="lenient")

    def test_unknown_mode_rejected(self, bad_tuple_csv):
        with pytest.raises(SchemaError):
            load_tuple_csv(bad_tuple_csv, mode="casual")


class TestLenientMode:
    def test_attribute_corpus_quarantines_and_loads_rest(
        self, bad_attribute_csv
    ):
        log = QuarantineLog()
        relation = load_attribute_csv(
            bad_attribute_csv, mode="lenient", quarantine=log
        )
        # t1 survives whole and t6 survives; the blank tid, t3 (inf),
        # t4 (p>1) and t5 (p=0) are rejected outright.  Losing t2's
        # NaN alternative leaves its pdf at 0.6 total mass, so t2
        # cascades into an invalid_distribution reject.
        assert relation.tids() == ("t1", "t6")
        assert log.by_code() == {
            "missing_tid": 1,
            "non_finite_score": 2,
            "probability_out_of_range": 2,
            "invalid_distribution": 1,
        }
        lines = {row.line_number for row in log.rows}
        assert lines == {4, 5, 6, 7, 8, 9}

    def test_tuple_corpus_quarantines_and_loads_rest(
        self, bad_tuple_csv
    ):
        log = QuarantineLog()
        relation = load_tuple_csv(
            bad_tuple_csv, mode="lenient", quarantine=log
        )
        assert relation.tids() == ("t1", "t2", "t4", "t6")
        assert log.by_code() == {
            "duplicate_tid": 1,
            "non_finite_score": 1,
            "probability_out_of_range": 1,
            "single_member_rule": 1,
        }
        # tau2 survives; t6 is kept but its single-member rule is not.
        assert relation.rule_of("t2").tids == ("t2", "t4")
        assert relation.rule_of("t6").is_singleton

    def test_reject_counts_match_bad_rows(self, bad_tuple_csv):
        log = QuarantineLog()
        relation = load_tuple_csv(
            bad_tuple_csv, mode="lenient", quarantine=log
        )
        data_rows = BAD_TUPLE_CSV.strip().splitlines()[1:]
        # Every data row is either loaded or quarantined — minus the
        # single-member-rule reject, whose tuple is loaded anyway.
        kept_rejects = sum(
            1 for row in log.rows if row.code != "single_member_rule"
        )
        assert relation.size + kept_rejects == len(data_rows)

    def test_json_dangling_member_and_single_member_rule(
        self, fig4, tmp_path
    ):
        path = tmp_path / "rel.json"
        save_json(fig4, path)
        document = json.loads(path.read_text())
        document["rules"][0]["tids"].append("ghost")
        document["rules"].append(
            {"rule_id": "solo", "tids": ["t1"]}
        )
        path.write_text(json.dumps(document))
        log = QuarantineLog()
        relation = load_json(path, mode="lenient", quarantine=log)
        assert log.by_code() == {
            "dangling_rule_member": 1,
            "single_member_rule": 1,
        }
        # The dangling member is stripped, the rest of the rule kept.
        assert relation.rule_of("t2").tids == ("t2", "t4")

    def test_json_bad_entries_quarantined(self, tmp_path):
        document = {
            "model": "tuple",
            "tuples": [
                {"tid": "t1", "score": 10.0, "probability": 0.5},
                {"tid": "t1", "score": 9.0, "probability": 0.5},
                {"tid": "t2", "score": float("nan"), "probability": 1},
                {"tid": "t3", "score": 8.0, "probability": 2.0},
                {"tid": "", "score": 7.0, "probability": 0.5},
            ],
            "rules": [],
        }
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(document).replace("NaN", '"nan"')
        )
        log = QuarantineLog()
        relation = load_json(path, mode="lenient", quarantine=log)
        assert relation.tids() == ("t1",)
        assert log.by_code() == {
            "duplicate_tid": 1,
            "non_finite_score": 1,
            "probability_out_of_range": 1,
            "missing_tid": 1,
        }

    def test_reject_log_written_as_jsonl(self, bad_tuple_csv, tmp_path):
        reject_path = tmp_path / "rejects.jsonl"
        with QuarantineLog(path=reject_path) as log:
            load_tuple_csv(
                bad_tuple_csv, mode="lenient", quarantine=log
            )
        lines = [
            json.loads(line)
            for line in reject_path.read_text().splitlines()
        ]
        assert len(lines) == len(log.rows) == 4
        assert all(line["type"] == "quarantine" for line in lines)
        duplicate = next(
            line for line in lines if line["code"] == "duplicate_tid"
        )
        assert duplicate["line_number"] == 4
        assert duplicate["raw"]["tid"] == "t2"

    def test_quarantine_limit_raises(self, bad_tuple_csv):
        log = QuarantineLog(limit=1)
        with pytest.raises(QuarantineError) as excinfo:
            load_tuple_csv(
                bad_tuple_csv, mode="lenient", quarantine=log
            )
        assert "limit of 1" in str(excinfo.value)

    def test_summary_line(self, bad_tuple_csv):
        log = QuarantineLog()
        load_tuple_csv(bad_tuple_csv, mode="lenient", quarantine=log)
        summary = log.summary()
        assert "4 row(s)" in summary
        assert "duplicate_tid=1" in summary
        assert QuarantineLog().summary() == "quarantine: empty"


class TestCliIngestFlags:
    def test_strict_topk_fails_with_schema_exit_code(
        self, bad_tuple_csv, capsys
    ):
        code = main(["topk", str(bad_tuple_csv), "-k", "2"])
        assert code == 3  # SchemaError family
        assert "line 4" in capsys.readouterr().err

    def test_lenient_topk_succeeds_and_reports(
        self, bad_tuple_csv, tmp_path, capsys
    ):
        reject_path = tmp_path / "rejects.jsonl"
        code = main(
            [
                "topk",
                str(bad_tuple_csv),
                "-k",
                "2",
                "--lenient",
                "--quarantine-out",
                str(reject_path),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "top-2" in captured.out
        assert "quarantine: 4 row(s)" in captured.err
        assert len(reject_path.read_text().splitlines()) == 4

    def test_lenient_describe_and_audit(self, bad_tuple_csv, capsys):
        assert main(["describe", str(bad_tuple_csv), "--lenient"]) == 0
        capsys.readouterr()
        assert (
            main(
                [
                    "audit",
                    str(bad_tuple_csv),
                    "--lenient",
                    "--methods",
                    "expected_rank",
                    "--max-k",
                    "2",
                ]
            )
            == 0
        )

    def test_quarantine_counters_reach_metrics_out(
        self, bad_tuple_csv, tmp_path, capsys
    ):
        out = tmp_path / "metrics.jsonl"
        code = main(
            [
                "--metrics-out",
                str(out),
                "topk",
                str(bad_tuple_csv),
                "-k",
                "2",
                "--lenient",
            ]
        )
        capsys.readouterr()
        assert code == 0
        snapshot = json.loads(out.read_text().splitlines()[-1])
        counters = snapshot["counters"]
        assert counters["robust.quarantine.rows"] == 4
        assert counters["robust.quarantine.duplicate_tid"] == 1
