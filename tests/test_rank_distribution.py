"""Unit tests for :class:`repro.core.RankDistribution`."""

from __future__ import annotations

import pytest

from repro.core import RankDistribution
from repro.exceptions import RankingError


class TestConstruction:
    def test_basic(self):
        dist = RankDistribution([0.4, 0.0, 0.6])
        assert dist.max_rank == 2
        assert dist.probability_of(0) == pytest.approx(0.4)
        assert dist.probability_of(1) == 0.0

    def test_trailing_zeros_trimmed(self):
        dist = RankDistribution([1.0, 0.0, 0.0])
        assert dist.max_rank == 0

    def test_point(self):
        dist = RankDistribution.point(3)
        assert dist.probability_of(3) == 1.0
        assert dist.expectation() == 3.0
        assert dist.median() == 3

    def test_point_rejects_negative(self):
        with pytest.raises(RankingError):
            RankDistribution.point(-1)

    def test_from_mapping(self):
        dist = RankDistribution.from_mapping({2: 0.5, 0: 0.5})
        assert dist.probability_of(2) == pytest.approx(0.5)

    def test_from_counts(self):
        dist = RankDistribution.from_counts({0: 3, 1: 1})
        assert dist.probability_of(0) == pytest.approx(0.75)

    def test_rejects_bad_mass(self):
        with pytest.raises(RankingError):
            RankDistribution([0.4, 0.4])
        with pytest.raises(RankingError):
            RankDistribution([])
        with pytest.raises(RankingError):
            RankDistribution([1.5, -0.5])

    def test_small_drift_renormalised(self):
        dist = RankDistribution([0.5, 0.5 + 1e-9])
        assert float(dist.pmf.sum()) == pytest.approx(1.0)

    def test_pmf_is_read_only(self):
        dist = RankDistribution([1.0])
        with pytest.raises(ValueError):
            dist.pmf[0] = 0.5


class TestStatistics:
    def test_expectation_figure2(self):
        """The paper's rank(t1): expectation 0*0.4 + 2*0.6 = 1.2."""
        dist = RankDistribution([0.4, 0.0, 0.6])
        assert dist.expectation() == pytest.approx(1.2)

    def test_variance(self):
        dist = RankDistribution([0.5, 0.0, 0.5])
        assert dist.expectation() == pytest.approx(1.0)
        assert dist.variance() == pytest.approx(1.0)

    def test_cdf(self):
        dist = RankDistribution([0.2, 0.3, 0.5])
        assert dist.cdf(-1) == 0.0
        assert dist.cdf(0) == pytest.approx(0.2)
        assert dist.cdf(1) == pytest.approx(0.5)
        assert dist.cdf(99) == pytest.approx(1.0)

    def test_median_definition(self):
        """Median = smallest rank with cumulative probability >= 0.5."""
        assert RankDistribution([0.4, 0.0, 0.6]).median() == 2
        assert RankDistribution([0.5, 0.5]).median() == 0
        assert RankDistribution([0.49, 0.51]).median() == 1

    def test_quantiles_monotone_in_phi(self):
        dist = RankDistribution([0.2, 0.3, 0.4, 0.1])
        quantiles = [dist.quantile(phi) for phi in (0.1, 0.3, 0.6, 0.95)]
        assert quantiles == sorted(quantiles)
        assert quantiles == [0, 1, 2, 3]

    def test_quantile_rejects_bad_phi(self):
        dist = RankDistribution([1.0])
        with pytest.raises(RankingError):
            dist.quantile(0.0)
        with pytest.raises(RankingError):
            dist.quantile(1.1)

    def test_items_skips_zero_mass(self):
        dist = RankDistribution([0.4, 0.0, 0.6])
        assert dist.items() == [(0, 0.4), (2, 0.6)]

    def test_summary(self):
        dist = RankDistribution([0.4, 0.0, 0.6])
        summary = dist.summary()
        assert summary["expectation"] == pytest.approx(1.2)
        assert summary["median"] == 2.0
        assert summary["mode"] == 2.0
        assert summary["p10"] == 0.0
        assert summary["p90"] == 2.0
        assert summary["iqr"] == pytest.approx(2.0)
        assert summary["std"] == pytest.approx(
            dist.variance() ** 0.5
        )


class TestComparison:
    def test_total_variation(self):
        first = RankDistribution([1.0])
        second = RankDistribution([0.0, 1.0])
        assert first.total_variation_distance(second) == pytest.approx(1.0)
        assert first.total_variation_distance(first) == 0.0

    def test_allclose(self):
        first = RankDistribution([0.5, 0.5])
        second = RankDistribution([0.5 + 1e-12, 0.5 - 1e-12])
        assert first.allclose(second)

    def test_equality_and_hash(self):
        first = RankDistribution([0.5, 0.5])
        second = RankDistribution([0.5, 0.5])
        assert first == second
        assert hash(first) == hash(second)

    def test_repr_lists_nonzero(self):
        text = repr(RankDistribution([0.4, 0.0, 0.6]))
        assert "(0, 0.4)" in text and "(2, 0.6)" in text
