"""Workload capture and deterministic replay."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core import rank
from repro.engine.database import ProbabilisticDatabase
from repro.engine.io import save_attribute_csv
from repro.engine.query import ResilientExecutor
from repro.obs.capture import (
    CAPTURE_SCHEMA_VERSION,
    CaptureLog,
    answer_digest,
    query_capture,
    read_jsonl,
    relation_digest,
    set_capture,
)
from repro.obs.replay import (
    EXIT_PARTIAL_INPUT,
    EXIT_REPLAY_REGRESSION,
    replay_capture,
)
from repro.robust import FaultInjector, RetryPolicy


@pytest.fixture
def attribute_csv(fig2, tmp_path):
    path = tmp_path / "attr.csv"
    save_attribute_csv(fig2, path)
    return path


@pytest.fixture
def capture_log(tmp_path):
    """A fresh ambient CaptureLog, uninstalled afterwards."""
    path = tmp_path / "capture.jsonl"
    log = CaptureLog(path)
    previous = set_capture(log)
    yield log, path
    set_capture(previous)
    log.close()


def _records(path):
    return [
        json.loads(line) for line in path.read_text().splitlines()
    ]


class TestCaptureLog:
    def test_record_fields_and_sequence(self, fig2, capture_log):
        log, path = capture_log
        first = rank(fig2, 2)
        second = rank(fig2, 3, method="expected_score")
        log.record_query(fig2, first, k=2, method="expected_rank")
        log.record_query(
            fig2, second, k=3, method="expected_score"
        )
        log.close()
        records = _records(path)
        assert [r["seq"] for r in records] == [0, 1]
        record = records[0]
        assert record["type"] == "query"
        assert record["schema_version"] == CAPTURE_SCHEMA_VERSION
        assert record["model"] == "attribute"
        assert record["n"] == fig2.size
        assert record["dataset_digest"] == relation_digest(fig2)
        assert record["k"] == 2
        assert record["method"] == "expected_rank"
        assert record["answer"] == list(first.tids())
        assert record["answer_digest"] == answer_digest(first)
        assert record["replayable"] is True
        assert record["degraded"] is False
        assert record["plan"]["method"] == "expected_rank"

    def test_dataset_digest_survives_round_trip(
        self, fig2, tmp_path
    ):
        from repro.engine.io import (
            load_attribute_csv,
            load_json,
            save_json,
        )

        path = tmp_path / "rel.json"
        save_json(fig2, path)
        assert relation_digest(load_json(path)) == relation_digest(
            fig2
        )
        # CSV coerces values to float, which is a different document;
        # but two loads of the same CSV must agree with each other.
        csv_path = tmp_path / "rel.csv"
        save_attribute_csv(fig2, csv_path)
        assert relation_digest(
            load_attribute_csv(csv_path)
        ) == relation_digest(load_attribute_csv(csv_path))

    def test_answer_digest_ignores_ulp_noise(self, fig2):
        result = rank(fig2, 3)
        baseline = answer_digest(result)
        # Same ranking, statistics perturbed below the 9-sig-digit
        # rounding: the digest must not move.
        from repro.core.result import RankedItem, TopKResult

        jittered = TopKResult(
            method=result.method,
            k=result.k,
            items=tuple(
                RankedItem(
                    tid=item.tid,
                    position=item.position,
                    statistic=None
                    if item.statistic is None
                    else item.statistic * (1 + 1e-14),
                )
                for item in result
            ),
            metadata=dict(result.metadata),
        )
        assert answer_digest(jittered) == baseline

    def test_unseeded_monte_carlo_not_replayable(
        self, fig2, capture_log
    ):
        log, path = capture_log
        result = rank(fig2, 2, method="monte_carlo")
        log.record_query(fig2, result, k=2, method="monte_carlo")
        log.close()
        assert _records(path)[0]["replayable"] is False


class TestQueryCaptureClaim:
    def test_outermost_layer_wins(self, capture_log):
        log, _ = capture_log
        with query_capture() as outer:
            assert outer is log
            with query_capture() as inner:
                assert inner is None

    def test_none_when_uninstalled(self):
        with query_capture() as capture:
            assert capture is None

    def test_database_topk_records_once(self, fig2, capture_log):
        log, path = capture_log
        db = ProbabilisticDatabase()
        db.create_relation("r", fig2)
        db.topk("r", 2, executor=ResilientExecutor())
        log.close()
        records = _records(path)
        assert len(records) == 1
        assert records[0]["relation"] == "r"
        # The executor path embedded its replayable configuration.
        assert records[0]["resilience"]["max_retries"] == 3


class TestReplay:
    def test_clean_replay_is_exit_zero(self, fig2, tmp_path):
        path = tmp_path / "capture.jsonl"
        with CaptureLog(path) as log:
            for k in (1, 2, 3):
                log.record_query(
                    fig2, rank(fig2, k), k=k, method="expected_rank"
                )
        report = replay_capture(path, fig2)
        assert report.counts() == {"ok": 3}
        assert report.exit_code() == 0

    def test_answer_regression_detected(self, fig2, tmp_path):
        path = tmp_path / "capture.jsonl"
        with CaptureLog(path) as log:
            log.record_query(
                fig2, rank(fig2, 2), k=2, method="expected_rank"
            )
        records = _records(path)
        records[0]["answer_digest"] = "deadbeefdeadbeef"
        path.write_text(
            "\n".join(json.dumps(r) for r in records) + "\n"
        )
        report = replay_capture(path, fig2)
        assert report.counts() == {"answer_regression": 1}
        assert report.exit_code() == EXIT_REPLAY_REGRESSION

    def test_dataset_mismatch_degrades(self, fig2, fig4, tmp_path):
        path = tmp_path / "capture.jsonl"
        with CaptureLog(path) as log:
            log.record_query(
                fig2, rank(fig2, 2), k=2, method="expected_rank"
            )
        report = replay_capture(path, fig4)
        assert report.counts() == {"dataset_mismatch": 1}
        assert report.exit_code() == EXIT_PARTIAL_INPUT

    def test_corrupt_line_degrades_not_crashes(
        self, fig2, tmp_path
    ):
        path = tmp_path / "capture.jsonl"
        with CaptureLog(path) as log:
            log.record_query(
                fig2, rank(fig2, 2), k=2, method="expected_rank"
            )
        with path.open("a") as handle:
            handle.write('{"type": "query", "seq": 1, "met')
        report = replay_capture(path, fig2)
        assert report.counts() == {"ok": 1}
        assert len(report.problems) == 1
        assert report.exit_code() == EXIT_PARTIAL_INPUT

    def test_non_replayable_record_skipped(self, fig2, tmp_path):
        path = tmp_path / "capture.jsonl"
        with CaptureLog(path) as log:
            log.record_query(
                fig2,
                rank(fig2, 2, method="monte_carlo"),
                k=2,
                method="monte_carlo",
            )
        report = replay_capture(path, fig2)
        assert report.counts() == {"skipped": 1}
        assert report.exit_code() == EXIT_PARTIAL_INPUT

    def test_replayed_error_is_a_verdict(self, fig2, tmp_path):
        path = tmp_path / "capture.jsonl"
        record = {
            "type": "query",
            "seq": 0,
            "k": 2,
            "method": "no_such_method",
            "answer_digest": "0" * 16,
            "dataset_digest": relation_digest(fig2),
        }
        path.write_text(json.dumps(record) + "\n")
        report = replay_capture(path, fig2)
        assert report.counts() == {"error": 1}
        assert report.exit_code() == EXIT_REPLAY_REGRESSION


class TestReplayDeterminism:
    def _chaos_capture(self, fig2, path, seed=3):
        executor = ResilientExecutor(
            retry=RetryPolicy(
                max_retries=4, base_delay=0.0, max_delay=0.0
            ),
            injector=FaultInjector(error_rate=0.2, seed=seed),
            seed=seed,
        )
        log = CaptureLog(path)
        previous = set_capture(log)
        try:
            for k in (1, 2, 3):
                executor.execute(fig2, k, method="expected_rank")
        finally:
            set_capture(previous)
            log.close()

    def test_same_seed_same_digests_twice(
        self, fig2, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FAULT_SEED", "3")
        path = tmp_path / "chaos.jsonl"
        self._chaos_capture(fig2, path)
        first = replay_capture(path, fig2)
        second = replay_capture(path, fig2)
        assert first.counts() == {"ok": 3}
        assert [r.digest_replayed for r in first.results] == [
            r.digest_replayed for r in second.results
        ]
        assert [r.digest_replayed for r in first.results] == [
            r.digest_recorded for r in first.results
        ]


class TestCaptureCli:
    def test_topk_capture_out(self, attribute_csv, tmp_path, capsys):
        out = tmp_path / "cap.jsonl"
        code = main(
            [
                "topk",
                str(attribute_csv),
                "-k",
                "2",
                "--capture-out",
                str(out),
            ]
        )
        assert code == 0
        records, problems = read_jsonl(out)
        assert problems == []
        assert len(records) == 1
        assert records[0]["relation"] == str(attribute_csv)
        assert records[0]["k"] == 2
        # Stdout is identical to an uncaptured run.
        captured_out = capsys.readouterr().out
        assert main(["topk", str(attribute_csv), "-k", "2"]) == 0
        assert capsys.readouterr().out == captured_out

    def test_capture_command_then_replay(
        self, attribute_csv, tmp_path, capsys
    ):
        workload = tmp_path / "workload.jsonl"
        workload.write_text(
            '{"k": 2, "method": "expected_rank"}\n'
            '{"k": 3, "method": "expected_score"}\n'
        )
        out = tmp_path / "cap.jsonl"
        code = main(
            [
                "capture",
                str(attribute_csv),
                str(workload),
                "--capture-out",
                str(out),
            ]
        )
        assert code == 0
        assert "captured 2 queries" in capsys.readouterr().out
        code = main(
            ["replay", str(attribute_csv), str(out), "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["counts"] == {"ok": 2}

    def test_capture_requires_capture_out(
        self, attribute_csv, tmp_path, capsys
    ):
        workload = tmp_path / "workload.jsonl"
        workload.write_text('{"k": 2}\n')
        code = main(
            ["capture", str(attribute_csv), str(workload)]
        )
        assert code == 2
        assert "--capture-out" in capsys.readouterr().err

    def test_replay_regression_exit_code(
        self, attribute_csv, tmp_path, capsys
    ):
        out = tmp_path / "cap.jsonl"
        assert (
            main(
                [
                    "topk",
                    str(attribute_csv),
                    "--capture-out",
                    str(out),
                ]
            )
            == 0
        )
        records, _ = read_jsonl(out)
        records[0]["answer_digest"] = "deadbeefdeadbeef"
        out.write_text(
            "\n".join(json.dumps(r) for r in records) + "\n"
        )
        code = main(["replay", str(attribute_csv), str(out)])
        capsys.readouterr()
        assert code == EXIT_REPLAY_REGRESSION

    def test_replay_corrupt_line_warns_exit_12(
        self, attribute_csv, tmp_path, capsys
    ):
        out = tmp_path / "cap.jsonl"
        assert (
            main(
                [
                    "topk",
                    str(attribute_csv),
                    "--capture-out",
                    str(out),
                ]
            )
            == 0
        )
        with out.open("a") as handle:
            handle.write("{not json")
        code = main(["replay", str(attribute_csv), str(out)])
        streams = capsys.readouterr()
        assert code == EXIT_PARTIAL_INPUT
        assert "warning:" in streams.err

    def test_capture_max_bytes_truncates(
        self, attribute_csv, tmp_path, capsys
    ):
        workload = tmp_path / "workload.jsonl"
        workload.write_text('{"k": 2}\n' * 10)
        out = tmp_path / "cap.jsonl"
        code = main(
            [
                "capture",
                str(attribute_csv),
                str(workload),
                "--capture-out",
                str(out),
                "--capture-max-bytes",
                "600",
            ]
        )
        assert code == 0
        streams = capsys.readouterr()
        assert "--capture-max-bytes" in streams.err
        records, problems = read_jsonl(out)
        assert problems == []
        assert records[-1]["type"] == "truncation_notice"

    def test_negative_capture_max_bytes_rejected(
        self, attribute_csv, tmp_path, capsys
    ):
        code = main(
            [
                "topk",
                str(attribute_csv),
                "--capture-out",
                str(tmp_path / "cap.jsonl"),
                "--capture-max-bytes",
                "-1",
            ]
        )
        assert code == 2
        assert "positive" in capsys.readouterr().err

    def test_capture_out_directory_must_exist(
        self, attribute_csv, tmp_path, capsys
    ):
        code = main(
            [
                "topk",
                str(attribute_csv),
                "--capture-out",
                str(tmp_path / "ghost" / "cap.jsonl"),
            ]
        )
        assert code == 2
        assert "does not exist" in capsys.readouterr().err
