"""Tests for the synthetic workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import attribute_workload, tuple_workload
from repro.datagen import (
    CORRELATION_PRESETS,
    beta_probabilities,
    copula_uniform_pairs,
    dirichlet_weights,
    generate_attribute_relation,
    generate_tuple_relation,
    iceberg_sightings,
    movie_ratings,
    normal_scores,
    resolve_rng,
    sensor_readings,
    uniform_probabilities,
    uniform_scores,
    zipf_scores,
)
from repro.exceptions import WorkloadError


class TestPrimitives:
    def test_resolve_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert resolve_rng(rng) is rng

    def test_uniform_scores_range(self):
        rng = resolve_rng(0)
        values = uniform_scores(rng, 1000, low=5.0, high=10.0)
        assert values.min() >= 5.0 and values.max() < 10.0

    def test_uniform_scores_bad_range(self):
        with pytest.raises(WorkloadError):
            uniform_scores(resolve_rng(0), 10, low=5.0, high=5.0)

    def test_zipf_scores_heavy_tail(self):
        rng = resolve_rng(1)
        values = zipf_scores(rng, 5000, alpha=1.5, scale=10.0)
        assert values.min() > 0
        # Heavy tail: the max dwarfs the median.
        assert values.max() > 10 * np.median(values)

    def test_zipf_alpha_validation(self):
        with pytest.raises(WorkloadError):
            zipf_scores(resolve_rng(0), 10, alpha=1.0)

    def test_normal_scores_clipped_positive(self):
        values = normal_scores(
            resolve_rng(2), 1000, mean=1.0, std=10.0, minimum=0.5
        )
        assert values.min() >= 0.5

    def test_probability_ranges(self):
        rng = resolve_rng(3)
        uniform = uniform_probabilities(rng, 500, low=0.1, high=0.9)
        assert 0.1 <= uniform.min() and uniform.max() <= 0.9
        beta = beta_probabilities(rng, 500)
        assert 0.0 < beta.min() and beta.max() <= 1.0

    def test_dirichlet_weights_sum_to_one(self):
        weights = dirichlet_weights(resolve_rng(4), 6)
        assert weights.sum() == pytest.approx(1.0)

    def test_copula_correlation_sign(self):
        rng = resolve_rng(5)
        u, v = copula_uniform_pairs(rng, 4000, 0.8)
        assert np.corrcoef(u, v)[0, 1] > 0.6
        u, v = copula_uniform_pairs(rng, 4000, -0.8)
        assert np.corrcoef(u, v)[0, 1] < -0.6
        u, v = copula_uniform_pairs(rng, 4000, 0.0)
        assert abs(np.corrcoef(u, v)[0, 1]) < 0.1

    def test_copula_marginals_uniform(self):
        u, v = copula_uniform_pairs(resolve_rng(6), 8000, 0.5)
        assert u.mean() == pytest.approx(0.5, abs=0.03)
        assert np.percentile(v, 25) == pytest.approx(0.25, abs=0.03)

    def test_copula_extreme_rho(self):
        u, v = copula_uniform_pairs(resolve_rng(7), 100, 1.0)
        assert np.allclose(u, v, atol=1e-6)

    def test_copula_rejects_bad_rho(self):
        with pytest.raises(WorkloadError):
            copula_uniform_pairs(resolve_rng(0), 10, 2.0)


class TestAttributeGenerator:
    def test_shape(self):
        relation = generate_attribute_relation(50, pdf_size=4, seed=0)
        assert relation.size == 50
        assert relation.max_pdf_size() == 4

    def test_values_strictly_positive(self):
        relation = generate_attribute_relation(
            100, score_distribution="normal", seed=1, mean=1.0, std=5.0
        )
        assert all(row.score.min_value > 0 for row in relation)

    def test_seed_determinism(self):
        first = generate_attribute_relation(10, seed=42)
        second = generate_attribute_relation(10, seed=42)
        for a, b in zip(first, second):
            assert a.score == b.score

    def test_unknown_distribution(self):
        with pytest.raises(WorkloadError):
            generate_attribute_relation(5, score_distribution="cauchy")

    def test_bad_parameters(self):
        with pytest.raises(WorkloadError):
            generate_attribute_relation(5, pdf_size=0)
        with pytest.raises(WorkloadError):
            generate_attribute_relation(5, spread=1.5)
        with pytest.raises(WorkloadError):
            generate_attribute_relation(-1)

    def test_zero_spread_still_valid(self):
        relation = generate_attribute_relation(
            5, pdf_size=3, spread=0.0, seed=2
        )
        for row in relation:
            assert row.score.support_size == 3  # values perturbed apart


class TestTupleGenerator:
    def test_shape_and_rules(self):
        relation = generate_tuple_relation(
            100, rule_fraction=0.5, rule_size=2, seed=0
        )
        assert relation.size == 100
        multi = [r for r in relation.rules if not r.is_singleton]
        assert len(multi) == 25  # 50 tuples grouped in pairs

    def test_rule_mass_valid(self):
        relation = generate_tuple_relation(
            200, rule_fraction=1.0, rule_size=3, seed=1,
            probability_high=1.0,
        )
        for rule in relation.rules:
            total = sum(
                relation.tuple_by_id(tid).probability for tid in rule
            )
            assert total <= 1.0 + 1e-9

    def test_correlation_positive(self):
        relation = generate_tuple_relation(
            3000, correlation="positive", seed=2
        )
        scores = np.array([row.score for row in relation])
        probabilities = np.array([row.probability for row in relation])
        assert np.corrcoef(scores, probabilities)[0, 1] > 0.4

    def test_correlation_negative(self):
        relation = generate_tuple_relation(
            3000, correlation="negative", seed=3
        )
        scores = np.array([row.score for row in relation])
        probabilities = np.array([row.probability for row in relation])
        assert np.corrcoef(scores, probabilities)[0, 1] < -0.4

    def test_explicit_rho(self):
        relation = generate_tuple_relation(100, correlation=0.5, seed=4)
        assert relation.size == 100

    def test_unknown_preset(self):
        with pytest.raises(WorkloadError):
            generate_tuple_relation(10, correlation="sideways")

    def test_zipf_scores_bounded(self):
        relation = generate_tuple_relation(
            500,
            score_distribution="zipf",
            score_low=1.0,
            score_high=100.0,
            seed=5,
        )
        scores = [row.score for row in relation]
        assert min(scores) >= 1.0
        assert max(scores) <= 100.0 + 1e-3

    def test_seed_determinism(self):
        first = generate_tuple_relation(20, seed=9)
        second = generate_tuple_relation(20, seed=9)
        for a, b in zip(first, second):
            assert a == b

    def test_presets_cover_paper_regimes(self):
        assert set(CORRELATION_PRESETS) == {
            "independent",
            "positive",
            "negative",
        }


class TestRealWorldStandins:
    def test_movie_ratings_scale(self):
        relation = movie_ratings(50, rating_levels=10, seed=0)
        assert relation.size == 50
        for row in relation:
            assert row.score.min_value >= 1
            assert row.score.max_value <= 10
            assert "title" in row.attributes

    def test_sensor_readings_positive(self):
        relation = sensor_readings(40, seed=1)
        assert all(row.score.min_value > 0 for row in relation)

    def test_iceberg_sightings_rules(self):
        relation = iceberg_sightings(60, conflict_fraction=0.5, seed=2)
        multi = [r for r in relation.rules if not r.is_singleton]
        assert len(multi) == 15
        for rule in multi:
            total = sum(
                relation.tuple_by_id(tid).probability for tid in rule
            )
            assert total <= 1.0 + 1e-9

    def test_standins_rankable(self):
        from repro.core import rank

        assert len(rank(movie_ratings(30, seed=3), 5)) == 5
        assert len(rank(iceberg_sightings(30, seed=3), 5)) == 5
        assert len(rank(sensor_readings(30, seed=3), 5)) == 5


class TestNamedWorkloads:
    def test_attribute_codes(self):
        for code in ("uu", "zipf", "norm"):
            relation = attribute_workload(code, 20)
            assert relation.size == 20

    def test_tuple_codes(self):
        for code in ("uu", "zipf", "cor", "anti"):
            relation = tuple_workload(code, 20)
            assert relation.size == 20

    def test_unknown_codes(self):
        with pytest.raises(WorkloadError):
            attribute_workload("bogus", 5)
        with pytest.raises(WorkloadError):
            tuple_workload("bogus", 5)

    def test_overrides_flow_through(self):
        relation = attribute_workload("uu", 10, pdf_size=7)
        assert relation.max_pdf_size() == 7
