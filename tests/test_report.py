"""Tests for the consolidated benchmark report generator."""

from __future__ import annotations

import json

import pytest

from repro.bench.report import baseline_section, build_report, main


@pytest.fixture
def results_dir(tmp_path):
    directory = tmp_path / "results"
    directory.mkdir()
    (directory / "e01_demo.txt").write_text("E1 table\nrow | col\n")
    (directory / "e02_other.txt").write_text("E2 table\n")
    (directory / "notes.log").write_text("ignored\n")
    return directory


class TestBuildReport:
    def test_sections_per_experiment(self, results_dir):
        report = build_report(results_dir, timestamp="T")
        assert "## e01_demo" in report
        assert "## e02_other" in report
        assert "E1 table" in report
        assert "ignored" not in report
        assert "Generated: T" in report

    def test_ordering_is_stable(self, results_dir):
        report = build_report(results_dir, timestamp="T")
        assert report.index("e01_demo") < report.index("e02_other")

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            build_report(tmp_path / "ghost")

    def test_empty_directory(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ValueError):
            build_report(empty)

    def test_baseline_section_appended(self, results_dir, tmp_path):
        baseline = tmp_path / "BENCH_baseline.json"
        baseline.write_text(json.dumps({
            "metrics": {
                "t_erank/uu/n=4000/seconds": {
                    "kind": "seconds", "value": 0.25,
                },
                "t_erank_prune/uu/k=10/tuples_accessed": {
                    "kind": "count", "value": 358.0,
                },
            },
            "environment": {"python": "3.11.7"},
        }))
        report = build_report(
            results_dir, timestamp="T", baseline=baseline
        )
        assert "## Perf-smoke baseline" in report
        assert "`t_erank/uu/n=4000/seconds` | seconds | 0.25" in report
        assert "358" in report
        assert "python=3.11.7" in report

    def test_baseline_section_rejects_non_baseline_json(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError, match="metrics"):
            baseline_section(bogus)


class TestMain:
    def test_writes_default_output(self, results_dir, capsys):
        assert main([str(results_dir)]) == 0
        output = results_dir / "REPORT.md"
        assert output.exists()
        assert "e01_demo" in output.read_text()

    def test_explicit_output_path(self, results_dir, tmp_path):
        target = tmp_path / "custom.md"
        assert main([str(results_dir), str(target)]) == 0
        assert target.exists()

    def test_error_exit_code(self, tmp_path, capsys):
        assert main([str(tmp_path / "ghost")]) == 1
        assert "error:" in capsys.readouterr().err
