"""Tests for materialized ranking views."""

from __future__ import annotations

import pytest

from repro.engine import MaintainedTupleStore, RankingView
from repro.exceptions import EngineError


@pytest.fixture
def store():
    s = MaintainedTupleStore()
    s.bulk_insert(
        [("a", 10.0, 0.9), ("b", 8.0, 0.8), ("c", 6.0, 0.7)]
    )
    return s


class TestRankingView:
    def test_initial_read(self, store):
        view = RankingView(store, k=2)
        assert view.peek() is None
        assert view.current().tids() == ("a", "b")
        assert view.refresh_count == 1

    def test_cache_hit_without_mutation(self, store):
        view = RankingView(store, k=2)
        first = view.current()
        second = view.current()
        assert first is second
        assert view.refresh_count == 1
        assert not view.stale

    def test_mutation_marks_stale_and_refreshes(self, store):
        view = RankingView(store, k=2)
        view.current()
        store.update_score("c", 20.0)
        assert view.stale
        assert view.current().tids()[0] == "c"
        assert view.refresh_count == 2

    def test_every_mutation_kind_invalidates(self, store):
        view = RankingView(store, k=1)
        view.current()
        store.insert("d", score=1.0, probability=0.5)
        assert view.stale
        view.current()
        store.delete("d")
        assert view.stale
        view.current()
        store.update_probability("a", 0.1)
        assert view.stale

    def test_multiple_views_share_store(self, store):
        by_expected = RankingView(store, k=2)
        by_median = RankingView(store, k=2, method="median_rank")
        assert by_expected.current().method == "expected_rank"
        assert by_median.current().method == "median_rank"
        store.update_score("b", 30.0)
        assert by_expected.stale and by_median.stale

    def test_manual_invalidate(self, store):
        view = RankingView(store, k=1)
        view.current()
        view.invalidate()
        assert view.peek() is None
        view.current()
        assert view.refresh_count == 2

    def test_options_forwarded(self, store):
        view = RankingView(
            store, k=2, method="quantile_rank", phi=0.75
        )
        assert view.current().metadata["phi"] == 0.75

    def test_negative_k_rejected(self, store):
        with pytest.raises(EngineError):
            RankingView(store, k=-1)

    def test_repr_reports_state(self, store):
        view = RankingView(store, k=1)
        assert "stale" in repr(view)
        view.current()
        assert "fresh" in repr(view)
