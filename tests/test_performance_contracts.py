"""Coarse performance contracts.

Not micro-benchmarks (those live in ``benchmarks/``) but regression
tripwires: if an accidental change turns an ``O(N log N)`` pass
quadratic, these generous wall-clock ceilings catch it in the unit
suite.  Bounds are ~20x looser than observed times on a container, so
slow CI machines still pass.
"""

from __future__ import annotations

import time


from repro.bench import attribute_workload, tuple_workload
from repro.core import (
    attribute_expected_ranks,
    attribute_expected_ranks_vectorized,
    t_erank_prune,
    tuple_expected_ranks,
)


def elapsed(function) -> float:
    start = time.perf_counter()
    function()
    return time.perf_counter() - start


class TestContracts:
    def test_a_erank_stays_quasilinear(self):
        relation = attribute_workload("uu", 10_000)
        assert elapsed(
            lambda: attribute_expected_ranks(relation)
        ) < 6.0

    def test_vectorized_a_erank_handles_100k(self):
        relation = attribute_workload("uu", 100_000, pdf_size=3)
        assert elapsed(
            lambda: attribute_expected_ranks_vectorized(relation)
        ) < 10.0

    def test_t_erank_handles_50k(self):
        relation = tuple_workload("uu", 50_000)
        assert elapsed(
            lambda: tuple_expected_ranks(relation)
        ) < 6.0

    def test_t_erank_prune_is_sublinear_in_practice(self):
        relation = tuple_workload("cor", 50_000)
        result = None

        def run():
            nonlocal result
            result = t_erank_prune(relation, 10)

        assert elapsed(run) < 4.0
        assert result.metadata["tuples_accessed"] < relation.size // 5

    def test_growth_ratio_sanity(self):
        """Doubling N must not quadruple A-ERank's time (with slack)."""
        small = attribute_workload("uu", 4000)
        large = attribute_workload("uu", 8000)
        small_time = min(
            elapsed(lambda: attribute_expected_ranks(small))
            for _ in range(3)
        )
        large_time = min(
            elapsed(lambda: attribute_expected_ranks(large))
            for _ in range(3)
        )
        assert large_time < 3.5 * max(small_time, 1e-4)
