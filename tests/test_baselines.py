"""Tests for the prior-work baselines against the enumeration oracles."""

from __future__ import annotations

import pytest

from repro.baselines import (
    brute_force_rank_position_probabilities,
    brute_force_topk_answer_probabilities,
    brute_force_topk_probabilities,
    expected_score,
    expected_scores,
    global_topk,
    probability_only,
    pt_k,
    pt_k_scan,
    rank_position_probabilities,
    topk_probabilities,
    u_kranks,
    u_topk,
)
from repro.datagen import (
    generate_attribute_relation,
    generate_tuple_relation,
)
from repro.exceptions import RankingError, UnsupportedModelError
from repro.models import (
    TupleLevelRelation,
    TupleLevelTuple,
)


class TestRankPositionProbabilities:
    @pytest.mark.parametrize("seed", range(5))
    def test_attribute_against_oracle(self, seed):
        relation = generate_attribute_relation(5, pdf_size=3, seed=seed)
        fast = rank_position_probabilities(relation)
        slow = brute_force_rank_position_probabilities(relation)
        for tid in relation.tids():
            assert fast[tid] == pytest.approx(slow[tid], abs=1e-9)

    @pytest.mark.parametrize("seed", range(5))
    def test_tuple_against_oracle(self, seed):
        relation = generate_tuple_relation(
            7, rule_fraction=0.6, seed=seed
        )
        fast = rank_position_probabilities(relation)
        slow = brute_force_rank_position_probabilities(relation)
        for tid in relation.tids():
            assert fast[tid] == pytest.approx(slow[tid], abs=1e-9)

    def test_tuple_rows_sum_to_probability(self, fig4):
        table = rank_position_probabilities(fig4)
        for row in fig4:
            assert float(table[row.tid].sum()) == pytest.approx(
                row.probability
            )

    def test_attribute_rows_sum_to_one(self, fig2):
        table = rank_position_probabilities(fig2)
        for tid in fig2.tids():
            assert float(table[tid].sum()) == pytest.approx(1.0)


class TestTopkProbabilities:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_against_oracle(self, fig4, k):
        fast = topk_probabilities(fig4, k)
        slow = brute_force_topk_probabilities(fig4, k)
        for tid in fig4.tids():
            assert fast[tid] == pytest.approx(slow[tid], abs=1e-9)

    def test_monotone_in_k(self, fig4):
        previous = topk_probabilities(fig4, 1)
        for k in (2, 3, 4):
            current = topk_probabilities(fig4, k)
            for tid in current:
                assert current[tid] >= previous[tid] - 1e-12
            previous = current

    def test_k_n_equals_membership_probability(self, fig4):
        full = topk_probabilities(fig4, fig4.size)
        for row in fig4:
            assert full[row.tid] == pytest.approx(row.probability)


class TestUTopk:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_tuple_search_matches_enumeration(self, seed, k):
        relation = generate_tuple_relation(
            7, rule_fraction=0.6, seed=seed
        )
        support = brute_force_topk_answer_probabilities(relation, k)
        best = max(support.values())
        result = u_topk(relation, k)
        assert result.metadata["answer_probability"] == pytest.approx(
            best
        )
        assert support[result.tids()] == pytest.approx(best)

    def test_attribute_enumeration_route(self, fig2):
        result = u_topk(fig2, 1)
        assert result.metadata["estimator"] == "enumeration"

    def test_attribute_monte_carlo_route(self):
        relation = generate_attribute_relation(
            30, pdf_size=4, seed=0
        )  # 4^30 worlds: sampling territory
        result = u_topk(relation, 2, samples=4000, rng=5)
        assert result.metadata["estimator"] == "monte_carlo"
        assert len(result) == 2

    def test_answer_may_be_short_on_small_worlds(self):
        relation = TupleLevelRelation(
            [TupleLevelTuple("a", 5.0, 0.1)]
        )
        # The empty world has probability 0.9, so the most likely
        # top-2 answer is empty — the paper's exact-k violation.
        result = u_topk(relation, 2)
        assert result.tids() == ()
        assert result.metadata["answer_probability"] == pytest.approx(0.9)

    def test_certain_data_reduces_to_topk(self, certain_tuple):
        assert u_topk(certain_tuple, 2).tids() == ("a", "b")

    def test_negative_k_rejected(self, fig4):
        with pytest.raises(RankingError):
            u_topk(fig4, -1)


class TestUkRanks:
    def test_exact_k_entries(self, fig4):
        assert len(u_kranks(fig4, 3)) == 3

    def test_winner_probabilities_match_oracle(self, fig4):
        table = brute_force_rank_position_probabilities(fig4)
        result = u_kranks(fig4, 2)
        for item in result:
            best = max(row[item.position] for row in table.values())
            assert item.statistic == pytest.approx(best)

    def test_containment_prefix(self, fig4):
        smaller = u_kranks(fig4, 2)
        larger = u_kranks(fig4, 3)
        assert larger.tids()[:2] == smaller.tids()

    def test_certain_data_reduces_to_topk(self, certain_attribute):
        assert u_kranks(certain_attribute, 3).tids() == ("a", "b", "c")


class TestPTk:
    def test_threshold_filters(self, fig4):
        generous = pt_k(fig4, 2, threshold=0.05)
        strict = pt_k(fig4, 2, threshold=0.9)
        assert len(generous) >= len(strict)

    def test_statistics_are_topk_probabilities(self, fig4):
        result = pt_k(fig4, 2, threshold=0.1)
        oracle = brute_force_topk_probabilities(fig4, 2)
        for item in result:
            assert item.statistic == pytest.approx(oracle[item.tid])

    def test_all_reported_pass_threshold(self, fig4):
        result = pt_k(fig4, 2, threshold=0.45)
        assert all(item.statistic >= 0.45 for item in result)

    def test_invalid_threshold(self, fig4):
        with pytest.raises(RankingError):
            pt_k(fig4, 2, threshold=0.0)
        with pytest.raises(RankingError):
            pt_k(fig4, 2, threshold=1.5)

    def test_scan_matches_exact_answer_set(self):
        relation = generate_tuple_relation(300, seed=4)
        exact = pt_k(relation, 10, threshold=0.3)
        scanned = pt_k_scan(relation, 10, threshold=0.3)
        assert scanned.tid_set() == exact.tid_set()

    def test_scan_prunes(self):
        relation = generate_tuple_relation(2000, seed=4)
        scanned = pt_k_scan(relation, 10, threshold=0.3)
        assert scanned.metadata["tuples_accessed"] < relation.size

    def test_scan_requires_tuple_level(self, fig2):
        with pytest.raises(RankingError):
            pt_k_scan(fig2, 2, threshold=0.5)  # type: ignore[arg-type]


class TestGlobalTopk:
    def test_exactly_k(self, fig4):
        assert len(global_topk(fig4, 2)) == 2

    def test_ranked_by_topk_probability(self, fig4):
        result = global_topk(fig4, 2)
        statistics = [item.statistic for item in result]
        assert statistics == sorted(statistics, reverse=True)

    def test_degenerates_to_probability_for_large_k(self):
        """As k -> N the statistic becomes the membership probability."""
        relation = generate_tuple_relation(
            12, rule_fraction=0.0, seed=9
        )
        result = global_topk(relation, relation.size)
        by_probability = probability_only(relation, relation.size)
        assert result.tids() == by_probability.tids()

    def test_certain_data_reduces_to_topk(self, certain_tuple):
        assert global_topk(certain_tuple, 2).tids() == ("a", "b")


class TestSimpleBaselines:
    def test_expected_score_attribute(self, fig2):
        scores = expected_scores(fig2)
        assert scores["t1"] == pytest.approx(82.0)
        assert expected_score(fig2, 3).tids() == ("t2", "t3", "t1")

    def test_expected_score_tuple_ignores_rules(self, fig4):
        scores = expected_scores(fig4)
        assert scores["t1"] == pytest.approx(40.0)
        assert scores["t3"] == pytest.approx(85.0)

    def test_expected_score_value_sensitivity(self):
        """The paper's objection: a huge unlikely score wins."""
        relation = TupleLevelRelation(
            [
                TupleLevelTuple("lottery", 1_000_000.0, 0.001),
                TupleLevelTuple("solid", 100.0, 0.99),
            ]
        )
        assert expected_score(relation, 1).tids() == ("lottery",)

    def test_probability_only(self, fig4):
        assert probability_only(fig4, 4).tids() == (
            "t3",
            "t2",
            "t4",
            "t1",
        )

    def test_probability_only_rejects_attribute_model(self, fig2):
        with pytest.raises(UnsupportedModelError):
            probability_only(fig2, 1)  # type: ignore[arg-type]
