"""The query EXPLAIN API: reports, schema, and trace stitching."""

from __future__ import annotations

import json

import pytest

from repro.engine.query import ResilientExecutor, TopKPlanner
from repro.obs import (
    EXPLAIN_SCHEMA,
    MetricsRegistry,
    NullSink,
    explain,
    get_registry,
    get_sink,
    set_registry,
    set_sink,
    validate_report,
)
from repro.robust import FaultInjector, RetryPolicy


@pytest.fixture
def ambient():
    """Pin the ambient registry/sink so explain's swap is observable."""
    registry = MetricsRegistry(enabled=False)
    previous_registry = set_registry(registry)
    previous_sink = set_sink(NullSink())
    yield registry
    set_sink(previous_sink)
    set_registry(previous_registry)


@pytest.fixture
def workload():
    from repro.bench.workloads import tuple_workload

    return tuple_workload("uu", 120, seed=5)


class TestExplainReport:
    def test_report_satisfies_the_published_schema(
        self, ambient, workload
    ):
        report = explain(workload, 5)
        validate_report(report.to_dict())
        validate_report(json.loads(report.to_json()), EXPLAIN_SCHEMA)

    def test_plan_section_names_method_and_reason(
        self, ambient, workload
    ):
        report = explain(workload, 5, expensive_access=True)
        assert report.plan["method"] == "expected_rank_prune"
        assert "pruned scan" in report.plan["reason"]
        cheap = explain(workload, 5, expensive_access=False)
        assert cheap.plan["method"] == "expected_rank"
        assert "cheap" in cheap.plan["reason"]

    def test_cost_section_reports_accesses_vs_n(
        self, ambient, workload
    ):
        report = explain(workload, 5)
        execution = report.execution
        assert execution["executed"] is True
        assert 0 < execution["tuples_accessed"] <= workload.size
        assert execution["fraction_accessed"] == pytest.approx(
            execution["tuples_accessed"] / workload.size
        )
        assert len(execution["answer"]) == 5

    def test_pruned_run_carries_bound_trajectory(
        self, ambient, workload
    ):
        report = explain(workload, 5)
        assert report.pruning is not None
        trajectory = report.pruning["trajectory"]
        assert trajectory
        assert (
            trajectory[-1]["accessed"]
            == report.execution["tuples_accessed"]
        )

    def test_stage_timings_have_percentiles(self, ambient, workload):
        report = explain(workload, 5)
        assert "explain.query" in report.stages
        assert "query.execute" in report.stages
        for stage in report.stages.values():
            assert stage["count"] >= 1
            assert {"p50", "p95", "p99"} <= set(stage)
            assert stage["p50"] <= stage["p99"]

    def test_every_trace_record_shares_the_trace_id(
        self, ambient, workload
    ):
        report = explain(workload, 5)
        assert report.trace
        assert {
            record["trace_id"] for record in report.trace
        } == {report.trace_id}

    def test_dry_run_plans_without_executing(self, ambient, workload):
        report = explain(workload, 5, dry_run=True)
        assert report.execution["executed"] is False
        assert report.execution["dry_run"] is True
        assert report.execution["answer"] == []
        assert report.execution["tuples_accessed"] is None
        assert report.plan["method"]
        validate_report(report.to_dict())
        assert "dry run" in report.describe()

    def test_degradation_shows_up_as_events(self, ambient, workload):
        executor = ResilientExecutor(
            retry=RetryPolicy(max_retries=1, base_delay=0.0),
            injector=FaultInjector(error_rate=1.0, seed=1),
            sleep=lambda _seconds: None,
        )
        report = explain(workload, 5, executor=executor)
        names = [event["name"] for event in report.events]
        assert "retry.exhausted" in names
        assert "robust.degrade" in names
        assert "robust.fallback" in names
        assert report.execution["degraded"] is True
        assert report.execution["fallback_method"] == "mc_expected_rank"
        validate_report(report.to_dict())

    def test_ambient_registry_and_sink_restored(
        self, ambient, workload
    ):
        sink_before = get_sink()
        explain(workload, 3)
        assert get_registry() is ambient
        assert get_sink() is sink_before
        # The swapped-in registry never leaked counters into ours.
        assert ambient.snapshot()["counters"] == {}

    def test_describe_mentions_the_essentials(self, ambient, workload):
        text = explain(workload, 5).describe()
        assert "EXPLAIN" in text
        assert "trace_id=" in text
        assert "plan" in text
        assert "tuples accessed" in text

    def test_explicit_planner_overrides_default(
        self, ambient, workload
    ):
        report = explain(
            workload,
            5,
            planner=TopKPlanner(expensive_access=False),
            expensive_access=True,
        )
        assert report.plan["method"] == "expected_rank"


class TestResilienceEnvelope:
    def test_plain_runs_report_null(self, ambient, workload):
        report = explain(workload, 5)
        assert report.resilience is None
        assert report.to_dict()["resilience"] is None
        assert "resilience" not in report.describe()

    def test_executor_config_lands_in_the_envelope(
        self, ambient, workload
    ):
        executor = ResilientExecutor(
            retry=RetryPolicy(max_retries=2, base_delay=0.0),
            deadline_ms=500.0,
            injector=FaultInjector(error_rate=0.25, seed=9),
            sleep=lambda _seconds: None,
        )
        report = explain(workload, 5, executor=executor)
        envelope = report.resilience
        assert envelope["deadline_ms"] == 500.0
        assert envelope["max_retries"] == 2
        assert envelope["injector"]["error_rate"] == 0.25
        validate_report(report.to_dict())
        rendered = report.describe()
        assert "deadline_ms=500" in rendered
        assert "max_retries=2" in rendered
        assert "inject_faults=0.25" in rendered

    def test_breaker_states_surface_post_run(
        self, ambient, workload
    ):
        from repro.robust import BreakerBoard

        board = BreakerBoard(min_calls=1, window=4)
        executor = ResilientExecutor(
            retry=RetryPolicy(max_retries=0, base_delay=0.0),
            injector=FaultInjector(error_rate=1.0, seed=1),
            breakers=board,
            sleep=lambda _seconds: None,
        )
        report = explain(workload, 5, executor=executor)
        breakers = report.resilience["breakers"]
        assert breakers.get("exact") == "open"
        assert "breaker.exact=open" in report.describe()
        validate_report(report.to_dict())


class TestValidateReport:
    def test_missing_required_key_is_named(self, ambient, workload):
        report = explain(workload, 3).to_dict()
        del report["trace_id"]
        with pytest.raises(ValueError, match="trace_id"):
            validate_report(report)

    def test_wrong_type_is_named_with_its_path(self):
        with pytest.raises(ValueError, match=r"\$\.k"):
            validate_report(
                {"k": "three"},
                {
                    "type": "object",
                    "properties": {"k": {"type": "integer"}},
                },
            )

    def test_enum_mismatch_rejected(self):
        with pytest.raises(ValueError, match="not in"):
            validate_report(
                {"model": "graph"},
                {
                    "type": "object",
                    "properties": {"model": {"enum": ["attribute"]}},
                },
            )

    def test_array_items_checked_by_index(self):
        with pytest.raises(ValueError, match=r"\[1\]"):
            validate_report(
                [1, "two"],
                {"type": "array", "items": {"type": "integer"}},
            )

    def test_bool_is_not_an_integer(self):
        with pytest.raises(ValueError):
            validate_report(True, {"type": "integer"})
