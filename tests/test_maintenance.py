"""Tests for the incrementally maintained tuple store."""

from __future__ import annotations

import random

import pytest

from repro.core import t_erank, tuple_expected_ranks
from repro.engine import MaintainedTupleStore
from repro.exceptions import EngineError, InvalidRuleError


@pytest.fixture
def store():
    s = MaintainedTupleStore()
    s.insert("a", score=10.0, probability=0.5)
    s.insert("b", score=8.0, probability=1.0)
    s.insert("c", score=6.0, probability=0.4, rule="pair")
    s.insert("d", score=4.0, probability=0.5, rule="pair")
    return s


class TestUpdates:
    def test_expected_world_size_maintained(self, store):
        assert store.expected_world_size() == pytest.approx(2.4)
        store.delete("b")
        assert store.expected_world_size() == pytest.approx(1.4)
        store.insert("e", score=1.0, probability=0.25)
        assert store.expected_world_size() == pytest.approx(1.65)
        store.update_probability("a", 0.9)
        assert store.expected_world_size() == pytest.approx(2.05)
        store.validate()

    def test_duplicate_insert_rejected(self, store):
        with pytest.raises(EngineError):
            store.insert("a", score=1.0, probability=0.1)

    def test_rule_overflow_rejected(self, store):
        with pytest.raises(InvalidRuleError):
            store.insert("e", score=1.0, probability=0.2, rule="pair")
        with pytest.raises(InvalidRuleError):
            store.update_probability("c", 0.6)

    def test_delete_unknown(self, store):
        with pytest.raises(EngineError):
            store.delete("zzz")

    def test_delete_frees_rule_mass(self, store):
        store.delete("c")
        store.insert("e", score=2.0, probability=0.5, rule="pair")
        store.validate()

    def test_score_update_repairs_order(self, store):
        assert store.score_order() == ["a", "b", "c", "d"]
        store.update_score("d", 9.0)
        assert store.score_order() == ["a", "d", "b", "c"]
        store.validate()

    def test_membership(self, store):
        assert "a" in store
        assert "zzz" not in store
        assert len(store) == 4


class TestSnapshots:
    def test_snapshot_matches_contents(self, store):
        relation = store.snapshot()
        assert relation.size == 4
        assert relation.rule_of("c").tids == ("c", "d")
        assert relation.expected_world_size() == pytest.approx(2.4)

    def test_snapshot_of_empty_store(self):
        with pytest.raises(EngineError):
            MaintainedTupleStore().snapshot()

    def test_topk_through_store(self, store):
        result = store.topk(2)
        reference = t_erank(store.snapshot(), 2)
        assert result.tids() == reference.tids()

    def test_from_relation_round_trip(self, store):
        relation = store.snapshot()
        rebuilt = MaintainedTupleStore.from_relation(relation)
        assert rebuilt.expected_world_size() == pytest.approx(
            relation.expected_world_size()
        )
        assert rebuilt.snapshot().tids() == relation.tids()

    def test_bulk_insert(self):
        s = MaintainedTupleStore()
        s.bulk_insert(
            (f"t{i}", float(i), 0.5) for i in range(10)
        )
        assert len(s) == 10
        assert s.expected_world_size() == pytest.approx(5.0)


class TestRandomisedWorkload:
    def test_interleaved_updates_stay_consistent(self):
        """A churn test: random inserts / deletes / updates keep the
        maintained aggregates equal to from-scratch recomputation, and
        queries over snapshots equal direct T-ERank."""
        rng = random.Random(0)
        store = MaintainedTupleStore()
        alive: list[str] = []
        counter = 0
        for step in range(300):
            action = rng.random()
            if action < 0.5 or not alive:
                tid = f"t{counter}"
                counter += 1
                store.insert(
                    tid,
                    score=rng.uniform(1, 100),
                    probability=rng.uniform(0.05, 1.0),
                )
                alive.append(tid)
            elif action < 0.7:
                tid = alive.pop(rng.randrange(len(alive)))
                store.delete(tid)
            elif action < 0.85:
                store.update_probability(
                    rng.choice(alive), rng.uniform(0.05, 1.0)
                )
            else:
                store.update_score(
                    rng.choice(alive), rng.uniform(1, 100)
                )
            if step % 50 == 49:
                store.validate()
                snapshot = store.snapshot()
                direct = tuple_expected_ranks(snapshot)
                queried = store.topk(min(3, len(snapshot)))
                for item in queried:
                    assert item.statistic == pytest.approx(
                        direct[item.tid]
                    )
