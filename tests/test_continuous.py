"""Tests for continuous score distributions (paper Appendix A)."""

from __future__ import annotations

import math
import random

import pytest

from repro.core import attribute_expected_ranks
from repro.exceptions import InvalidDistributionError
from repro.models import (
    AttributeLevelRelation,
    AttributeTuple,
    ExponentialScore,
    GaussianScore,
    UniformScore,
)
from repro.models.continuous import pr_greater


class TestUniformScore:
    def test_cdf(self):
        score = UniformScore(0.0, 10.0)
        assert score.cdf(-1.0) == 0.0
        assert score.cdf(5.0) == pytest.approx(0.5)
        assert score.cdf(11.0) == 1.0

    def test_quantile_inverts_cdf(self):
        score = UniformScore(3.0, 7.0)
        for probability in (0.1, 0.5, 0.9):
            assert score.cdf(
                score.quantile(probability)
            ) == pytest.approx(probability)

    def test_mean(self):
        assert UniformScore(2.0, 4.0).mean() == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(InvalidDistributionError):
            UniformScore(5.0, 5.0)


class TestGaussianScore:
    def test_cdf_symmetry(self):
        score = GaussianScore(10.0, 2.0)
        assert score.cdf(10.0) == pytest.approx(0.5)
        assert score.cdf(12.0) + score.cdf(8.0) == pytest.approx(1.0)

    def test_quantile_inverts_cdf(self):
        score = GaussianScore(0.0, 1.0)
        for probability in (0.01, 0.25, 0.5, 0.75, 0.99):
            assert score.cdf(
                score.quantile(probability)
            ) == pytest.approx(probability, abs=1e-9)

    def test_known_quantiles(self):
        standard = GaussianScore(0.0, 1.0)
        assert standard.quantile(0.975) == pytest.approx(1.95996, abs=1e-4)

    def test_validation(self):
        with pytest.raises(InvalidDistributionError):
            GaussianScore(0.0, 0.0)


class TestExponentialScore:
    def test_cdf_and_quantile(self):
        score = ExponentialScore(rate=0.5, origin=1.0)
        assert score.cdf(1.0) == 0.0
        median = score.quantile(0.5)
        assert score.cdf(median) == pytest.approx(0.5)
        assert median == pytest.approx(1.0 + math.log(2.0) / 0.5)

    def test_mean(self):
        assert ExponentialScore(rate=2.0).mean() == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(InvalidDistributionError):
            ExponentialScore(rate=0.0)


class TestPrGreater:
    def test_gaussian_closed_form(self):
        first = GaussianScore(1.0, 1.0)
        second = GaussianScore(0.0, 1.0)
        # X - Y ~ N(1, 2): Pr[X > Y] = Phi(1 / sqrt(2)).
        phi = 0.5 * (1.0 + math.erf(1.0 / math.sqrt(2.0) / math.sqrt(2.0)))
        assert pr_greater(first, second) == pytest.approx(phi)

    def test_identical_gaussians_half(self):
        score = GaussianScore(3.0, 2.0)
        assert pr_greater(score, score) == pytest.approx(0.5)

    def test_exponential_closed_form(self):
        fast = ExponentialScore(rate=2.0)
        slow = ExponentialScore(rate=1.0)
        # Pr[fast > slow] = rate_slow / (rate_fast + rate_slow) = 1/3.
        assert pr_greater(fast, slow) == pytest.approx(1.0 / 3.0)

    def test_numeric_path_matches_uniform_formula(self):
        first = UniformScore(0.0, 1.0)
        second = UniformScore(0.0, 1.0)
        assert pr_greater(first, second) == pytest.approx(0.5, abs=1e-3)

    def test_numeric_path_monte_carlo(self):
        first = UniformScore(0.0, 2.0)
        second = GaussianScore(1.0, 0.5)
        rng = random.Random(0)
        hits = 0
        trials = 60_000
        for _ in range(trials):
            x = first.quantile(max(min(rng.random(), 1 - 1e-12), 1e-12))
            y = second.quantile(max(min(rng.random(), 1 - 1e-12), 1e-12))
            hits += x > y
        assert pr_greater(first, second) == pytest.approx(
            hits / trials, abs=0.01
        )


class TestDiscretization:
    def test_equal_probability_buckets(self):
        pdf = UniformScore(0.0, 1.0).discretize(4)
        assert pdf.support_size == 4
        assert all(
            weight == pytest.approx(0.25)
            for weight in pdf.probabilities
        )
        assert pdf.values == pytest.approx((0.125, 0.375, 0.625, 0.875))

    def test_mean_preserved_in_the_limit(self):
        score = GaussianScore(5.0, 2.0)
        coarse = score.discretize(4)
        fine = score.discretize(256)
        assert abs(fine.expectation() - score.mean()) < abs(
            coarse.expectation() - score.mean()
        ) + 1e-9
        assert fine.expectation() == pytest.approx(5.0, abs=0.01)

    def test_mean_method(self):
        pdf = ExponentialScore(rate=1.0).discretize(64, method="mean")
        assert pdf.expectation() == pytest.approx(1.0, abs=0.05)

    def test_invalid_parameters(self):
        score = UniformScore(0.0, 1.0)
        with pytest.raises(InvalidDistributionError):
            score.discretize(0)
        with pytest.raises(InvalidDistributionError):
            score.discretize(4, method="magic")

    def test_discretized_expected_ranks_converge(self):
        """Appendix A's claim: discretisation recovers the continuous
        semantics.  Pairwise Pr[X_j > X_i] from the discretised ranks
        converges to the closed-form continuous values."""
        scores = [
            GaussianScore(10.0, 2.0),
            GaussianScore(9.0, 1.0),
            GaussianScore(11.0, 4.0),
        ]
        # Continuous expected rank = sum of closed-form pairwise beats.
        truth = []
        for i, mine in enumerate(scores):
            truth.append(
                sum(
                    pr_greater(other, mine)
                    for j, other in enumerate(scores)
                    if j != i
                )
            )
        errors = {}
        for buckets in (4, 64):
            relation = AttributeLevelRelation(
                AttributeTuple(f"t{i}", score.discretize(buckets))
                for i, score in enumerate(scores)
            )
            ranks = attribute_expected_ranks(relation)
            errors[buckets] = max(
                abs(ranks[f"t{i}"] - truth[i]) for i in range(3)
            )
        assert errors[64] < errors[4]
        assert errors[64] < 0.02
