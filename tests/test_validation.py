"""Tests for relation diagnostics."""

from __future__ import annotations

import pytest

from repro.exceptions import ModelError
from repro.models import (
    AttributeLevelRelation,
    AttributeTuple,
    DiscretePDF,
    ExclusionRule,
    TupleLevelRelation,
    TupleLevelTuple,
    diagnose,
)


def codes(relation):
    return {finding.code for finding in diagnose(relation)}


class TestAttributeDiagnostics:
    def test_clean_relation(self, fig2):
        assert codes(fig2) == set()

    def test_non_positive_scores_flagged(self):
        relation = AttributeLevelRelation(
            [
                AttributeTuple("a", DiscretePDF([-1, 5], [0.5, 0.5])),
                AttributeTuple("b", DiscretePDF.point(3)),
            ]
        )
        assert "non_positive_scores" in codes(relation)
        finding = next(
            f
            for f in diagnose(relation)
            if f.code == "non_positive_scores"
        )
        assert finding.tids == ("a",)
        assert "Markov" in finding.detail

    def test_fully_certain_flagged(self, certain_attribute):
        assert "fully_certain" in codes(certain_attribute)

    def test_heavy_ties_flagged(self):
        relation = AttributeLevelRelation(
            AttributeTuple(
                f"t{i}", DiscretePDF([1.0, 2.0], [0.5, 0.5])
            )
            for i in range(10)
        )
        assert "heavy_score_ties" in codes(relation)

    def test_finding_str(self):
        relation = AttributeLevelRelation(
            [AttributeTuple("a", DiscretePDF([-1.0], [1.0]))]
        )
        text = str(diagnose(relation)[0])
        assert "non_positive_scores" in text and "[a]" in text


class TestTupleDiagnostics:
    def test_clean_relation(self, fig4):
        # fig4 has a saturated rule (p(t2)+p(t4)=1) and a certain tuple.
        found = codes(fig4)
        assert "zero_probability_tuples" not in found

    def test_zero_probability_flagged(self):
        relation = TupleLevelRelation(
            [
                TupleLevelTuple("dead", 9.0, 0.0),
                TupleLevelTuple("live", 5.0, 0.8),
            ]
        )
        assert "zero_probability_tuples" in codes(relation)

    def test_saturated_rule_flagged(self):
        relation = TupleLevelRelation(
            [
                TupleLevelTuple("a", 9.0, 0.5),
                TupleLevelTuple("b", 5.0, 0.5),
            ],
            rules=[ExclusionRule("r", ["a", "b"])],
        )
        assert "saturated_rules" in codes(relation)

    def test_tied_scores_flagged(self):
        relation = TupleLevelRelation(
            [
                TupleLevelTuple("a", 5.0, 0.5),
                TupleLevelTuple("b", 5.0, 0.5),
            ]
        )
        assert "tied_scores" in codes(relation)

    def test_sparse_worlds_flagged(self):
        relation = TupleLevelRelation(
            [
                TupleLevelTuple("a", 5.0, 0.2),
                TupleLevelTuple("b", 3.0, 0.3),
            ]
        )
        assert "sparse_worlds" in codes(relation)

    def test_truncated_tid_lists(self):
        relation = TupleLevelRelation(
            [
                TupleLevelTuple(f"t{i}", float(i + 1), 0.0)
                for i in range(9)
            ]
        )
        finding = next(
            f
            for f in diagnose(relation)
            if f.code == "zero_probability_tuples"
        )
        assert len(finding.tids) == 6
        assert finding.tids[-1].endswith("more")


class TestDispatch:
    def test_unsupported_type(self):
        with pytest.raises(ModelError):
            diagnose([1, 2, 3])  # type: ignore[arg-type]
