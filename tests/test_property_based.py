"""Property-based tests (hypothesis) for the core invariants.

Strategy sizes are kept small because every test is checked against
the exponential possible-worlds oracle; correctness on all tiny
instances plus the seeded larger regressions elsewhere gives the
coverage the paper's proofs promise.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import (
    brute_force_expected_ranks,
    brute_force_rank_distributions,
    brute_force_topk_answer_probabilities,
    u_topk,
)
from repro.core import (
    a_erank,
    attribute_expected_ranks,
    attribute_rank_distributions,
    t_erank,
    t_erank_prune,
    tuple_expected_ranks,
    tuple_rank_distributions,
)
from repro.models import (
    AttributeLevelRelation,
    AttributeTuple,
    DiscretePDF,
    ExclusionRule,
    TupleLevelRelation,
    TupleLevelTuple,
)
from repro.stats import poisson_binomial_pmf

SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def discrete_pdfs(draw, max_support=3, value_pool=range(1, 13)):
    """Small pdfs over positive integer scores."""
    size = draw(st.integers(1, max_support))
    values = draw(
        st.lists(
            st.sampled_from(list(value_pool)),
            min_size=size,
            max_size=size,
            unique=True,
        )
    )
    weights = draw(
        st.lists(
            st.integers(1, 9), min_size=size, max_size=size
        )
    )
    return DiscretePDF(
        [float(value) for value in values],
        [float(weight) for weight in weights],
        normalize=True,
    )


@st.composite
def attribute_relations(draw, max_tuples=5):
    count = draw(st.integers(1, max_tuples))
    return AttributeLevelRelation(
        AttributeTuple(f"t{index}", draw(discrete_pdfs()))
        for index in range(count)
    )


@st.composite
def tuple_relations(draw, max_tuples=6):
    count = draw(st.integers(1, max_tuples))
    rows = []
    for index in range(count):
        score = float(draw(st.integers(1, 12)))
        probability = draw(
            st.floats(0.0, 1.0, allow_nan=False, width=32)
        )
        rows.append(TupleLevelTuple(f"t{index}", score, probability))
    # Pair up a random prefix of the shuffled ids into exclusion rules,
    # rescaling overflowing pairs.
    order = draw(st.permutations(range(count)))
    pair_count = draw(st.integers(0, count // 2))
    rules = []
    for pair_index in range(pair_count):
        first, second = (
            order[2 * pair_index],
            order[2 * pair_index + 1],
        )
        total = rows[first].probability + rows[second].probability
        if total > 1.0:
            scale = (1.0 - 1e-9) / total
            for position in (first, second):
                row = rows[position]
                rows[position] = TupleLevelTuple(
                    row.tid, row.score, row.probability * scale
                )
        rules.append(
            ExclusionRule(
                f"rule{pair_index}",
                [rows[min(first, second)].tid,
                 rows[max(first, second)].tid],
            )
        )
    return TupleLevelRelation(rows, rules=rules)


# ----------------------------------------------------------------------
# Algorithms versus the possible-worlds oracle
# ----------------------------------------------------------------------
class TestOracleEquivalence:
    @SETTINGS
    @given(relation=attribute_relations(), ties=st.sampled_from(
        ["shared", "by_index"]))
    def test_a_erank_matches_enumeration(self, relation, ties):
        fast = attribute_expected_ranks(relation, ties=ties)
        slow = brute_force_expected_ranks(relation, ties=ties)
        for tid in fast:
            assert fast[tid] == pytest.approx(slow[tid], abs=1e-8)

    @SETTINGS
    @given(relation=tuple_relations(), ties=st.sampled_from(
        ["shared", "by_index"]))
    def test_t_erank_matches_enumeration(self, relation, ties):
        fast = tuple_expected_ranks(relation, ties=ties)
        slow = brute_force_expected_ranks(relation, ties=ties)
        for tid in fast:
            assert fast[tid] == pytest.approx(slow[tid], abs=1e-8)

    @SETTINGS
    @given(relation=attribute_relations(max_tuples=4))
    def test_attribute_rank_distributions_match(self, relation):
        fast = attribute_rank_distributions(relation, ties="by_index")
        slow = brute_force_rank_distributions(relation, ties="by_index")
        for tid in fast:
            assert fast[tid].allclose(slow[tid], atol=1e-8)

    @SETTINGS
    @given(relation=tuple_relations(max_tuples=5))
    def test_tuple_rank_distributions_match(self, relation):
        fast = tuple_rank_distributions(relation, ties="by_index")
        slow = brute_force_rank_distributions(relation, ties="by_index")
        for tid in fast:
            assert fast[tid].allclose(slow[tid], atol=1e-8)

    @SETTINGS
    @given(relation=tuple_relations(max_tuples=5),
           k=st.integers(1, 3))
    def test_u_topk_finds_modal_answer(self, relation, k):
        support = brute_force_topk_answer_probabilities(relation, k)
        result = u_topk(relation, k)
        best = max(support.values())
        assert result.metadata["answer_probability"] == pytest.approx(
            best, abs=1e-9
        )
        assert support.get(result.tids(), 0.0) == pytest.approx(
            best, abs=1e-9
        )


# ----------------------------------------------------------------------
# Structural invariants of rank distributions
# ----------------------------------------------------------------------
class TestDistributionInvariants:
    @SETTINGS
    @given(relation=attribute_relations(max_tuples=4))
    def test_pmf_proper_and_consistent(self, relation):
        dists = attribute_rank_distributions(relation, ties="shared")
        ranks = attribute_expected_ranks(relation, ties="shared")
        for tid, dist in dists.items():
            assert float(dist.pmf.sum()) == pytest.approx(1.0)
            assert dist.max_rank <= relation.size - 1
            assert dist.expectation() == pytest.approx(
                ranks[tid], abs=1e-8
            )

    @SETTINGS
    @given(relation=tuple_relations(max_tuples=5))
    def test_tuple_quantiles_monotone_in_phi(self, relation):
        dists = tuple_rank_distributions(relation)
        for dist in dists.values():
            quantiles = [
                dist.quantile(phi) for phi in (0.1, 0.4, 0.7, 0.99)
            ]
            assert quantiles == sorted(quantiles)


# ----------------------------------------------------------------------
# The five ranking properties, on random inputs
# ----------------------------------------------------------------------
class TestRankingProperties:
    @SETTINGS
    @given(relation=attribute_relations())
    def test_expected_rank_containment_chain(self, relation):
        previous = ()
        for k in range(1, relation.size + 1):
            current = a_erank(relation, k).tids()
            assert len(current) == k  # exact-k
            assert current[: len(previous)] == previous  # containment
            assert len(set(current)) == k  # unique ranking
            previous = current

    @SETTINGS
    @given(relation=tuple_relations())
    def test_tuple_expected_rank_containment_chain(self, relation):
        previous = ()
        for k in range(1, relation.size + 1):
            current = t_erank(relation, k).tids()
            assert len(current) == k
            assert current[: len(previous)] == previous
            assert len(set(current)) == k
            previous = current

    @SETTINGS
    @given(
        relation=attribute_relations(),
        scale=st.integers(2, 5),
        offset=st.integers(0, 7),
    )
    def test_value_invariance_affine(self, relation, scale, offset):
        k = max(1, relation.size - 1)
        baseline = a_erank(relation, k).tids()
        mapped = relation.map_scores(
            lambda value: scale * value + offset
        )
        assert a_erank(mapped, k).tids() == baseline

    @SETTINGS
    @given(relation=tuple_relations(), shift=st.integers(1, 10))
    def test_stability_boost_keeps_winner(self, relation, shift):
        k = max(1, relation.size // 2)
        winners = t_erank(relation, k).tid_set()
        for tid in winners:
            row = relation.tuple_by_id(tid)
            boosted = relation.replace_tuple(
                TupleLevelTuple(
                    tid, row.score + shift, row.probability
                )
            )
            assert tid in t_erank(boosted, k).tid_set()

    @SETTINGS
    @given(relation=tuple_relations())
    def test_prune_statistics_match_exact(self, relation):
        k = max(1, relation.size // 2)
        exact = tuple_expected_ranks(relation)
        pruned = t_erank_prune(relation, k)
        # Every scanned tuple's rank must be exact, and the k reported
        # statistics must equal the k smallest exact statistics.
        for tid, value in pruned.statistics.items():
            assert value == pytest.approx(exact[tid], abs=1e-8)
        reported = sorted(item.statistic for item in pruned)
        best = sorted(exact.values())[: len(reported)]
        assert reported == pytest.approx(best, abs=1e-8)


# ----------------------------------------------------------------------
# Poisson binomial and pdf invariants
# ----------------------------------------------------------------------
class TestStatsInvariants:
    @SETTINGS
    @given(
        probabilities=st.lists(
            st.floats(0.0, 1.0, allow_nan=False, width=32),
            max_size=12,
        )
    )
    def test_poisson_binomial_proper(self, probabilities):
        pmf = poisson_binomial_pmf(probabilities)
        assert pmf.sum() == pytest.approx(1.0)
        assert (pmf >= -1e-12).all()
        mean = float(
            sum(j * mass for j, mass in enumerate(pmf))
        )
        assert mean == pytest.approx(math.fsum(probabilities), abs=1e-8)

    @SETTINGS
    @given(pdf=discrete_pdfs(max_support=4))
    def test_pdf_tail_identities(self, pdf):
        for value in pdf.values:
            assert pdf.pr_greater(value) + pdf.pr_equal(
                value
            ) == pytest.approx(pdf.pr_greater_equal(value))
        assert pdf.pr_greater(pdf.max_value) == 0.0
        assert pdf.pr_greater_equal(pdf.min_value) == pytest.approx(1.0)

    @SETTINGS
    @given(pdf=discrete_pdfs(max_support=4), shift=st.integers(1, 9))
    def test_shift_dominance(self, pdf, shift):
        assert pdf.shift(shift).stochastically_dominates(pdf)
