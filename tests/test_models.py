"""Unit tests for the attribute-level and tuple-level relation types."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import InvalidRuleError, ModelError
from repro.models import (
    AttributeLevelRelation,
    AttributeTuple,
    DiscretePDF,
    ExclusionRule,
    TupleLevelRelation,
    TupleLevelTuple,
)
from repro.models.rules import cover_with_singletons


class TestAttributeTuple:
    def test_expected_score(self):
        row = AttributeTuple("x", DiscretePDF([10, 20], [0.5, 0.5]))
        assert row.expected_score() == pytest.approx(15.0)

    def test_requires_pdf(self):
        with pytest.raises(ModelError):
            AttributeTuple("x", 5.0)  # type: ignore[arg-type]

    def test_attributes_copied(self):
        payload = {"name": "alpha"}
        row = AttributeTuple("x", DiscretePDF.point(1), payload)
        payload["name"] = "mutated"
        assert row.attributes["name"] == "alpha"

    def test_equality(self):
        first = AttributeTuple("x", DiscretePDF.point(1))
        second = AttributeTuple("x", DiscretePDF.point(1))
        assert first == second


class TestAttributeRelation:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(ModelError):
            AttributeLevelRelation(
                [
                    AttributeTuple("x", DiscretePDF.point(1)),
                    AttributeTuple("x", DiscretePDF.point(2)),
                ]
            )

    def test_lookup(self, fig2):
        assert fig2.tuple_by_id("t2").score.pr_equal(92) == pytest.approx(
            0.6
        )
        assert fig2.position_of("t3") == 2
        assert "t1" in fig2
        assert "zzz" not in fig2

    def test_lookup_missing_raises(self, fig2):
        with pytest.raises(ModelError):
            fig2.tuple_by_id("nope")
        with pytest.raises(ModelError):
            fig2.position_of("nope")

    def test_value_universe(self, fig2):
        assert fig2.value_universe() == (70, 80, 85, 92, 100)

    def test_expected_scores(self, fig2):
        assert fig2.expected_scores() == pytest.approx((82.0, 87.2, 85.0))

    def test_order_by_expected_score(self, fig2):
        ordered = [row.tid for row in fig2.order_by_expected_score()]
        assert ordered == ["t2", "t3", "t1"]

    def test_max_pdf_size(self, fig2):
        assert fig2.max_pdf_size() == 2

    def test_instantiate_draws_support_values(self, fig2):
        rng = random.Random(3)
        world = fig2.instantiate(rng)
        assert world["t1"] in (70, 100)
        assert world["t3"] == 85

    def test_replace_tuple_keeps_position(self, fig2):
        replacement = AttributeTuple("t2", DiscretePDF.point(1000))
        updated = fig2.replace_tuple(replacement)
        assert updated.position_of("t2") == 1
        assert updated.tuple_by_id("t2").score.values == (1000,)
        # The original is untouched.
        assert fig2.tuple_by_id("t2").score.support_size == 2

    def test_replace_unknown_tuple(self, fig2):
        with pytest.raises(ModelError):
            fig2.replace_tuple(AttributeTuple("zz", DiscretePDF.point(1)))

    def test_map_scores(self, fig2):
        doubled = fig2.map_scores(lambda value: 2 * value)
        assert doubled.value_universe() == (140, 160, 170, 184, 200)


class TestExclusionRule:
    def test_membership(self):
        rule = ExclusionRule("r", ["a", "b"])
        assert "a" in rule
        assert "c" not in rule
        assert len(rule) == 2
        assert not rule.is_singleton

    def test_duplicate_member_rejected(self):
        with pytest.raises(InvalidRuleError):
            ExclusionRule("r", ["a", "a"])

    def test_empty_rule_rejected(self):
        with pytest.raises(InvalidRuleError):
            ExclusionRule("r", [])

    def test_validate_probabilities(self):
        rule = ExclusionRule("r", ["a", "b"])
        assert rule.validate_probabilities(
            {"a": 0.5, "b": 0.5}
        ) == pytest.approx(1.0)
        with pytest.raises(InvalidRuleError):
            rule.validate_probabilities({"a": 0.7, "b": 0.7})
        with pytest.raises(InvalidRuleError):
            rule.validate_probabilities({"a": 0.5})

    def test_cover_with_singletons(self):
        rules = cover_with_singletons(
            [ExclusionRule("r", ["a", "b"])], ["a", "b", "c"]
        )
        members = sorted(tuple(rule) for rule in rules)
        assert (("c",)) in members

    def test_cover_rejects_double_claim(self):
        with pytest.raises(InvalidRuleError):
            cover_with_singletons(
                [
                    ExclusionRule("r1", ["a", "b"]),
                    ExclusionRule("r2", ["b", "c"]),
                ],
                ["a", "b", "c"],
            )

    def test_cover_rejects_unknown_tuple(self):
        with pytest.raises(InvalidRuleError):
            cover_with_singletons(
                [ExclusionRule("r1", ["ghost"])], ["a"]
            )


class TestTupleLevelTuple:
    def test_validation(self):
        with pytest.raises(ModelError):
            TupleLevelTuple("x", float("inf"), 0.5)
        with pytest.raises(ModelError):
            TupleLevelTuple("x", 1.0, 1.5)
        with pytest.raises(ModelError):
            TupleLevelTuple("x", 1.0, -0.1)

    def test_probability_clamped_to_one(self):
        row = TupleLevelTuple("x", 1.0, 1.0 + 1e-12)
        assert row.probability == 1.0


class TestTupleLevelRelation:
    def test_rule_lookup(self, fig4):
        assert fig4.rule_of("t2").rule_id == "tau2"
        assert fig4.rule_of("t1").is_singleton
        assert fig4.rule_count == 3

    def test_rule_overflow_rejected(self):
        with pytest.raises(InvalidRuleError):
            TupleLevelRelation(
                [
                    TupleLevelTuple("a", 2.0, 0.8),
                    TupleLevelTuple("b", 1.0, 0.8),
                ],
                rules=[ExclusionRule("r", ["a", "b"])],
            )

    def test_order_by_score_ties_by_index(self):
        relation = TupleLevelRelation(
            [
                TupleLevelTuple("low", 1.0, 0.5),
                TupleLevelTuple("tie_b", 5.0, 0.5),
                TupleLevelTuple("tie_a", 5.0, 0.5),
            ]
        )
        ordered = [row.tid for row in relation.order_by_score()]
        assert ordered == ["tie_b", "tie_a", "low"]

    def test_expected_world_size(self, fig4):
        assert fig4.expected_world_size() == pytest.approx(2.4)

    def test_instantiate_respects_rules(self, fig4):
        rng = random.Random(11)
        for _ in range(200):
            appearing = set(fig4.instantiate(rng))
            assert not {"t2", "t4"} <= appearing
            assert "t3" in appearing  # p(t3) = 1

    def test_instantiate_returns_score_order(self, fig4):
        rng = random.Random(5)
        appearing = fig4.instantiate(rng)
        scores = [fig4.tuple_by_id(tid).score for tid in appearing]
        assert scores == sorted(scores, reverse=True)

    def test_replace_tuple_preserves_rules(self, fig4):
        updated = fig4.replace_tuple(TupleLevelTuple("t2", 95, 0.5))
        assert updated.rule_of("t2").rule_id == "tau2"
        assert updated.tuple_by_id("t2").score == 95

    def test_map_scores_preserves_rules(self, fig4):
        updated = fig4.map_scores(lambda value: value * 2)
        assert updated.rule_of("t4").rule_id == "tau2"
        assert updated.tuple_by_id("t4").score == 160

    def test_exclusive_with_self_is_false(self, fig4):
        assert not fig4.exclusive_with("t2", "t2")
