"""Chrome trace-event export: span-tree reconstruction and layout."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import (
    JsonlSink,
    MetricsRegistry,
    emit_event,
    set_registry,
    set_sink,
    trace,
)
from repro.obs.capture import read_jsonl
from repro.obs.chrome_trace import (
    build_span_tree,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.trace import NullSink


@pytest.fixture
def registry():
    fresh = MetricsRegistry(enabled=True)
    previous = set_registry(fresh)
    previous_sink = set_sink(NullSink())
    yield fresh
    set_sink(previous_sink)
    set_registry(previous)


def _span(
    span_id,
    name,
    parent_id=None,
    trace_id="t1",
    duration=1.0,
    start=None,
):
    record = {
        "type": "span",
        "span_id": span_id,
        "parent_id": parent_id,
        "trace_id": trace_id,
        "name": name,
        "duration_seconds": duration,
    }
    if start is not None:
        record["start_seconds"] = start
    return record


class TestBuildSpanTree:
    def test_nested_spans_reconstruct(self):
        # JSONL order is completion order: leaf first, root last.
        records = [
            _span("c", "kernel", parent_id="b", duration=0.2),
            _span("b", "plan", parent_id="a", duration=0.5),
            _span("a", "query", duration=1.0),
        ]
        roots = build_span_tree(records)
        assert [root.name for root in roots] == ["query"]
        plan = roots[0].children[0]
        assert plan.name == "plan"
        assert [child.name for child in plan.children] == ["kernel"]

    def test_interleaved_traces_stay_separate(self):
        records = [
            _span("a1", "inner", parent_id="a0", trace_id="ta"),
            _span("b1", "inner", parent_id="b0", trace_id="tb"),
            _span("a0", "query", trace_id="ta"),
            _span("b0", "query", trace_id="tb"),
        ]
        roots = build_span_tree(records)
        assert len(roots) == 2
        assert {root.trace_id for root in roots} == {"ta", "tb"}
        for root in roots:
            assert [c.trace_id for c in root.children] == [
                root.trace_id
            ]

    def test_orphan_becomes_root(self):
        records = [
            _span("x", "lonely", parent_id="missing"),
        ]
        roots = build_span_tree(records)
        assert [root.name for root in roots] == ["lonely"]

    def test_events_and_metrics_lines_ignored(self):
        records = [
            {"type": "metrics", "counters": {}},
            {"type": "event", "name": "e", "span_id": "a"},
            _span("a", "query"),
        ]
        roots = build_span_tree(records)
        assert len(roots) == 1

    def test_real_timestamps_used_when_present(self):
        records = [
            _span(
                "b", "late", parent_id="a", duration=0.1, start=10.5
            ),
            _span(
                "c", "early", parent_id="a", duration=0.1, start=10.1
            ),
            _span("a", "root", duration=1.0, start=10.0),
        ]
        roots = build_span_tree(records)
        root = roots[0]
        assert root.start == 10.0
        # Children re-sorted into start order.
        assert [child.name for child in root.children] == [
            "early",
            "late",
        ]

    def test_timestampless_trace_packs_synthetically(self):
        records = [
            _span("b", "first", parent_id="a", duration=0.2),
            _span("c", "second", parent_id="a", duration=0.3),
            _span("a", "root", duration=1.0),
        ]
        roots = build_span_tree(records)
        root = roots[0]
        first, second = root.children
        assert root.start == 0.0
        assert first.start == 0.0
        assert second.start == pytest.approx(0.2)


class TestToChromeTrace:
    def test_nesting_holds_in_ts_dur(self):
        records = [
            _span(
                "b", "child", parent_id="a", duration=0.2, start=1.1
            ),
            _span("a", "parent", duration=1.0, start=1.0),
        ]
        document = to_chrome_trace(records)
        events = {
            event["name"]: event
            for event in document["traceEvents"]
            if event["ph"] == "X"
        }
        parent, child = events["parent"], events["child"]
        assert parent["ts"] <= child["ts"]
        assert (
            child["ts"] + child["dur"]
            <= parent["ts"] + parent["dur"]
        )
        assert child["args"]["parent_id"] == "a"

    def test_one_track_per_trace_id(self):
        records = [
            _span("a", "q", trace_id="ta"),
            _span("b", "q", trace_id="tb"),
        ]
        document = to_chrome_trace(records)
        names = {
            event["args"]["name"]
            for event in document["traceEvents"]
            if event["ph"] == "M"
        }
        assert names == {"trace ta", "trace tb"}
        tids = {
            event["tid"]
            for event in document["traceEvents"]
            if event["ph"] == "X"
        }
        assert len(tids) == 2

    def test_instant_events_anchored_to_span(self):
        records = [
            _span("a", "query", duration=1.0, start=5.0),
            {
                "type": "event",
                "name": "retry",
                "span_id": "a",
                "trace_id": "t1",
                "attributes": {"attempt": 2},
            },
        ]
        document = to_chrome_trace(records)
        instants = [
            event
            for event in document["traceEvents"]
            if event["ph"] == "i"
        ]
        assert len(instants) == 1
        assert instants[0]["name"] == "retry"
        assert instants[0]["args"] == {"attempt": 2}

    def test_live_trace_round_trip(self, registry, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        set_sink(sink)
        with trace("outer", n=2):
            with trace("inner"):
                emit_event("tick")
        sink.close()
        records, problems = read_jsonl(path)
        assert problems == []
        document = to_chrome_trace(records)
        spans = [
            event
            for event in document["traceEvents"]
            if event["ph"] == "X"
        ]
        assert {event["name"] for event in spans} == {
            "outer",
            "inner",
        }
        roots = build_span_tree(records)
        assert [root.name for root in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["inner"]

    def test_write_chrome_trace_file(self, tmp_path):
        out = tmp_path / "out.json"
        write_chrome_trace([_span("a", "q")], out)
        document = json.loads(out.read_text())
        assert document["displayTimeUnit"] == "ms"


class TestChromeTraceCli:
    def test_converts_a_cli_trace(
        self, fig2, tmp_path, capsys
    ):
        from repro.engine.io import save_attribute_csv

        csv_path = tmp_path / "rel.csv"
        save_attribute_csv(fig2, csv_path)
        trace_path = tmp_path / "trace.jsonl"
        assert (
            main(
                [
                    "--metrics-out",
                    str(trace_path),
                    "topk",
                    str(csv_path),
                    "-k",
                    "2",
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = main(["chrome-trace", str(trace_path)])
        output = capsys.readouterr().out
        assert code == 0
        assert "wrote" in output
        out_path = trace_path.with_suffix(".chrome.json")
        document = json.loads(out_path.read_text())
        assert any(
            event["ph"] == "X"
            for event in document["traceEvents"]
        )

    def test_corrupt_trace_exits_12(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        trace_path.write_text(
            json.dumps(_span("a", "q")) + "\n{broken\n"
        )
        code = main(
            [
                "chrome-trace",
                str(trace_path),
                "--out",
                str(tmp_path / "out.json"),
            ]
        )
        streams = capsys.readouterr()
        assert code == 12
        assert "warning:" in streams.err
