"""Tests for resource accounting: ledger, cost model, planner wiring.

Three layers:

* the :class:`CostLedger` on fake clocks — entry arithmetic, per
  ``(tenant, method)`` aggregation, drift tracking, and the
  ``cost_drift`` anomaly contract (fires once, re-arms after
  recovery);
* :func:`query_accounting` claim semantics — off path yields ``None``
  everywhere, the outermost layer wins, explicit ledger beats
  ambient — plus the end-to-end wiring through ``db.topk`` and the
  resilient executor;
* the :class:`CostModel` — metric-name parsing, median fits from
  bench history and capture records, persistence, and the acceptance
  criterion: a fitted model changes a planner choice the static
  heuristic would have made differently.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.core.result import RankedItem, TopKResult
from repro.engine.database import ProbabilisticDatabase
from repro.engine.query import ResilientExecutor, TopKPlanner
from repro.models import (
    AttributeLevelRelation,
    AttributeTuple,
    DiscretePDF,
)
from repro.obs import MetricsRegistry, set_registry
from repro.obs.costmodel import (
    COST_MODEL_SCHEMA_VERSION,
    CostModel,
    fit_cost_model,
    parse_metric_name,
)
from repro.obs.costs import (
    CostEntry,
    CostLedger,
    get_cost_ledger,
    query_accounting,
    set_cost_ledger,
)
from repro.obs.flight import set_flight_recorder
from repro.robust import RetryPolicy

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_HISTORY = (
    REPO_ROOT / "benchmarks" / "results" / "BENCH_history.jsonl"
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class FakeRecorder:
    """Duck-typed flight recorder capturing notify_anomaly calls."""

    def __init__(self) -> None:
        self.anomalies: list[tuple[object, dict]] = []

    def notify(self, anomaly, *, trace_id=None, **attributes):
        attributes["trace_id"] = trace_id
        self.anomalies.append((anomaly, attributes))


@pytest.fixture
def registry():
    fresh = MetricsRegistry(enabled=True)
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


def make_result(method="expected_rank", **metadata) -> TopKResult:
    return TopKResult(
        method=method,
        k=1,
        items=(RankedItem("t1", 0, 0.5),),
        metadata=metadata,
    )


def make_ledger(**overrides):
    wall, cpu = FakeClock(), FakeClock()
    ledger = CostLedger(
        wall_clock=wall, cpu_clock=cpu, **overrides
    )
    return ledger, wall, cpu


def positive_relation(n: int) -> AttributeLevelRelation:
    return AttributeLevelRelation(
        [
            AttributeTuple(f"t{i}", DiscretePDF.point(float(n - i)))
            for i in range(n)
        ]
    )


# ----------------------------------------------------------------------
# The ledger on fake clocks
# ----------------------------------------------------------------------
class TestCostLedger:
    def test_meter_arithmetic_is_exact_on_fake_clocks(self):
        ledger, wall, cpu = make_ledger()
        meter = ledger.meter(tenant="acme")
        wall.advance(2.0)
        cpu.advance(0.5)
        entry = meter.finish(
            make_result(tuples_accessed=7),
            k=2,
            n=3,
            method="expected_rank",
        )
        assert entry.wall_seconds == 2.0
        assert entry.cpu_seconds == 0.5
        assert entry.tuples_accessed == 7
        assert entry.tenant == "acme"
        assert entry.rung == "direct"
        assert not entry.degraded
        assert entry.predicted_seconds is None
        assert ledger.entries == (entry,)

    def test_finish_reads_prediction_and_rung_off_metadata(self):
        ledger, wall, _ = make_ledger()
        meter = ledger.meter()
        wall.advance(1.0)
        entry = meter.finish(
            make_result(
                cost_estimate={"total_seconds": 0.25, "tuples": 40},
                resilient=True,
                degraded=True,
                ladder=(
                    {"rung": "exact", "outcome": "OSError: x"},
                    {"rung": "pruned", "outcome": "ok"},
                ),
                trace_id="trace-1",
            ),
            k=2,
            n=8,
            method="expected_rank",
        )
        assert entry.predicted_seconds == 0.25
        assert entry.predicted_tuples == 40
        assert entry.rung == "pruned"
        assert entry.degraded
        assert entry.trace_id == "trace-1"
        assert entry.tenant == "default"

    def test_aggregates_per_tenant_and_method(self):
        ledger, wall, cpu = make_ledger()
        for tenant, seconds in (
            ("acme", 1.0),
            ("acme", 3.0),
            ("globex", 5.0),
        ):
            meter = ledger.meter(tenant=tenant)
            wall.advance(seconds)
            cpu.advance(seconds / 2)
            meter.finish(
                make_result(tuples_accessed=10),
                k=1,
                n=4,
                method="expected_rank",
            )
        summary = ledger.summary()
        assert summary["queries"] == 3
        acme = summary["tenants"]["acme"]["expected_rank"]
        assert acme["queries"] == 2
        assert acme["wall_seconds"] == pytest.approx(4.0)
        assert acme["cpu_seconds"] == pytest.approx(2.0)
        assert acme["tuples_accessed"] == 20
        globex = summary["tenants"]["globex"]["expected_rank"]
        assert globex["queries"] == 1
        assert globex["wall_seconds"] == pytest.approx(5.0)

    def test_entry_ring_is_bounded_but_aggregates_are_not(self):
        ledger, wall, _ = make_ledger(max_entries=3)
        for index in range(5):
            meter = ledger.meter()
            wall.advance(1.0)
            meter.finish(
                make_result(), k=index, n=1, method="expected_rank"
            )
        assert len(ledger.entries) == 3
        assert [entry.k for entry in ledger.entries] == [2, 3, 4]
        assert ledger.summary()["queries"] == 5

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="drift_threshold"):
            CostLedger(drift_threshold=0.0)
        with pytest.raises(ValueError, match="drift_min_samples"):
            CostLedger(drift_min_samples=0)

    def test_drift_is_none_without_predictions(self):
        ledger, wall, _ = make_ledger()
        meter = ledger.meter()
        wall.advance(1.0)
        meter.finish(make_result(), k=1, n=1, method="expected_rank")
        assert ledger.drift("expected_rank") is None
        assert ledger.summary()["drift"] == {}

    def test_drift_ratio_over_predicted_runs(self):
        ledger, wall, _ = make_ledger()
        for predicted, actual in ((1.0, 2.0), (1.0, 2.0)):
            meter = ledger.meter()
            wall.advance(actual)
            meter.finish(
                make_result(
                    cost_estimate={
                        "total_seconds": predicted,
                        "tuples": 1,
                    }
                ),
                k=1,
                n=1,
                method="expected_rank",
            )
        # 4.0 actual over 2.0 predicted: 100% over calibration.
        assert ledger.drift("expected_rank") == pytest.approx(1.0)
        drift = ledger.summary()["drift"]["expected_rank"]
        assert drift["samples"] == 2

    def test_cost_metrics_are_exported(self, registry):
        ledger, wall, cpu = make_ledger()
        meter = ledger.meter(tenant="acme")
        wall.advance(2.0)
        cpu.advance(1.0)
        meter.finish(
            make_result(
                tuples_accessed=5,
                cost_estimate={"total_seconds": 1.5, "tuples": 5},
            ),
            k=1,
            n=4,
            method="expected_rank",
        )
        labels = {"tenant": "acme", "method": "expected_rank"}
        assert registry.counter("cost.queries", labels).value == 1
        assert registry.counter(
            "cost.wall_seconds", labels
        ).value == pytest.approx(2.0)
        assert registry.counter(
            "cost.cpu_seconds", labels
        ).value == pytest.approx(1.0)
        assert registry.counter(
            "cost.tuples_accessed", labels
        ).value == 5
        assert registry.gauge(
            "cost.drift", {"method": "expected_rank"}
        ).value == pytest.approx(2.0 / 1.5 - 1.0)
        assert "cost.drift" in registry.help_texts()


class TestDriftAnomaly:
    @pytest.fixture
    def recorder(self):
        fake = FakeRecorder()
        previous = set_flight_recorder(fake)
        yield fake
        set_flight_recorder(previous)

    def drifting_query(self, ledger, wall, *, actual=2.0):
        meter = ledger.meter()
        wall.advance(actual)
        meter.finish(
            make_result(
                cost_estimate={"total_seconds": 1.0, "tuples": 1},
                trace_id="trace-drift",
            ),
            k=1,
            n=1,
            method="expected_rank",
        )

    def test_fires_once_past_threshold_with_enough_samples(
        self, recorder
    ):
        ledger, wall, _ = make_ledger(
            drift_threshold=0.5, drift_min_samples=2
        )
        self.drifting_query(ledger, wall)
        assert recorder.anomalies == []  # one sample: not trusted yet
        self.drifting_query(ledger, wall)
        assert len(recorder.anomalies) == 1
        anomaly, attributes = recorder.anomalies[0]
        assert anomaly == "cost_drift"
        assert attributes["method"] == "expected_rank"
        assert attributes["drift"] == pytest.approx(1.0)
        assert attributes["samples"] == 2
        assert attributes["threshold"] == 0.5
        assert attributes["trace_id"] == "trace-drift"
        self.drifting_query(ledger, wall)
        assert len(recorder.anomalies) == 1  # latched, not repeated
        assert ledger.summary()["drift"]["expected_rank"]["alarmed"]

    def test_rearms_after_recovery(self, recorder):
        ledger, wall, _ = make_ledger(
            drift_threshold=0.5, drift_min_samples=1
        )
        self.drifting_query(ledger, wall, actual=2.0)
        assert len(recorder.anomalies) == 1
        # Enough on-calibration runs pull aggregate drift under the
        # threshold: the alarm clears...
        for _ in range(8):
            self.drifting_query(ledger, wall, actual=1.0)
        assert not ledger.summary()["drift"]["expected_rank"][
            "alarmed"
        ]
        # ...so a fresh excursion alarms again.
        for _ in range(40):
            self.drifting_query(ledger, wall, actual=4.0)
        assert len(recorder.anomalies) == 2


# ----------------------------------------------------------------------
# Claim semantics and engine wiring
# ----------------------------------------------------------------------
class TestQueryAccounting:
    def test_off_path_yields_none(self):
        assert get_cost_ledger() is None
        with query_accounting() as meter:
            assert meter is None

    def test_outermost_layer_claims_inner_sees_none(self):
        ledger, _, _ = make_ledger()
        with query_accounting(ledger) as outer:
            assert outer is not None
            with query_accounting(ledger) as inner:
                assert inner is None
        # The claim is released: the next query meters again.
        with query_accounting(ledger) as again:
            assert again is not None

    def test_explicit_ledger_beats_ambient(self):
        ambient, _, _ = make_ledger()
        explicit, wall, _ = make_ledger()
        previous = set_cost_ledger(ambient)
        try:
            with query_accounting(explicit) as meter:
                assert meter is not None
                wall.advance(1.0)
                meter.finish(
                    make_result(), k=1, n=1, method="expected_rank"
                )
        finally:
            set_cost_ledger(previous)
        assert len(explicit.entries) == 1
        assert ambient.entries == ()

    def test_db_topk_accounts_once_via_ambient_ledger(
        self, fig2, registry
    ):
        database = ProbabilisticDatabase()
        database.create_relation("fig2", fig2)
        ledger = CostLedger()
        previous = set_cost_ledger(ledger)
        try:
            database.topk("fig2", 2)
        finally:
            set_cost_ledger(previous)
        assert len(ledger.entries) == 1
        entry = ledger.entries[0]
        assert entry.method == "expected_rank"
        assert entry.n == 3
        assert entry.k == 2
        assert entry.wall_seconds >= 0.0
        assert entry.trace_id  # span id flows into the entry

    def test_resilient_executor_accounts_with_ladder_rung(self, fig2):
        executor = ResilientExecutor(
            retry=RetryPolicy(max_retries=0, base_delay=0.0)
        )
        ledger = CostLedger()
        previous = set_cost_ledger(ledger)
        try:
            executor.execute(fig2, 2)
        finally:
            set_cost_ledger(previous)
        assert len(ledger.entries) == 1
        entry = ledger.entries[0]
        assert entry.rung == "exact"
        assert entry.plan_method == "expected_rank"

    def test_accounting_off_leaves_results_identical(self, fig2):
        bare = TopKPlanner().execute(fig2, 2)
        ledger = CostLedger()
        previous = set_cost_ledger(ledger)
        try:
            with query_accounting() as meter:
                accounted = TopKPlanner().execute(fig2, 2)
                assert meter is not None
        finally:
            set_cost_ledger(previous)
        assert accounted == bare  # metering never mutates the answer


# ----------------------------------------------------------------------
# The cost model
# ----------------------------------------------------------------------
class TestParseMetricName:
    def test_full_name_with_k(self):
        assert parse_metric_name(
            "a_erank_prune/uu/n=2000/k=10/tuples_accessed"
        ) == {
            "kernel": "a_erank_prune",
            "workload": "uu",
            "n": 2000,
            "k": 10,
            "kind": "tuples_accessed",
        }

    def test_name_without_k(self):
        parsed = parse_metric_name("a_erank/uu/n=2000/seconds")
        assert parsed["n"] == 2000
        assert parsed["k"] is None

    @pytest.mark.parametrize(
        "name",
        [
            "seconds",
            "a_erank/uu/seconds",
            "a_erank/uu/n=x/seconds",
            "a_erank/uu/n=2000/latency",
        ],
    )
    def test_out_of_convention_names_are_skipped(self, name):
        assert parse_metric_name(name) is None


def history_entry(metrics: dict) -> dict:
    return {"commit": "abc1234", "suite": "smoke", "metrics": metrics}


class TestFitCostModel:
    def test_fit_recovers_planted_coefficients(self):
        n = 1024
        units = n * math.log2(n)
        model = fit_cost_model(
            [
                history_entry(
                    {
                        f"a_erank/uu/n={n}/seconds": units * 1e-6,
                        f"a_erank_prune/uu/n={n}/k=8/tuples_accessed": (
                            8 * math.log2(n) * 2.0
                        ),
                    }
                )
            ],
            fitted_from=["unit-test"],
        )
        erank = model.kernels["a_erank"]
        assert erank["seconds_per_unit"] == pytest.approx(1e-6)
        assert erank["observations"] == 1
        prune = model.kernels["a_erank_prune"]
        assert prune["prefix_ratio"] == pytest.approx(2.0)
        assert model.fitted_from == ("unit-test",)

    def test_median_is_robust_to_one_noisy_run(self):
        n = 1024
        units = n * math.log2(n)
        entries = [
            history_entry({f"a_erank/uu/n={n}/seconds": units * c})
            for c in (1e-6, 1e-6, 5e-3)  # one polluted CI run
        ]
        model = fit_cost_model(entries)
        assert model.kernels["a_erank"][
            "seconds_per_unit"
        ] == pytest.approx(1e-6)

    def test_fit_from_capture_records_skips_degraded(self):
        n = 512
        units = n * math.log2(n)
        records = [
            {
                "type": "query",
                "model": "attribute",
                "plan": {"method": "expected_rank"},
                "n": n,
                "wall_seconds": units * 2e-6,
            },
            {
                "type": "query",
                "model": "attribute",
                "plan": {"method": "expected_rank"},
                "n": n,
                "wall_seconds": units * 9e-3,
                "degraded": True,  # retries, not the kernel
            },
            {"type": "relation", "name": "x"},
        ]
        model = fit_cost_model(capture_records=records)
        assert model.kernels["a_erank"][
            "seconds_per_unit"
        ] == pytest.approx(2e-6)

    def test_fit_from_the_checked_in_bench_history(self):
        entries = [
            json.loads(line)
            for line in BENCH_HISTORY.read_text().splitlines()
            if line.strip()
        ]
        model = fit_cost_model(
            entries, fitted_from=[str(BENCH_HISTORY)]
        )
        assert model.kernels["a_erank"]["seconds_per_unit"] > 0
        assert model.kernels["t_erank"]["seconds_per_unit"] > 0
        assert model.kernels["a_erank_prune"]["prefix_ratio"] > 0


class TestCostModelEstimates:
    @pytest.fixture
    def model(self):
        return CostModel(
            {
                "a_erank": {"seconds_per_unit": 1e-6},
                "a_erank_prune": {"prefix_ratio": 2.0},
            },
            expensive_access_seconds=1e-4,
        )

    def test_exact_estimate_prices_the_whole_relation(self, model):
        estimate = model.estimate("attribute", "expected_rank", 1024, 8)
        assert estimate.tuples == 1024
        assert estimate.units == pytest.approx(1024 * 10.0)
        assert estimate.kernel_seconds == pytest.approx(1024e-5)
        assert estimate.access_seconds == 0.0
        assert estimate.total_seconds == estimate.kernel_seconds

    def test_pruned_estimate_prices_the_predicted_prefix(self, model):
        estimate = model.estimate(
            "attribute",
            "expected_rank_prune",
            1024,
            8,
            expensive_access=True,
        )
        assert estimate.tuples == math.ceil(2.0 * 8 * 10.0)
        assert estimate.access_seconds == pytest.approx(
            estimate.tuples * 1e-4
        )

    def test_prefix_is_clamped_into_k_plus_one_to_n(self, model):
        assert model.predicted_prefix(
            "attribute", "expected_rank_prune", 8, 4
        ) <= 8
        tiny = CostModel(
            {"a_erank_prune": {"prefix_ratio": 1e-9}}
        )
        assert tiny.predicted_prefix(
            "attribute", "expected_rank_prune", 100, 5
        ) == 6

    def test_uncalibrated_kernel_estimates_none(self, model):
        assert (
            model.estimate("tuple", "expected_rank", 100, 5) is None
        )
        assert (
            model.estimate("attribute", "monte_carlo", 100, 5) is None
        )


class TestCostModelPersistence:
    def test_save_load_round_trip(self, tmp_path):
        model = CostModel(
            {"a_erank": {"seconds_per_unit": 3e-7, "observations": 4}},
            expensive_access_seconds=2e-4,
            fitted_from=["BENCH_history.jsonl"],
        )
        path = tmp_path / "model.json"
        model.save(path)
        loaded = CostModel.load(path)
        assert loaded.kernels == model.kernels
        assert loaded.expensive_access_seconds == 2e-4
        assert loaded.fitted_from == ("BENCH_history.jsonl",)
        assert loaded.schema_version == COST_MODEL_SCHEMA_VERSION

    def test_document_kind_and_schema_are_enforced(self):
        with pytest.raises(ValueError, match="kind"):
            CostModel.from_document({"schema": 1, "kind": "other"})
        with pytest.raises(ValueError, match="schema"):
            CostModel.from_document(
                {"schema": 99, "kind": "repro-cost-model"}
            )

    def test_describe_names_every_kernel(self):
        model = CostModel(
            {
                "a_erank": {
                    "seconds_per_unit": 1e-6,
                    "observations": 2,
                },
                "a_erank_prune": {"prefix_ratio": 1.5},
            }
        )
        text = model.describe()
        assert "a_erank: seconds_per_unit=1.000e-06" in text
        assert "prefix_ratio=1.500" in text


# ----------------------------------------------------------------------
# The planner under a calibrated model (acceptance criterion)
# ----------------------------------------------------------------------
class TestPlannerWithCostModel:
    @pytest.fixture
    def model(self):
        return CostModel(
            {
                "a_erank": {"seconds_per_unit": 1e-6},
                "a_erank_prune": {"prefix_ratio": 1.0},
            }
        )

    def test_calibration_changes_the_planner_choice(self, model):
        """The PR's acceptance criterion: a fitted model flips a
        workload the heuristic routes to the exact pass."""
        relation = positive_relation(64)
        before = TopKPlanner().plan(relation, 2)
        assert before.method == "expected_rank"
        assert before.reason == "access is cheap; exact pass"
        after = TopKPlanner(cost_model=model).plan(relation, 2)
        assert after.method == "expected_rank_prune"
        assert "overrides heuristic 'expected_rank'" in after.reason
        assert after.estimate is not None
        assert [c.method for c in after.candidates] == [
            "expected_rank_prune",
            "expected_rank",
        ]
        assert (
            after.candidates[0].total_seconds
            <= after.candidates[1].total_seconds
        )

    def test_agreement_with_expensive_access_heuristic(self, model):
        plan = TopKPlanner(
            expensive_access=True, cost_model=model
        ).plan(positive_relation(64), 2)
        assert plan.method == "expected_rank_prune"
        assert "agrees with heuristic" in plan.reason

    def test_unsound_pruning_leaves_one_candidate(self, model):
        relation = AttributeLevelRelation(
            [
                AttributeTuple("neg", DiscretePDF.point(-1.0)),
                AttributeTuple("pos", DiscretePDF.point(2.0)),
            ]
        )
        plan = TopKPlanner(cost_model=model).plan(relation, 1)
        assert plan.method == "expected_rank"
        assert "only sound candidate" in plan.reason
        assert len(plan.candidates) == 1

    def test_uncalibrated_kernel_falls_back_to_heuristic(self):
        plan = TopKPlanner(cost_model=CostModel()).plan(
            positive_relation(16), 2
        )
        assert plan.method == "expected_rank"
        assert plan.reason == "access is cheap; exact pass"
        assert plan.estimate is None
        assert plan.candidates == ()

    def test_execute_stamps_the_estimate_into_metadata(self, model):
        relation = positive_relation(32)
        plan = TopKPlanner(cost_model=model).plan(relation, 2)
        result = plan.execute(relation, 2)
        stamped = result.metadata["cost_estimate"]
        assert stamped["total_seconds"] == pytest.approx(
            plan.estimate.total_seconds
        )
        assert stamped["method"] == plan.method
        heuristic = TopKPlanner().plan(relation, 2)
        assert "cost_estimate" not in heuristic.execute(
            relation, 2
        ).metadata

    def test_resilient_executor_stamps_the_plan_estimate(self, model):
        executor = ResilientExecutor(
            planner=TopKPlanner(
                expensive_access=True, cost_model=model
            ),
            retry=RetryPolicy(max_retries=0, base_delay=0.0),
        )
        result = executor.execute(positive_relation(32), 2)
        assert result.metadata["cost_estimate"]["method"] == (
            "expected_rank_prune"
        )
