"""The observability layer: registry, spans, sinks, ``@profiled``."""

from __future__ import annotations

import json
import logging
import threading

import pytest

from repro.core.tuple_expected_rank import (
    t_erank_prune,
    tuple_expected_ranks,
)
from repro.engine.access import AccessCounter, score_cursor
from repro.engine.query import TopKPlanner
from repro.obs import (
    JsonlSink,
    LoggingSink,
    MetricsRegistry,
    NullSink,
    configure,
    count,
    current_trace_id,
    emit_event,
    metrics_enabled,
    parse_prometheus,
    profiled,
    set_registry,
    set_sink,
    to_prometheus,
    trace,
)


class _Capture:
    """A sink that keeps every record for assertions."""

    def __init__(self):
        self.records = []

    def emit(self, record):
        self.records.append(record)


@pytest.fixture
def registry():
    """A fresh enabled registry installed as the default, then removed."""
    fresh = MetricsRegistry(enabled=True)
    previous = set_registry(fresh)
    previous_sink = set_sink(NullSink())
    yield fresh
    set_sink(previous_sink)
    set_registry(previous)


class TestRegistry:
    def test_counter_accumulates(self, registry):
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        assert registry.counter("c").value == 5

    def test_counter_identity_is_stable(self, registry):
        assert registry.counter("c") is registry.counter("c")

    def test_gauge_last_write_wins(self, registry):
        registry.gauge("g").set(1.0)
        registry.gauge("g").set(7.5)
        assert registry.gauge("g").value == 7.5

    def test_histogram_aggregates(self, registry):
        histogram = registry.histogram("h")
        for value in (2.0, 1.0, 4.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 7.0
        assert histogram.min == 1.0
        assert histogram.max == 4.0
        assert histogram.mean == pytest.approx(7.0 / 3.0)

    def test_timer_records_into_histogram(self, registry):
        with registry.timer("t"):
            pass
        summary = registry.histogram("t").summary()
        assert summary["count"] == 1
        assert summary["total"] >= 0.0

    def test_snapshot_is_plain_json_data(self, registry):
        registry.counter("c").inc(2)
        registry.gauge("g").set(3.0)
        registry.histogram("h").observe(0.5)
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["counters"]["c"] == 2
        assert snapshot["gauges"]["g"] == 3.0
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_reset_zeroes_everything(self, registry):
        registry.counter("c").inc(9)
        registry.histogram("h").observe(1.0)
        registry.reset()
        assert registry.snapshot()["counters"]["c"] == 0
        assert registry.snapshot()["histograms"]["h"]["count"] == 0

    def test_count_helper_uses_default_registry(self, registry):
        count("helper", 3)
        assert registry.counter("helper").value == 3


class TestDisabledMode:
    def test_disabled_registry_hands_out_noops(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("c").inc(5)
        registry.gauge("g").set(1.0)
        registry.histogram("h").observe(2.0)
        with registry.timer("t"):
            pass
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["histograms"] == {}

    def test_disable_stops_recording_but_keeps_values(self, registry):
        registry.counter("c").inc(2)
        registry.disable()
        registry.counter("c").inc(100)
        assert registry.snapshot()["counters"]["c"] == 2
        registry.enable()
        registry.counter("c").inc()
        assert registry.snapshot()["counters"]["c"] == 3

    def test_trace_is_noop_while_disabled(self, registry):
        registry.disable()
        handle = trace("nothing", n=1)
        with handle:
            pass
        assert handle.span_id is None
        assert "span.nothing.seconds" not in (
            registry.snapshot()["histograms"]
        )

    def test_profiled_skips_bookkeeping_while_disabled(self, registry):
        registry.disable()

        @profiled("probe")
        def work():
            return 42

        assert work() == 42
        assert registry.snapshot()["counters"] == {}

    def test_configure_round_trip(self, registry):
        configure(enabled=False)
        assert not metrics_enabled()
        configure(enabled=True)
        assert metrics_enabled()


class TestSpans:
    def test_span_records_duration_histogram(self, registry):
        with trace("op", n=10):
            pass
        summary = registry.snapshot()["histograms"]["span.op.seconds"]
        assert summary["count"] == 1

    def test_nested_spans_link_parent(self, registry):
        captured = []

        class Capture:
            def emit(self, span):
                captured.append(span)

        set_sink(Capture())
        with trace("outer") as outer:
            with trace("inner") as inner:
                assert inner.parent_id == outer.span_id
        assert [span["name"] for span in captured] == ["inner", "outer"]
        assert captured[0]["parent_id"] == captured[1]["span_id"]

    def test_span_captures_error_and_reraises(self, registry):
        captured = []

        class Capture:
            def emit(self, span):
                captured.append(span)

        set_sink(Capture())
        with pytest.raises(ValueError):
            with trace("boom"):
                raise ValueError("bad")
        assert captured[0]["error"] == "ValueError: bad"

    def test_logging_sink_emits_one_record(self, registry, caplog):
        set_sink(LoggingSink())
        with caplog.at_level(logging.INFO, logger="repro.obs"):
            with trace("logged"):
                pass
        assert any("logged" in record.message for record in caplog.records)

    def test_jsonl_sink_round_trip(self, registry, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        set_sink(sink)
        with trace("first", n=3):
            pass
        with trace("second"):
            pass
        sink.write({"type": "metrics", "extra": True})
        sink.close()
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        assert [line["type"] for line in lines] == [
            "span", "span", "metrics",
        ]
        assert lines[0]["name"] == "first"
        assert lines[0]["attributes"] == {"n": 3}
        assert lines[0]["duration_seconds"] >= 0.0


class TestProfiled:
    def test_records_calls_and_seconds(self, registry):
        @profiled("unit")
        def work(x):
            return x + 1

        assert work(1) == 2
        assert work(2) == 3
        snapshot = registry.snapshot()
        assert snapshot["counters"]["unit.calls"] == 2
        assert snapshot["histograms"]["unit.seconds"]["count"] == 2

    def test_bare_decorator_derives_name(self, registry):
        @profiled
        def derived():
            return None

        derived()
        assert "test_obs.derived.calls" in (
            registry.snapshot()["counters"]
        )

    def test_records_even_when_function_raises(self, registry):
        @profiled("fails")
        def explode():
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError):
            explode()
        assert registry.snapshot()["counters"]["fails.calls"] == 1


class TestKernelInstrumentation:
    def test_t_erank_records_tuples_accessed(self, registry, fig4):
        ranks = tuple_expected_ranks(fig4)
        assert len(ranks) == 4
        snapshot = registry.snapshot()
        # The exact pass reads every tuple of the Figure 4 relation.
        assert snapshot["counters"]["t_erank.tuples_accessed"] == 4
        assert snapshot["counters"]["t_erank.calls"] == 1
        assert snapshot["histograms"]["t_erank.seconds"]["count"] == 1

    def test_prune_counter_matches_result_metadata(self, registry, fig4):
        result = t_erank_prune(fig4, 2)
        snapshot = registry.snapshot()
        assert (
            snapshot["counters"]["t_erank_prune.tuples_accessed"]
            == result.metadata["tuples_accessed"]
        )

    def test_planner_counts_method_and_accesses(self, registry, fig4):
        result = TopKPlanner().execute(fig4, 2)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["query.method.expected_rank"] == 1
        assert (
            snapshot["counters"]["query.tuples_accessed"]
            == result.metadata["tuples_accessed"]
        )
        assert (
            snapshot["histograms"]["span.query.execute.seconds"]["count"]
            == 1
        )

    def test_results_identical_with_obs_on_and_off(self, registry, fig4):
        enabled = tuple_expected_ranks(fig4)
        registry.disable()
        disabled = tuple_expected_ranks(fig4)
        assert enabled == disabled


class TestAccessCounter:
    def test_zero_latency_never_sleeps(self, monkeypatch):
        def forbidden(_seconds):
            raise AssertionError("time.sleep entered with zero latency")

        monkeypatch.setattr("repro.engine.access.time.sleep", forbidden)
        counter = AccessCounter()
        for _ in range(100):
            counter.charge()
        assert counter.count == 100

    def test_reset_allows_reuse_across_repetitions(self, fig4):
        counter = AccessCounter()
        for _ in score_cursor(fig4, counter):
            pass
        assert counter.count == 4
        counter.reset()
        assert counter.count == 0
        for _ in score_cursor(fig4, counter):
            pass
        assert counter.count == 4

    def test_charge_flows_into_registry(self, registry, fig4):
        counter = AccessCounter()
        for _ in score_cursor(fig4, counter):
            pass
        assert (
            registry.snapshot()["counters"]["engine.tuples_accessed"] == 4
        )

    def test_charge_skips_registry_when_disabled(self, registry, fig4):
        registry.disable()
        counter = AccessCounter()
        counter.charge()
        registry.enable()
        assert "engine.tuples_accessed" not in (
            registry.snapshot()["counters"]
        )


class TestTraceIds:
    def test_root_span_mints_trace_id(self, registry):
        with trace("root") as span:
            assert span.trace_id is not None
            assert current_trace_id() == span.trace_id
        assert current_trace_id() is None

    def test_nested_spans_inherit_the_trace_id(self, registry):
        sink = _Capture()
        set_sink(sink)
        with trace("outer") as outer:
            with trace("inner") as inner:
                assert inner.trace_id == outer.trace_id
        ids = {record["trace_id"] for record in sink.records}
        assert ids == {outer.trace_id}

    def test_separate_roots_get_distinct_ids(self, registry):
        with trace("first") as first:
            pass
        with trace("second") as second:
            pass
        assert first.trace_id != second.trace_id

    def test_emit_event_carries_ambient_ids(self, registry):
        sink = _Capture()
        set_sink(sink)
        with trace("op") as span:
            emit_event("checkpoint", step=3)
        event = next(
            record
            for record in sink.records
            if record["type"] == "event"
        )
        assert event["name"] == "checkpoint"
        assert event["trace_id"] == span.trace_id
        assert event["span_id"] == span.span_id
        assert event["attributes"] == {"step": 3}

    def test_event_outside_any_span_has_null_ids(self, registry):
        sink = _Capture()
        set_sink(sink)
        emit_event("orphan")
        assert sink.records[0]["trace_id"] is None
        assert sink.records[0]["span_id"] is None

    def test_events_free_while_disabled(self, registry):
        sink = _Capture()
        set_sink(sink)
        registry.disable()
        emit_event("nothing")
        assert sink.records == []

    def test_null_span_has_no_trace_id(self, registry):
        registry.disable()
        with trace("off") as span:
            assert span.trace_id is None

    def test_query_log_entry_records_the_trace_id(self, registry, fig4):
        from repro.engine.database import ProbabilisticDatabase

        sink = _Capture()
        set_sink(sink)
        db = ProbabilisticDatabase()
        db.create_relation("r", fig4)
        db.topk("r", 2)
        entry = db.query_log[-1]
        assert entry.trace_id is not None
        span_ids = {
            record["trace_id"]
            for record in sink.records
            if record["type"] == "span"
        }
        # Every span of the query carries the logged trace id.
        assert span_ids == {entry.trace_id}

    def test_query_log_trace_id_none_while_disabled(
        self, registry, fig4
    ):
        from repro.engine.database import ProbabilisticDatabase

        registry.disable()
        db = ProbabilisticDatabase()
        db.create_relation("r", fig4)
        db.topk("r", 2)
        assert db.query_log[-1].trace_id is None

    def test_resilient_result_metadata_links_to_spans(
        self, registry, fig4
    ):
        from repro.engine.query import ResilientExecutor

        sink = _Capture()
        set_sink(sink)
        result = ResilientExecutor().execute(fig4, 2)
        trace_id = result.metadata["trace_id"]
        assert trace_id is not None
        names = {
            record["name"]
            for record in sink.records
            if record["trace_id"] == trace_id
        }
        assert {"robust.execute", "robust.rung"} <= names


class TestBucketHistogram:
    def test_cumulative_buckets_are_monotone_and_end_at_count(
        self, registry
    ):
        histogram = registry.histogram("h")
        for value in (0.5e-6, 3e-6, 5e-6, 100.0):
            histogram.observe(value)
        pairs = histogram.cumulative_buckets()
        counts = [count_ for _, count_ in pairs]
        assert counts == sorted(counts)
        assert pairs[-1] == (float("inf"), 4)

    def test_quantile_lands_in_the_right_bucket(self):
        from repro.obs.metrics import Histogram

        histogram = Histogram("h", buckets=[1.0, 2.0, 4.0, 8.0])
        for value in (0.5, 1.5, 1.6, 3.0, 7.0):
            histogram.observe(value)
        # The median sample (1.5, 1.6 region) lies in the (1, 2]
        # bucket; interpolation must answer inside it.
        assert 1.0 <= histogram.quantile(0.5) <= 2.0
        assert histogram.quantile(0.0) == pytest.approx(0.5)
        assert histogram.quantile(1.0) == pytest.approx(7.0)

    def test_quantile_clamped_to_observed_range(self):
        from repro.obs.metrics import Histogram

        histogram = Histogram("h", buckets=[10.0, 20.0])
        histogram.observe(12.0)
        # One sample in (10, 20]: naive interpolation would answer a
        # bucket edge; the clamp pins it to the only observed value.
        assert histogram.quantile(0.5) == pytest.approx(12.0)

    def test_empty_histogram_answers_zero(self):
        from repro.obs.metrics import Histogram

        histogram = Histogram("h")
        assert histogram.quantile(0.5) == 0.0
        assert histogram.percentiles() == {
            "p50": 0.0, "p95": 0.0, "p99": 0.0,
        }

    def test_quantile_rejects_out_of_range(self):
        from repro.obs.metrics import Histogram

        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)

    def test_summary_includes_percentiles(self, registry):
        histogram = registry.histogram("h")
        histogram.observe(1.0)
        summary = histogram.summary()
        assert {"p50", "p95", "p99"} <= set(summary)

    def test_reset_clears_bucket_counts(self):
        from repro.obs.metrics import Histogram

        histogram = Histogram("h")
        histogram.observe(1.0)
        histogram.reset()
        assert histogram.cumulative_buckets()[-1] == (float("inf"), 0)

    def test_percentiles_order_on_skewed_data(self):
        from repro.obs.metrics import Histogram

        histogram = Histogram("h")
        for _ in range(99):
            histogram.observe(1e-6)
        histogram.observe(10.0)
        percentiles = histogram.percentiles()
        assert (
            percentiles["p50"]
            <= percentiles["p95"]
            <= percentiles["p99"]
        )
        assert percentiles["p50"] == pytest.approx(1e-6)


class TestPrometheusExport:
    def test_counter_gets_total_suffix_and_type_line(self, registry):
        registry.counter("demo.calls").inc(3)
        text = to_prometheus(registry)
        assert "# TYPE repro_demo_calls_total counter" in text
        assert "repro_demo_calls_total 3" in text
        assert text.endswith("\n")

    def test_gauge_and_histogram_families(self, registry):
        registry.gauge("load").set(0.5)
        registry.histogram("lat").observe(1.0)
        text = to_prometheus(registry)
        assert "# TYPE repro_load gauge" in text
        assert "# TYPE repro_lat histogram" in text
        assert 'repro_lat_bucket{le="+Inf"} 1' in text
        assert "repro_lat_sum 1" in text
        assert "repro_lat_count 1" in text

    def test_invalid_characters_sanitised(self, registry):
        registry.counter("span.query-execute/total").inc()
        text = to_prometheus(registry)
        assert "repro_span_query_execute_total_total 1" in text

    def test_empty_registry_exports_empty_string(self):
        assert to_prometheus(MetricsRegistry(enabled=True)) == ""

    def test_round_trip_through_parser(self, registry):
        registry.counter("a.calls").inc(2)
        registry.gauge("b").set(7.0)
        histogram = registry.histogram("c")
        histogram.observe(3e-6)
        histogram.observe(1.0)
        families = parse_prometheus(to_prometheus(registry))
        assert families["repro_a_calls_total"]["type"] == "counter"
        assert (
            families["repro_a_calls_total"]["samples"][0]["value"] == 2
        )
        assert families["repro_b"]["samples"][0]["value"] == 7.0
        histogram_family = families["repro_c"]
        assert histogram_family["type"] == "histogram"
        names = {
            sample["name"] for sample in histogram_family["samples"]
        }
        assert {
            "repro_c_bucket", "repro_c_sum", "repro_c_count",
        } == names
        inf_bucket = [
            sample
            for sample in histogram_family["samples"]
            if sample["labels"].get("le") == "+Inf"
        ]
        assert inf_bucket[0]["value"] == 2

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_prometheus("not a metric line at all !!!\n")

    def test_registry_method_delegates(self, registry):
        registry.counter("x").inc()
        assert registry.to_prometheus() == to_prometheus(registry)


class TestJsonlSinkConcurrency:
    def test_nested_spans_from_many_threads_stay_atomic(
        self, registry, tmp_path
    ):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        set_sink(sink)

        def work(index):
            with trace("outer", worker=index):
                with trace("inner", worker=index):
                    pass

        threads = [
            threading.Thread(target=work, args=(index,))
            for index in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        sink.close()
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        # Every record parses (no interleaved partial writes) and
        # every worker contributed its two spans.
        assert len(lines) == 16
        workers = {
            line["attributes"]["worker"] for line in lines
        }
        assert workers == set(range(8))

    def test_thread_trace_ids_do_not_leak_across_threads(
        self, registry, tmp_path
    ):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        set_sink(sink)

        def work(index):
            with trace("root", worker=index):
                pass

        threads = [
            threading.Thread(target=work, args=(index,))
            for index in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        sink.close()
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        # Each thread's root span minted its own trace id.
        assert len({line["trace_id"] for line in lines}) == 6


class TestProfiledGenerator:
    def test_generator_counts_one_call_and_times_iteration(
        self, registry
    ):
        @profiled("gen")
        def stream(n):
            for index in range(n):
                yield index

        assert list(stream(4)) == [0, 1, 2, 3]
        snapshot = registry.snapshot()
        assert snapshot["counters"]["gen.calls"] == 1
        assert snapshot["histograms"]["gen.seconds"]["count"] == 1

    def test_generator_still_lazy_when_profiled(self, registry):
        pulled = []

        @profiled("lazy")
        def stream():
            for index in range(100):
                pulled.append(index)
                yield index

        iterator = stream()
        assert pulled == []
        assert next(iterator) == 0
        assert pulled == [0]
        iterator.close()
        # Early close still lands the timing observation.
        assert (
            registry.snapshot()["histograms"]["lazy.seconds"]["count"]
            == 1
        )

    def test_generator_exception_still_records(self, registry):
        @profiled("bad")
        def stream():
            yield 1
            raise RuntimeError("mid-iteration")

        iterator = stream()
        assert next(iterator) == 1
        with pytest.raises(RuntimeError):
            next(iterator)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["bad.calls"] == 1
        assert snapshot["histograms"]["bad.seconds"]["count"] == 1

    def test_disabled_generator_passthrough(self, registry):
        registry.disable()

        @profiled("off")
        def stream():
            yield from range(3)

        assert list(stream()) == [0, 1, 2]
        registry.enable()
        assert registry.snapshot()["counters"] == {}


class TestPruneTrajectory:
    def test_tuple_prune_records_trajectory(self, registry):
        from repro.bench.workloads import tuple_workload

        relation = tuple_workload("uu", 200, seed=5)
        result = t_erank_prune(relation, 5)
        trajectory = result.metadata["prune_trajectory"]
        assert trajectory
        accessed = [point["accessed"] for point in trajectory]
        assert accessed == sorted(accessed)
        assert accessed[-1] == result.metadata["tuples_accessed"]
        final = trajectory[-1]
        assert {"accessed", "kth_rank", "unseen_bound"} <= set(final)

    def test_attr_prune_records_trajectory(self, registry):
        from repro.bench.workloads import attribute_workload
        from repro.core.attr_expected_rank import a_erank_prune

        relation = attribute_workload("zipf", 120, seed=5)
        result = a_erank_prune(relation, 5)
        trajectory = result.metadata["prune_trajectory"]
        assert trajectory
        assert (
            trajectory[-1]["accessed"]
            == result.metadata["tuples_accessed"]
        )

    def test_no_trajectory_while_disabled(self, registry, fig4):
        registry.disable()
        result = t_erank_prune(fig4, 2)
        assert "prune_trajectory" not in result.metadata

    def test_answers_identical_with_and_without_trajectory(
        self, registry
    ):
        from repro.bench.workloads import tuple_workload

        relation = tuple_workload("uu", 150, seed=9)
        enabled = t_erank_prune(relation, 5)
        registry.disable()
        disabled = t_erank_prune(relation, 5)
        assert enabled.tids() == disabled.tids()
        assert (
            enabled.metadata["tuples_accessed"]
            == disabled.metadata["tuples_accessed"]
        )


class TestJsonlSinkMaxBytes:
    def test_cap_writes_truncation_notice(self, tmp_path):
        path = tmp_path / "capped.jsonl"
        sink = JsonlSink(path, max_bytes=40)
        first = {"type": "span", "name": "keep"}
        sink.write(first)
        for index in range(5):
            sink.write({"type": "span", "name": f"drop{index}"})
        sink.close()
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        assert lines[0]["name"] == "keep"
        assert lines[-1]["type"] == "truncation_notice"
        assert lines[-1]["max_bytes"] == 40
        assert sink.truncated is True
        # One record tripped the cap, four more were dropped after.
        assert sink.dropped_records == 5

    def test_no_cap_never_truncates(self, tmp_path):
        path = tmp_path / "free.jsonl"
        sink = JsonlSink(path)
        for index in range(50):
            sink.write({"i": index})
        sink.close()
        assert sink.truncated is False
        assert sink.dropped_records == 0
        assert len(path.read_text().splitlines()) == 50

    def test_non_positive_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlSink(tmp_path / "bad.jsonl", max_bytes=0)

    def test_file_stays_at_or_under_cap_plus_notice(self, tmp_path):
        path = tmp_path / "capped.jsonl"
        cap = 200
        sink = JsonlSink(path, max_bytes=cap)
        for index in range(20):
            sink.write({"type": "span", "name": "x" * 10, "i": index})
        sink.close()
        lines = path.read_text().splitlines()
        # Every line except the final notice fits within the cap.
        payload = sum(len(line) + 1 for line in lines[:-1])
        assert payload <= cap
        assert json.loads(lines[-1])["type"] == "truncation_notice"
