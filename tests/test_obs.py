"""The observability layer: registry, spans, sinks, ``@profiled``."""

from __future__ import annotations

import json
import logging

import pytest

from repro.core.tuple_expected_rank import (
    t_erank_prune,
    tuple_expected_ranks,
)
from repro.engine.access import AccessCounter, score_cursor
from repro.engine.query import TopKPlanner
from repro.obs import (
    JsonlSink,
    LoggingSink,
    MetricsRegistry,
    NullSink,
    configure,
    count,
    metrics_enabled,
    profiled,
    set_registry,
    set_sink,
    trace,
)


@pytest.fixture
def registry():
    """A fresh enabled registry installed as the default, then removed."""
    fresh = MetricsRegistry(enabled=True)
    previous = set_registry(fresh)
    previous_sink = set_sink(NullSink())
    yield fresh
    set_sink(previous_sink)
    set_registry(previous)


class TestRegistry:
    def test_counter_accumulates(self, registry):
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        assert registry.counter("c").value == 5

    def test_counter_identity_is_stable(self, registry):
        assert registry.counter("c") is registry.counter("c")

    def test_gauge_last_write_wins(self, registry):
        registry.gauge("g").set(1.0)
        registry.gauge("g").set(7.5)
        assert registry.gauge("g").value == 7.5

    def test_histogram_aggregates(self, registry):
        histogram = registry.histogram("h")
        for value in (2.0, 1.0, 4.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 7.0
        assert histogram.min == 1.0
        assert histogram.max == 4.0
        assert histogram.mean == pytest.approx(7.0 / 3.0)

    def test_timer_records_into_histogram(self, registry):
        with registry.timer("t"):
            pass
        summary = registry.histogram("t").summary()
        assert summary["count"] == 1
        assert summary["total"] >= 0.0

    def test_snapshot_is_plain_json_data(self, registry):
        registry.counter("c").inc(2)
        registry.gauge("g").set(3.0)
        registry.histogram("h").observe(0.5)
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert snapshot["counters"]["c"] == 2
        assert snapshot["gauges"]["g"] == 3.0
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_reset_zeroes_everything(self, registry):
        registry.counter("c").inc(9)
        registry.histogram("h").observe(1.0)
        registry.reset()
        assert registry.snapshot()["counters"]["c"] == 0
        assert registry.snapshot()["histograms"]["h"]["count"] == 0

    def test_count_helper_uses_default_registry(self, registry):
        count("helper", 3)
        assert registry.counter("helper").value == 3


class TestDisabledMode:
    def test_disabled_registry_hands_out_noops(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("c").inc(5)
        registry.gauge("g").set(1.0)
        registry.histogram("h").observe(2.0)
        with registry.timer("t"):
            pass
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["histograms"] == {}

    def test_disable_stops_recording_but_keeps_values(self, registry):
        registry.counter("c").inc(2)
        registry.disable()
        registry.counter("c").inc(100)
        assert registry.snapshot()["counters"]["c"] == 2
        registry.enable()
        registry.counter("c").inc()
        assert registry.snapshot()["counters"]["c"] == 3

    def test_trace_is_noop_while_disabled(self, registry):
        registry.disable()
        handle = trace("nothing", n=1)
        with handle:
            pass
        assert handle.span_id is None
        assert "span.nothing.seconds" not in (
            registry.snapshot()["histograms"]
        )

    def test_profiled_skips_bookkeeping_while_disabled(self, registry):
        registry.disable()

        @profiled("probe")
        def work():
            return 42

        assert work() == 42
        assert registry.snapshot()["counters"] == {}

    def test_configure_round_trip(self, registry):
        configure(enabled=False)
        assert not metrics_enabled()
        configure(enabled=True)
        assert metrics_enabled()


class TestSpans:
    def test_span_records_duration_histogram(self, registry):
        with trace("op", n=10):
            pass
        summary = registry.snapshot()["histograms"]["span.op.seconds"]
        assert summary["count"] == 1

    def test_nested_spans_link_parent(self, registry):
        captured = []

        class Capture:
            def emit(self, span):
                captured.append(span)

        set_sink(Capture())
        with trace("outer") as outer:
            with trace("inner") as inner:
                assert inner.parent_id == outer.span_id
        assert [span["name"] for span in captured] == ["inner", "outer"]
        assert captured[0]["parent_id"] == captured[1]["span_id"]

    def test_span_captures_error_and_reraises(self, registry):
        captured = []

        class Capture:
            def emit(self, span):
                captured.append(span)

        set_sink(Capture())
        with pytest.raises(ValueError):
            with trace("boom"):
                raise ValueError("bad")
        assert captured[0]["error"] == "ValueError: bad"

    def test_logging_sink_emits_one_record(self, registry, caplog):
        set_sink(LoggingSink())
        with caplog.at_level(logging.INFO, logger="repro.obs"):
            with trace("logged"):
                pass
        assert any("logged" in record.message for record in caplog.records)

    def test_jsonl_sink_round_trip(self, registry, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        set_sink(sink)
        with trace("first", n=3):
            pass
        with trace("second"):
            pass
        sink.write({"type": "metrics", "extra": True})
        sink.close()
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        assert [line["type"] for line in lines] == [
            "span", "span", "metrics",
        ]
        assert lines[0]["name"] == "first"
        assert lines[0]["attributes"] == {"n": 3}
        assert lines[0]["duration_seconds"] >= 0.0


class TestProfiled:
    def test_records_calls_and_seconds(self, registry):
        @profiled("unit")
        def work(x):
            return x + 1

        assert work(1) == 2
        assert work(2) == 3
        snapshot = registry.snapshot()
        assert snapshot["counters"]["unit.calls"] == 2
        assert snapshot["histograms"]["unit.seconds"]["count"] == 2

    def test_bare_decorator_derives_name(self, registry):
        @profiled
        def derived():
            return None

        derived()
        assert "test_obs.derived.calls" in (
            registry.snapshot()["counters"]
        )

    def test_records_even_when_function_raises(self, registry):
        @profiled("fails")
        def explode():
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError):
            explode()
        assert registry.snapshot()["counters"]["fails.calls"] == 1


class TestKernelInstrumentation:
    def test_t_erank_records_tuples_accessed(self, registry, fig4):
        ranks = tuple_expected_ranks(fig4)
        assert len(ranks) == 4
        snapshot = registry.snapshot()
        # The exact pass reads every tuple of the Figure 4 relation.
        assert snapshot["counters"]["t_erank.tuples_accessed"] == 4
        assert snapshot["counters"]["t_erank.calls"] == 1
        assert snapshot["histograms"]["t_erank.seconds"]["count"] == 1

    def test_prune_counter_matches_result_metadata(self, registry, fig4):
        result = t_erank_prune(fig4, 2)
        snapshot = registry.snapshot()
        assert (
            snapshot["counters"]["t_erank_prune.tuples_accessed"]
            == result.metadata["tuples_accessed"]
        )

    def test_planner_counts_method_and_accesses(self, registry, fig4):
        result = TopKPlanner().execute(fig4, 2)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["query.method.expected_rank"] == 1
        assert (
            snapshot["counters"]["query.tuples_accessed"]
            == result.metadata["tuples_accessed"]
        )
        assert (
            snapshot["histograms"]["span.query.execute.seconds"]["count"]
            == 1
        )

    def test_results_identical_with_obs_on_and_off(self, registry, fig4):
        enabled = tuple_expected_ranks(fig4)
        registry.disable()
        disabled = tuple_expected_ranks(fig4)
        assert enabled == disabled


class TestAccessCounter:
    def test_zero_latency_never_sleeps(self, monkeypatch):
        def forbidden(_seconds):
            raise AssertionError("time.sleep entered with zero latency")

        monkeypatch.setattr("repro.engine.access.time.sleep", forbidden)
        counter = AccessCounter()
        for _ in range(100):
            counter.charge()
        assert counter.count == 100

    def test_reset_allows_reuse_across_repetitions(self, fig4):
        counter = AccessCounter()
        for _ in score_cursor(fig4, counter):
            pass
        assert counter.count == 4
        counter.reset()
        assert counter.count == 0
        for _ in score_cursor(fig4, counter):
            pass
        assert counter.count == 4

    def test_charge_flows_into_registry(self, registry, fig4):
        counter = AccessCounter()
        for _ in score_cursor(fig4, counter):
            pass
        assert (
            registry.snapshot()["counters"]["engine.tuples_accessed"] == 4
        )

    def test_charge_skips_registry_when_disabled(self, registry, fig4):
        registry.disable()
        counter = AccessCounter()
        counter.charge()
        registry.enable()
        assert "engine.tuples_accessed" not in (
            registry.snapshot()["counters"]
        )
