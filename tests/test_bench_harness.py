"""Tests for the benchmark harness utilities."""

from __future__ import annotations

import pytest

from repro.bench import (
    Table,
    geometric_sweep,
    growth_exponent,
    measure_seconds,
)


class TestMeasure:
    def test_returns_positive_seconds(self):
        assert measure_seconds(lambda: sum(range(1000))) > 0.0

    def test_warmup_and_repeats(self):
        calls = []
        measure_seconds(lambda: calls.append(1), repeats=3, warmup=2)
        assert len(calls) == 5

    def test_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            measure_seconds(lambda: None, repeats=0)


class TestSweep:
    def test_geometric(self):
        assert geometric_sweep(100, 800) == [100, 200, 400, 800]

    def test_inclusive_stop(self):
        assert geometric_sweep(3, 3) == [3]

    def test_factor(self):
        assert geometric_sweep(1, 27, factor=3) == [1, 3, 9, 27]

    def test_validation(self):
        with pytest.raises(ValueError):
            geometric_sweep(0, 10)
        with pytest.raises(ValueError):
            geometric_sweep(10, 5)
        with pytest.raises(ValueError):
            geometric_sweep(1, 10, factor=1)


class TestGrowthExponent:
    def test_linear(self):
        sizes = [100, 200, 400, 800]
        times = [1.0, 2.0, 4.0, 8.0]
        assert growth_exponent(sizes, times) == pytest.approx(1.0)

    def test_quadratic(self):
        sizes = [10, 20, 40]
        times = [100.0, 400.0, 1600.0]
        assert growth_exponent(sizes, times) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            growth_exponent([1], [1.0])


class TestTable:
    def test_render_alignment(self):
        table = Table("Demo", ["N", "seconds"])
        table.add_row([100, 0.123456])
        table.add_row([200000, 12.0])
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "N" in lines[1] and "seconds" in lines[1]
        assert len(lines) == 5

    def test_row_length_checked(self):
        table = Table("Demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_column_extraction(self):
        table = Table("Demo", ["a", "b"])
        table.add_row([1, 2])
        table.add_row([3, 4])
        assert table.column("b") == [2, 4]
        with pytest.raises(KeyError):
            table.column("zzz")

    def test_formatting_conventions(self):
        table = Table("Demo", ["value"])
        table.add_row([True])
        table.add_row([0.000001])
        table.add_row([0.0])
        text = table.render()
        assert "yes" in text
        assert "e-06" in text

    def test_notes_rendered(self):
        table = Table("Demo", ["a"])
        table.add_row([1])
        table.add_note("paper reports the same shape")
        assert "note: paper reports" in table.render()
