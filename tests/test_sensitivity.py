"""Tests for the ranking sensitivity analysis."""

from __future__ import annotations

import pytest

from repro.core import (
    ChurnReport,
    perturb_relation,
    stability_profile,
    topk_churn,
)
from repro.datagen import (
    generate_attribute_relation,
    generate_tuple_relation,
)
from repro.exceptions import RankingError
from repro.models import (
    AttributeLevelRelation,
    TupleLevelRelation,
)


class TestPerturbRelation:
    def test_zero_noise_is_identity_tuple_level(self, fig4):
        same = perturb_relation(fig4, noise=0.0, rng=0)
        for original, copy in zip(fig4, same):
            assert copy.score == original.score
            assert copy.probability == original.probability

    def test_zero_noise_is_identity_attribute_level(self, fig2):
        same = perturb_relation(fig2, noise=0.0, rng=0)
        for original, copy in zip(fig2, same):
            assert copy.score == original.score

    def test_noise_bounded_relative(self, fig4):
        perturbed = perturb_relation(fig4, noise=0.1, rng=1)
        for original, copy in zip(fig4, perturbed):
            assert abs(copy.score - original.score) <= (
                0.1 * abs(original.score) + 1e-9
            )

    def test_rules_stay_valid(self):
        relation = generate_tuple_relation(
            60, rule_fraction=1.0, rule_size=3, seed=0,
            probability_high=0.33,
        )
        perturbed = perturb_relation(relation, noise=0.3, rng=2)
        assert isinstance(perturbed, TupleLevelRelation)
        for rule in perturbed.rules:
            mass = sum(
                perturbed.tuple_by_id(tid).probability for tid in rule
            )
            assert mass <= 1.0 + 1e-9

    def test_probabilities_clamped(self):
        relation = generate_tuple_relation(
            30, seed=1, probability_high=1.0
        )
        perturbed = perturb_relation(relation, noise=0.5, rng=3)
        assert all(
            0.0 <= row.probability <= 1.0 for row in perturbed
        )

    def test_selective_perturbation(self, fig4):
        scores_only = perturb_relation(
            fig4, noise=0.2, rng=4, perturb_probabilities=False
        )
        for original, copy in zip(fig4, scores_only):
            assert copy.probability == original.probability

    def test_negative_noise_rejected(self, fig4):
        with pytest.raises(RankingError):
            perturb_relation(fig4, noise=-0.1)

    def test_attribute_model_returns_attribute_model(self, fig2):
        assert isinstance(
            perturb_relation(fig2, noise=0.1, rng=0),
            AttributeLevelRelation,
        )


class TestChurn:
    def test_zero_noise_zero_churn(self):
        relation = generate_tuple_relation(50, seed=0)
        report = topk_churn(
            relation, 5, noise=0.0, trials=5, rng=0
        )
        assert report.mean_churn == 0.0
        assert all(
            rate == 1.0 for rate in report.retention.values()
        )

    def test_churn_grows_with_noise(self):
        relation = generate_tuple_relation(120, seed=1)
        profile = stability_profile(
            relation,
            10,
            noises=(0.01, 0.3),
            trials=15,
            rng=2,
        )
        assert profile[0].mean_churn <= profile[1].mean_churn

    def test_stable_core_shrinks_with_noise(self):
        relation = generate_tuple_relation(120, seed=3)
        profile = stability_profile(
            relation, 10, noises=(0.01, 0.3), trials=15, rng=4
        )
        assert len(profile[1].stable_core()) <= len(
            profile[0].stable_core()
        )

    def test_attribute_model_supported(self):
        relation = generate_attribute_relation(40, pdf_size=3, seed=5)
        report = topk_churn(relation, 5, noise=0.05, trials=5, rng=6)
        assert isinstance(report, ChurnReport)
        assert 0.0 <= report.mean_churn <= 1.0

    def test_other_methods_supported(self):
        relation = generate_tuple_relation(40, seed=7)
        report = topk_churn(
            relation,
            5,
            noise=0.1,
            trials=5,
            method="median_rank",
            rng=8,
        )
        assert set(report.retention) <= set(relation.tids())

    def test_validation(self, fig4):
        with pytest.raises(RankingError):
            topk_churn(fig4, 0, noise=0.1)
        with pytest.raises(RankingError):
            topk_churn(fig4, 2, noise=0.1, trials=0)

    def test_reproducibility(self):
        relation = generate_tuple_relation(60, seed=9)
        first = topk_churn(relation, 5, noise=0.1, trials=8, rng=10)
        second = topk_churn(relation, 5, noise=0.1, trials=8, rng=10)
        assert first.mean_churn == second.mean_churn
        assert first.retention == second.retention
