"""Tests for the sampling profiler (:mod:`repro.obs.profiler`).

The sampling layer is tested without a running sampler thread:
``sample_once(weight=...)`` against threads parked at known stacks
makes collapsed output and speedscope documents exact.  Lifecycle
tests assert the arm/disarm contract — no orphan thread ever survives
``stop()`` — and a subprocess pair proves the speedscope bytes are
``PYTHONHASHSEED``-invariant.  The structural validator is exercised
on both directions: documents the profiler emits pass, and each
contract violation raises.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.obs.profiler import (
    SPEEDSCOPE_SCHEMA_URL,
    SamplingProfiler,
    validate_speedscope,
)


class ParkedThread:
    """A thread waiting inside a recognisable two-frame stack."""

    def __init__(self, name: str = "parked") -> None:
        self._release = threading.Event()
        self._parked = threading.Event()
        self.thread = threading.Thread(
            target=self._outer, name=name, daemon=True
        )

    def _outer(self) -> None:
        self._inner()

    def _inner(self) -> None:
        self._parked.set()
        self._release.wait(timeout=30.0)

    def __enter__(self) -> "ParkedThread":
        self.thread.start()
        assert self._parked.wait(timeout=10.0)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._release.set()
        self.thread.join(timeout=10.0)


class TestSampling:
    @staticmethod
    def total_weight(profiler: SamplingProfiler) -> float:
        return sum(
            float(line.rpartition(" ")[2])
            for line in profiler.collapsed().splitlines()
        )

    def test_explicit_weights_make_exact_profiles(self):
        profiler = SamplingProfiler(hz=100.0)
        with ParkedThread():
            profiler.sample_once(weight=1.5)
            profiler.sample_once(weight=0.5)
        lines = [
            line
            for line in profiler.collapsed().splitlines()
            if "_outer (test_profiler" in line
        ]
        [line] = lines  # both samples fold into one stack
        stack = line.rpartition(" ")[0]
        assert stack.index("_outer (test_profiler") < stack.index(
            "_inner (test_profiler"
        )
        # The gap weight is shared across every thread observed in
        # it, so the profile's total tracks wall time exactly even
        # when unrelated background threads get sampled too.
        assert self.total_weight(profiler) == pytest.approx(2.0)
        assert profiler.sample_count == 2

    def test_weight_is_split_across_observed_threads(self):
        profiler = SamplingProfiler()
        with ParkedThread("parked-a"), ParkedThread("parked-b"):
            profiler.sample_once(weight=2.0)
        document = profiler.to_speedscope()
        weights = document["profiles"][0]["weights"]
        assert len(weights) >= 2  # both parked threads observed
        share = 2.0 / len(weights)
        assert all(w == pytest.approx(share) for w in weights)
        assert document["profiles"][0]["endValue"] == pytest.approx(
            2.0
        )

    def test_own_thread_is_never_sampled(self):
        profiler = SamplingProfiler()
        profiler.sample_once(weight=1.0)  # only this thread runs it
        own = threading.current_thread()
        collapsed = profiler.collapsed()
        assert "test_own_thread_is_never_sampled" not in collapsed
        assert own.is_alive()

    def test_timeline_caps_but_totals_keep_counting(self):
        profiler = SamplingProfiler(max_samples=2)
        with ParkedThread():
            for _ in range(3):
                profiler.sample_once(weight=1.0)
        assert profiler.truncated
        document = profiler.to_speedscope()
        assert len(document["profiles"][0]["samples"]) == 2
        # The collapsed weights still account for all three samples.
        assert self.total_weight(profiler) == pytest.approx(3.0)

    def test_speedscope_document_passes_its_own_validator(self):
        profiler = SamplingProfiler()
        with ParkedThread():
            profiler.sample_once(weight=0.25)
        document = profiler.to_speedscope(name="unit")
        validate_speedscope(document)
        assert document["$schema"] == SPEEDSCOPE_SCHEMA_URL
        [profile] = document["profiles"]
        assert profile["name"] == "unit"
        assert len(profile["samples"]) == len(profile["weights"])
        frame_count = len(document["shared"]["frames"])
        assert all(
            0 <= index < frame_count
            for sample in profile["samples"]
            for index in sample
        )

    def test_write_txt_and_json_formats(self, tmp_path):
        profiler = SamplingProfiler()
        with ParkedThread():
            profiler.sample_once(weight=1.0)
        text_path = tmp_path / "profile.txt"
        json_path = tmp_path / "profile.speedscope.json"
        profiler.write(text_path)
        profiler.write(json_path, name="dump")
        assert text_path.read_text().rstrip("\n") == (
            profiler.collapsed()
        )
        document = json.loads(json_path.read_text())
        validate_speedscope(document)
        assert document["profiles"][0]["name"] == "dump"


class TestDeterminism:
    #: Builds one deterministic profile and prints its exact bytes;
    #: run under different hash seeds, the output must not move.
    SCRIPT = (
        "import json, threading\n"
        "from repro.obs.profiler import SamplingProfiler\n"
        "release = threading.Event(); parked = threading.Event()\n"
        "def outer():\n"
        "    inner()\n"
        "def inner():\n"
        "    parked.set(); release.wait(timeout=30.0)\n"
        "t = threading.Thread(target=outer, daemon=True)\n"
        "t.start(); parked.wait(timeout=10.0)\n"
        "p = SamplingProfiler()\n"
        "p.sample_once(weight=0.125)\n"
        "p.sample_once(weight=0.25)\n"
        "release.set(); t.join(timeout=10.0)\n"
        "print(json.dumps(p.to_speedscope(), sort_keys=True))\n"
    )

    @pytest.mark.timeout(60)
    def test_speedscope_bytes_are_hashseed_invariant(self):
        outputs = set()
        for seed in ("0", "1", "12345"):
            completed = subprocess.run(
                [sys.executable, "-c", self.SCRIPT],
                capture_output=True,
                text=True,
                env={
                    **os.environ,
                    "PYTHONHASHSEED": seed,
                    "PYTHONPATH": "src",
                },
                cwd=str(Path(__file__).resolve().parents[1]),
                check=True,
            )
            outputs.add(completed.stdout)
        assert len(outputs) == 1


class TestLifecycle:
    def test_start_stop_leaves_no_orphan_thread(self):
        before = set(threading.enumerate())
        profiler = SamplingProfiler(hz=500.0)
        profiler.start()
        assert profiler.armed
        assert any(
            thread.name == "repro-profiler"
            for thread in threading.enumerate()
        )
        profiler.stop()
        assert not profiler.armed
        leaked = [
            thread
            for thread in threading.enumerate()
            if thread not in before
        ]
        assert leaked == []

    @pytest.mark.timeout(30)
    def test_armed_profiler_collects_real_samples(self):
        with ParkedThread():
            with SamplingProfiler(hz=500.0) as profiler:
                deadline = time.perf_counter() + 5.0
                while (
                    profiler.sample_count == 0
                    and time.perf_counter() < deadline
                ):
                    time.sleep(0.01)
        assert profiler.sample_count > 0
        assert "_inner (test_profiler" in profiler.collapsed()
        validate_speedscope(profiler.to_speedscope())
        assert profiler.stopped_at is not None

    def test_double_start_raises(self):
        profiler = SamplingProfiler()
        profiler.start()
        try:
            with pytest.raises(RuntimeError, match="already armed"):
                profiler.start()
        finally:
            profiler.stop()

    def test_stop_is_idempotent(self):
        profiler = SamplingProfiler()
        profiler.stop()  # never started
        profiler.start()
        profiler.stop()
        profiler.stop()
        assert not profiler.armed

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="hz"):
            SamplingProfiler(hz=0.0)
        with pytest.raises(ValueError, match="hz"):
            SamplingProfiler(hz=1001.0)
        with pytest.raises(ValueError, match="max_samples"):
            SamplingProfiler(max_samples=0)


class TestValidator:
    def valid_document(self) -> dict:
        return {
            "$schema": SPEEDSCOPE_SCHEMA_URL,
            "shared": {"frames": [{"name": "f"}]},
            "profiles": [
                {
                    "type": "sampled",
                    "name": "x",
                    "unit": "seconds",
                    "startValue": 0.0,
                    "endValue": 1.0,
                    "samples": [[0]],
                    "weights": [1.0],
                }
            ],
        }

    def test_valid_document_is_silent(self):
        validate_speedscope(self.valid_document())

    @pytest.mark.parametrize(
        ("mutate", "message"),
        [
            (lambda d: d.update({"$schema": "x"}), "schema"),
            (lambda d: d.update({"shared": {}}), "frames"),
            (
                lambda d: d["shared"]["frames"].append({"x": 1}),
                "string name",
            ),
            (lambda d: d.update({"profiles": []}), "non-empty"),
            (
                lambda d: d["profiles"][0].update(
                    {"type": "evented"}
                ),
                "sampled",
            ),
            (
                lambda d: d["profiles"][0].update({"unit": "volts"}),
                "unit",
            ),
            (
                lambda d: d["profiles"][0].update({"weights": []}),
                "lengths differ",
            ),
            (
                lambda d: d["profiles"][0].update(
                    {"samples": [[7]]}
                ),
                "outside the table",
            ),
            (
                lambda d: d["profiles"][0].update(
                    {"samples": [[True]]}
                ),
                "outside the table",
            ),
        ],
    )
    def test_each_contract_violation_raises(self, mutate, message):
        document = self.valid_document()
        mutate(document)
        with pytest.raises(ValueError, match=message):
            validate_speedscope(document)

    def test_non_object_document_rejected(self):
        with pytest.raises(ValueError, match="object"):
            validate_speedscope([1, 2, 3])
