"""Unit tests for possible-world enumeration and rank semantics."""

from __future__ import annotations

import pytest

from repro.exceptions import ModelError
from repro.models import (
    AttributeLevelRelation,
    AttributeTuple,
    DiscretePDF,
    TupleLevelRelation,
    TupleLevelTuple,
    enumerate_attribute_worlds,
    enumerate_tuple_worlds,
)


class TestAttributeEnumeration:
    def test_probabilities_sum_to_one(self, fig2):
        total = sum(
            world.probability
            for world in enumerate_attribute_worlds(fig2)
        )
        assert total == pytest.approx(1.0)

    def test_zero_probability_worlds_skipped(self):
        relation = AttributeLevelRelation(
            [AttributeTuple("a", DiscretePDF([1, 2], [1.0, 0.0]))]
        )
        worlds = list(enumerate_attribute_worlds(relation))
        assert len(worlds) == 1
        assert worlds[0].scores == {"a": 1}

    def test_max_worlds_guard(self):
        relation = AttributeLevelRelation(
            AttributeTuple(
                f"t{index}", DiscretePDF.uniform_over([1, 2, 3])
            )
            for index in range(10)
        )
        with pytest.raises(ModelError):
            list(enumerate_attribute_worlds(relation, max_worlds=100))

    def test_rank_of_unknown_tuple(self, fig2):
        world = next(enumerate_attribute_worlds(fig2))
        with pytest.raises(ModelError):
            world.rank_of("nope")

    def test_bad_tie_rule(self, fig2):
        world = next(enumerate_attribute_worlds(fig2))
        with pytest.raises(ValueError):
            world.rank_of("t1", ties="bogus")  # type: ignore[arg-type]


class TestTieSemantics:
    @pytest.fixture
    def tied(self):
        """Two tuples whose scores tie with probability one."""
        return AttributeLevelRelation(
            [
                AttributeTuple("first", DiscretePDF.point(5)),
                AttributeTuple("second", DiscretePDF.point(5)),
            ]
        )

    def test_shared_ties_share_the_better_rank(self, tied):
        world = next(enumerate_attribute_worlds(tied))
        assert world.rank_of("first", ties="shared") == 0
        assert world.rank_of("second", ties="shared") == 0

    def test_by_index_ties_order_by_position(self, tied):
        world = next(enumerate_attribute_worlds(tied))
        assert world.rank_of("first", ties="by_index") == 0
        assert world.rank_of("second", ties="by_index") == 1

    def test_ranking_uses_index_tie_break(self, tied):
        world = next(enumerate_attribute_worlds(tied))
        assert world.ranking() == ["first", "second"]


class TestTupleEnumeration:
    def test_probabilities_sum_to_one(self, fig4):
        total = sum(
            world.probability for world in enumerate_tuple_worlds(fig4)
        )
        assert total == pytest.approx(1.0)

    def test_world_sizes_range(self, fig4):
        sizes = {world.size for world in enumerate_tuple_worlds(fig4)}
        assert sizes == {2, 3}

    def test_empty_world_possible(self):
        relation = TupleLevelRelation(
            [TupleLevelTuple("a", 1.0, 0.5)]
        )
        worlds = {
            frozenset(world.appearing): world.probability
            for world in enumerate_tuple_worlds(relation)
        }
        assert worlds[frozenset()] == pytest.approx(0.5)
        assert worlds[frozenset({"a"})] == pytest.approx(0.5)

    def test_missing_tuple_ranks_world_size(self, fig4):
        for world in enumerate_tuple_worlds(fig4):
            for tid in fig4.tids():
                if tid not in world:
                    assert world.rank_of(tid) == world.size

    def test_rule_members_never_coappear(self, fig4):
        for world in enumerate_tuple_worlds(fig4):
            assert not {"t2", "t4"} <= world.appearing

    def test_certain_tuple_always_appears(self, fig4):
        assert all(
            "t3" in world for world in enumerate_tuple_worlds(fig4)
        )

    def test_max_worlds_guard(self):
        relation = TupleLevelRelation(
            TupleLevelTuple(f"t{index}", float(index), 0.5)
            for index in range(25)
        )
        with pytest.raises(ModelError):
            list(enumerate_tuple_worlds(relation, max_worlds=1000))

    def test_top_k_truncates_to_world_size(self, fig4):
        for world in enumerate_tuple_worlds(fig4):
            assert len(world.top_k(10)) == world.size

    def test_rank_of_unknown_tuple(self, fig4):
        world = next(enumerate_tuple_worlds(fig4))
        with pytest.raises(ModelError):
            world.rank_of("ghost")


class TestDeterministicReduction:
    """On certain data both models reduce to classical top-k."""

    def test_attribute_single_world(self, certain_attribute):
        worlds = list(enumerate_attribute_worlds(certain_attribute))
        assert len(worlds) == 1
        assert worlds[0].probability == pytest.approx(1.0)
        assert worlds[0].ranking() == ["a", "b", "c"]

    def test_tuple_single_world(self, certain_tuple):
        worlds = list(enumerate_tuple_worlds(certain_tuple))
        assert len(worlds) == 1
        assert worlds[0].ranking() == ["a", "b", "c"]
