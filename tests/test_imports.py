"""Import hygiene: every module stands alone, no circular imports.

Layering matters in this codebase (models < stats < core < baselines <
engine < bench); a stray import can silently create a cycle that only
bites under a particular import order.  Importing every module in a
fresh interpreter, alone, proves none exists.
"""

from __future__ import annotations

import pkgutil
import subprocess
import sys

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    )
    if not name.endswith("__main__")
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_imports_standalone(module_name):
    completed = subprocess.run(
        [sys.executable, "-c", f"import {module_name}"],
        capture_output=True,
        text=True,
    )
    assert completed.returncode == 0, (
        f"import {module_name} failed:\n{completed.stderr}"
    )


def test_public_package_exports_resolve():
    """Every name in each package's __all__ must actually exist."""
    import importlib

    for package_name in (
        "repro",
        "repro.models",
        "repro.core",
        "repro.baselines",
        "repro.engine",
        "repro.datagen",
        "repro.stats",
        "repro.bench",
    ):
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", ()):
            assert hasattr(package, name), (
                f"{package_name}.__all__ lists missing name {name!r}"
            )
