"""Every example script must run cleanly end to end.

The examples are the advertised user journeys; a refactor that breaks
one should fail the unit suite, not wait for a reader to notice.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in SCRIPTS}
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable floor; we ship seven


@pytest.mark.parametrize(
    "script", SCRIPTS, ids=[path.stem for path in SCRIPTS]
)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert completed.returncode == 0, (
        f"{script.name} failed:\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script.name} printed nothing"
