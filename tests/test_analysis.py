"""Tests for the :mod:`repro.analysis` invariant linter.

Three layers of defence:

* fixture pairs — every rule has a ``*_bad.py`` file whose planted
  violations are asserted *exactly* (line and code), and a
  ``*_good.py`` twin proving the rule's exemptions hold;
* machinery — suppression directives, module scoping, alias
  resolution, the baseline round-trip, and the CLI exit codes;
* the self-check — the repo's own ``src`` tree must be clean under
  the checked-in ``analysis_baseline.json``, and every baseline
  entry must carry a written reason.
"""

from __future__ import annotations

import ast
import shutil
import subprocess
from pathlib import Path

import pytest

from repro.analysis import (
    analyze_file,
    analyze_paths,
    analyze_source,
    load_baseline,
    rules_by_code,
    write_baseline,
)
from repro.analysis import cli as analysis_cli
from repro.analysis.cache import AnalysisCache
from repro.analysis.callgraph import ProjectIndex
from repro.analysis.cfg import Dataflow, statement_bindings
from repro.analysis.context import ModuleContext
from repro.analysis.engine import RunStats

FIXTURES = Path(__file__).parent / "analysis_fixtures"
REPO_ROOT = Path(__file__).resolve().parents[1]

#: Exact planted violations per bad fixture: the lines that must
#: fire, in order.  A drifting rule fails loudly here.
EXPECTED_LINES = {
    "RPR001": (8, 9, 10, 11, 12),
    "RPR002": (5, 9, 13),
    "RPR003": (7, 13, 17, 22, 29),
    "RPR004": (6, 7, 8),
    "RPR005": (7, 14, 21),
    "RPR006": (5, 9, 14),
    "RPR007": (5, 6),
    "RPR008": (4, 9, 9),
    "RPR009": (9, 10, 11),
    "RPR010": (11, 15, 17),
    "RPR011": (7, 8, 9, 10, 14),
    "RPR012": (11, 16, 22, 26),
    "RPR013": (8, 9),
    "RPR014": (11, 12, 13, 14),
    "RPR015": (9, 15, 23),
    "RPR016": (11, 12, 18, 19),
}


def findings_for(name: str):
    return analyze_file(FIXTURES / name)


class TestFixturePairs:
    @pytest.mark.parametrize("code", sorted(EXPECTED_LINES))
    def test_bad_fixture_fires_exactly(self, code):
        findings = findings_for(f"{code.lower()}_bad.py")
        assert [(f.line, f.code) for f in findings] == [
            (line, code) for line in EXPECTED_LINES[code]
        ]

    @pytest.mark.parametrize("code", sorted(EXPECTED_LINES))
    def test_good_fixture_is_clean(self, code):
        assert findings_for(f"{code.lower()}_good.py") == []

    def test_every_rule_has_a_fixture_pair(self):
        assert set(EXPECTED_LINES) == set(rules_by_code())

    def test_messages_name_the_remedy(self):
        by_code = {
            code: " | ".join(
                finding.message
                for finding in findings_for(f"{code.lower()}_bad.py")
            )
            for code in EXPECTED_LINES
        }
        assert "seed" in by_code["RPR001"]
        assert "math.isclose" in by_code["RPR002"]
        assert "AccessCounter" in by_code["RPR003"]
        assert "monotonic" in by_code["RPR004"]
        assert "repro.exceptions" in by_code["RPR005"]
        assert "sorted()" in by_code["RPR006"]
        assert "get_registry()" in by_code["RPR007"]
        assert "None" in by_code["RPR008"]
        assert "run_in_executor" in by_code["RPR009"]
        assert "repro.obs.logging" in by_code["RPR010"]
        assert "query_accounting" in by_code["RPR011"]
        assert "alias" in by_code["RPR012"]
        assert "run_in_executor" in by_code["RPR013"]
        assert "await" in by_code["RPR014"]
        assert "finally" in by_code["RPR015"]
        assert "threading.Lock" in by_code["RPR016"]

    def test_rpr013_message_names_the_full_chain(self):
        findings = findings_for("rpr013_bad.py")
        chains = [finding.message for finding in findings]
        assert "relay -> nap -> time.sleep" in chains[0]
        assert "prepare -> load -> open" in chains[1]


class TestEngine:
    def test_syntax_error_is_rpr000_not_a_crash(self):
        findings = analyze_source("def broken(:\n", "bad.py")
        assert [f.code for f in findings] == ["RPR000"]
        assert "does not parse" in findings[0].message

    def test_finding_format_is_grep_friendly(self):
        finding = analyze_source(
            "import random\nrandom.random()\n", "pkg/mod.py"
        )[0]
        assert finding.format().startswith("pkg/mod.py:2:1: RPR001 ")

    def test_alias_import_cannot_dodge_rpr001(self):
        findings = analyze_source(
            "import random as rnd\nrnd.shuffle([1])\n", "mod.py"
        )
        assert [f.code for f in findings] == ["RPR001"]

    def test_select_subset_of_rules(self):
        source = "import random\nrandom.random()\nx = [i for i in {1}]\n"
        only_006 = analyze_source(
            source, "mod.py", rules=[rules_by_code()["RPR006"]]
        )
        assert [f.code for f in only_006] == ["RPR006"]

    def test_analyze_paths_rejects_missing_path(self):
        with pytest.raises(FileNotFoundError):
            analyze_paths(["no/such/tree"])


class TestScoping:
    def test_rpr003_only_applies_to_engine_modules(self):
        source = "def f(relation):\n    return [r for r in relation]\n"
        outside = analyze_source(source, "src/repro/models/x.py")
        inside = analyze_source(source, "src/repro/engine/x.py")
        assert [f.code for f in outside] == []
        assert [f.code for f in inside] == ["RPR003"]

    def test_module_directive_pins_identity(self):
        source = (
            "# repro: module repro.engine.pinned\n"
            "def f(relation):\n"
            "    return [r for r in relation]\n"
        )
        findings = analyze_source(source, "anywhere/at/all.py")
        assert [f.code for f in findings] == ["RPR003"]

    def test_rpr005_exempts_the_robust_package(self):
        source = (
            "def f(action):\n"
            "    try:\n"
            "        return action()\n"
            "    except Exception:\n"
            "        return None\n"
        )
        robust = analyze_source(source, "src/repro/robust/retry.py")
        other = analyze_source(source, "src/repro/engine/query.py")
        assert [f.code for f in robust] == []
        assert [f.code for f in other] == ["RPR005"]

    def test_rpr007_exempts_the_metrics_module_itself(self):
        source = (
            "from repro.obs.metrics import Counter\n"
            "c = Counter('x')\n"
        )
        home = analyze_source(source, "src/repro/obs/metrics.py")
        away = analyze_source(source, "src/repro/obs/report.py")
        assert [f.code for f in home] == []
        assert [f.code for f in away] == ["RPR007"]


class TestSuppression:
    def test_same_line_noqa(self):
        source = (
            "import random\n"
            "random.random()  # repro: noqa RPR001\n"
        )
        assert analyze_source(source, "mod.py") == []

    def test_comment_line_above(self):
        source = (
            "import random\n"
            "# seeded upstream  # repro: noqa RPR001\n"
            "random.random()\n"
        )
        assert analyze_source(source, "mod.py") == []

    def test_code_list_and_blanket_forms(self):
        listed = (
            "import random\n"
            "random.random()  # repro: noqa RPR001, RPR004\n"
        )
        blanket = "import random\nrandom.random()  # repro: noqa\n"
        assert analyze_source(listed, "mod.py") == []
        assert analyze_source(blanket, "mod.py") == []

    def test_wrong_code_does_not_suppress(self):
        source = (
            "import random\n"
            "random.random()  # repro: noqa RPR004\n"
        )
        findings = analyze_source(source, "mod.py")
        assert [f.code for f in findings] == ["RPR001"]

    def test_code_two_lines_up_does_not_suppress(self):
        source = (
            "# repro: noqa RPR001\n"
            "import random\n"
            "random.random()\n"
        )
        findings = analyze_source(source, "mod.py")
        assert [f.code for f in findings] == ["RPR001"]


def _context(source: str, path: str = "repro/mod.py") -> ModuleContext:
    return ModuleContext(path, source, ast.parse(source))


def _scope(ctx: ModuleContext, name: str):
    for node in ast.walk(ctx.tree):
        if (
            isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            )
            and node.name == name
        ):
            return node
    raise AssertionError(f"no def {name}")


class TestControlFlow:
    def _leaks(self, body: str) -> bool:
        """Whether the claim on the first line can escape the resets."""
        ctx = _context(f"def f(run, ready):\n{body}")
        flow = Dataflow(_scope(ctx, "f"))
        claim = None
        resets = set()
        for node in flow.cfg.nodes:
            text = (
                ast.unparse(node.statement)
                if node.statement is not None
                and isinstance(node.statement, ast.stmt)
                else ""
            )
            if "cv.set" in text and claim is None:
                claim = node
            if "cv.reset" in text:
                resets.add(node)
        assert claim is not None
        if not resets:
            return True
        return flow.cfg.escaping_path_exists(claim, resets)

    def test_straight_line_claim_leaks_via_implicit_raise(self):
        assert self._leaks(
            "    token = cv.set(1)\n"
            "    run()\n"
            "    cv.reset(token)\n"
        )

    def test_try_finally_does_not_leak(self):
        assert not self._leaks(
            "    token = cv.set(1)\n"
            "    try:\n"
            "        run()\n"
            "    finally:\n"
            "        cv.reset(token)\n"
        )

    def test_early_return_leaks(self):
        assert self._leaks(
            "    token = cv.set(1)\n"
            "    if ready:\n"
            "        return\n"
            "    cv.reset(token)\n"
        )

    def test_reset_on_both_branches_does_not_leak(self):
        assert not self._leaks(
            "    token = cv.set(1)\n"
            "    if ready:\n"
            "        cv.reset(token)\n"
            "    else:\n"
            "        cv.reset(token)\n"
        )

    def test_tuple_unpacking_pairs_elementwise(self):
        statement = ast.parse("a, b = x, y").body[0]
        pairs = {
            name: ast.unparse(value) if value is not None else None
            for name, value in statement_bindings(statement)
        }
        assert pairs == {"a": "x", "b": "y"}

    def test_starred_unpacking_is_unknowable(self):
        statement = ast.parse("a, *b = items").body[0]
        pairs = dict(statement_bindings(statement))
        assert pairs == {"a": None, "b": None}

    def test_with_as_binds_the_context_expression(self):
        statement = ast.parse("with open(p) as fh:\n    pass").body[0]
        pairs = {
            name: ast.unparse(value)
            for name, value in statement_bindings(statement)
        }
        assert pairs == {"fh": "open(p)"}


class TestAliasResolution:
    def _targets(self, source: str):
        """Resolve the spelled callee of the last call in ``f``."""
        ctx = _context(source)
        calls = [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.Call)
        ]
        targets, unknown = ctx.resolve_targets(calls[-1].func)
        return set(targets), unknown

    def test_local_alias_resolves(self):
        targets, unknown = self._targets(
            "import time\n"
            "def f():\n"
            "    t = time.time\n"
            "    return t()\n"
        )
        assert targets == {"time.time"} and not unknown

    def test_rebind_kills_earlier_definition(self):
        targets, unknown = self._targets(
            "import time\n"
            "def f():\n"
            "    t = time.time\n"
            "    t = time.monotonic\n"
            "    return t()\n"
        )
        assert targets == {"time.monotonic"} and not unknown

    def test_parameter_is_unknown(self):
        _, unknown = self._targets("def f(t):\n    return t()\n")
        assert unknown

    def test_global_rebound_module_binding_is_unknown(self):
        _, unknown = self._targets(
            "import time\n"
            "_clock = time.time\n"
            "def configure(c):\n"
            "    global _clock\n"
            "    _clock = c\n"
            "def f():\n"
            "    return _clock()\n"
        )
        assert unknown

    def test_branch_merge_keeps_both_targets(self):
        targets, unknown = self._targets(
            "import time\n"
            "def f(fast):\n"
            "    if fast:\n"
            "        t = time.monotonic\n"
            "    else:\n"
            "        t = time.perf_counter\n"
            "    return t()\n"
        )
        assert targets == {"time.monotonic", "time.perf_counter"}
        assert not unknown


class TestCallGraph:
    def _index(self):
        serve = _context(
            "import asyncio\n"
            "import time\n"
            "from repro.helpers import relay\n"
            "class Core:\n"
            "    async def handle(self, request):\n"
            "        self.prepare(request)\n"
            "        return relay(request)\n"
            "    def prepare(self, request):\n"
            "        nap()\n"
            "    def offload(self, loop, work):\n"
            "        return loop.run_in_executor(None, grind, work)\n"
            "def nap():\n"
            "    time.sleep(0.1)\n"
            "def grind(work):\n"
            "    return work\n",
            "repro/serve_mod.py",
        )
        helpers = _context(
            "import urllib.request\n"
            "def relay(request):\n"
            "    return fetch(request)\n"
            "def fetch(request):\n"
            "    return urllib.request.urlopen(request)\n",
            "repro/helpers.py",
        )
        return ProjectIndex.build([serve, helpers])

    def test_symbols_include_methods_with_qualnames(self):
        index = self._index()
        assert "repro.serve_mod.Core.handle" in index.functions
        assert index.functions[
            "repro.serve_mod.Core.handle"
        ].is_async

    def test_self_and_import_resolution(self):
        index = self._index()
        handle = index.functions["repro.serve_mod.Core.handle"]
        callees = {
            site.callee
            for site in handle.calls
            if site.callee is not None
        }
        assert "repro.serve_mod.Core.prepare" in callees
        assert "repro.helpers.relay" in callees

    def test_blocking_path_reports_the_chain(self):
        index = self._index()
        path = index.blocking_path("repro.helpers.relay")
        assert path == ("fetch", "urllib.request.urlopen")
        assert index.blocking_path(
            "repro.serve_mod.Core.prepare"
        ) == ("nap", "time.sleep")

    def test_coloring_separates_loop_from_thread(self):
        index = self._index()
        loop = index.loop_colored()
        thread = index.thread_colored()
        assert "repro.serve_mod.Core.prepare" in loop
        assert "repro.helpers.fetch" in loop
        assert thread == {"repro.serve_mod.grind"}

    def test_cycles_terminate(self):
        ctx = _context(
            "import time\n"
            "def a():\n"
            "    b()\n"
            "def b():\n"
            "    a()\n"
            "    time.sleep(1)\n",
            "repro/cyclic.py",
        )
        index = ProjectIndex.build([ctx])
        assert index.blocking_path("repro.cyclic.b") == (
            "time.sleep",
        )


class TestCache:
    BAD = "import random\nrandom.random()\n"

    def _run(self, tree: Path, cache_path: Path):
        cache = AnalysisCache(cache_path)
        findings = analyze_paths([tree], cache=cache)
        cache.save()
        return findings, cache

    def test_warm_run_hits_and_agrees(self, tmp_path):
        (tmp_path / "mod.py").write_text(self.BAD)
        cache_path = tmp_path / "cache.json"
        cold, first = self._run(tmp_path, cache_path)
        warm, second = self._run(tmp_path, cache_path)
        assert first.hits == 0 and first.misses == 1
        assert second.hits == 1 and second.misses == 0
        assert warm == cold

    def test_content_change_invalidates(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(self.BAD)
        cache_path = tmp_path / "cache.json"
        self._run(tmp_path, cache_path)
        target.write_text("import random\n\nrandom.random()\n")
        findings, cache = self._run(tmp_path, cache_path)
        assert cache.hits == 0 and cache.misses == 1
        assert [f.line for f in findings] == [3]

    def test_sibling_change_invalidates_project_digest(
        self, tmp_path
    ):
        (tmp_path / "a.py").write_text(self.BAD)
        (tmp_path / "b.py").write_text("VALUE = 1\n")
        cache_path = tmp_path / "cache.json"
        self._run(tmp_path, cache_path)
        # a.py is untouched, but call-graph rules may read b.py, so
        # its edit must invalidate a.py's cached verdict too.
        (tmp_path / "b.py").write_text("VALUE = 2\n")
        _, cache = self._run(tmp_path, cache_path)
        assert cache.hits == 0 and cache.misses == 2

    def test_rule_selection_changes_the_key(self, tmp_path):
        (tmp_path / "mod.py").write_text(self.BAD)
        cache_path = tmp_path / "cache.json"
        cache = AnalysisCache(cache_path)
        analyze_paths([tmp_path], cache=cache)
        cache.save()
        cache = AnalysisCache(cache_path)
        only_006 = [rules_by_code()["RPR006"]]
        analyze_paths([tmp_path], rules=only_006, cache=cache)
        assert cache.hits == 0 and cache.misses == 1

    def test_corrupt_cache_file_is_ignored(self, tmp_path):
        cache_path = tmp_path / "cache.json"
        cache_path.write_text("{not json")
        (tmp_path / "mod.py").write_text(self.BAD)
        findings, cache = self._run(tmp_path, cache_path)
        assert cache.hits == 0
        assert [f.code for f in findings] == ["RPR001"]


class TestRunStats:
    def test_stats_record_files_and_rule_timings(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "import random\nrandom.random()\n"
        )
        stats = RunStats()
        analyze_paths([tmp_path], stats=stats)
        assert stats.files_analyzed == 1
        assert stats.files_cached == 0
        assert stats.total_seconds > 0
        assert "RPR001" in stats.rule_seconds


@pytest.mark.skipif(
    shutil.which("git") is None, reason="git not available"
)
class TestChangedSelection:
    def _git(self, repo: Path, *argv: str) -> None:
        subprocess.run(
            [
                "git",
                "-c",
                "user.email=t@example.invalid",
                "-c",
                "user.name=t",
                *argv,
            ],
            cwd=repo,
            check=True,
            capture_output=True,
        )

    def _repo(self, tmp_path: Path) -> Path:
        repo = tmp_path / "repo"
        repo.mkdir()
        self._git(repo, "init", "-q")
        (repo / "stale.py").write_text(
            "import random\nrandom.random()\n"
        )
        (repo / "fresh.py").write_text("VALUE = 1\n")
        self._git(repo, "add", "-A")
        self._git(repo, "commit", "-q", "-m", "seed")
        return repo

    def _lint(self, *argv: str) -> tuple[int, str, str]:
        import io

        out, err = io.StringIO(), io.StringIO()
        args = analysis_cli.build_parser().parse_args(list(argv))
        code = analysis_cli.run(args, stdout=out, stderr=err)
        return code, out.getvalue(), err.getvalue()

    def test_only_changed_files_are_analyzed(
        self, tmp_path, monkeypatch
    ):
        repo = self._repo(tmp_path)
        monkeypatch.chdir(repo)
        (repo / "fresh.py").write_text(
            "import random\nrandom.shuffle([1])\n"
        )
        code, out, _ = self._lint("--changed", "HEAD", ".")
        assert code == analysis_cli.EXIT_FINDINGS
        assert "fresh.py" in out
        assert "stale.py" not in out

    def test_untracked_files_count_as_changed(
        self, tmp_path, monkeypatch
    ):
        repo = self._repo(tmp_path)
        monkeypatch.chdir(repo)
        (repo / "novel.py").write_text(
            "import random\nrandom.random()\n"
        )
        code, out, _ = self._lint("--changed", "HEAD", ".")
        assert code == analysis_cli.EXIT_FINDINGS
        assert "novel.py" in out

    def test_no_changes_is_clean(self, tmp_path, monkeypatch):
        repo = self._repo(tmp_path)
        monkeypatch.chdir(repo)
        code, out, _ = self._lint("--changed", "HEAD", ".")
        assert code == analysis_cli.EXIT_CLEAN
        assert "nothing to analyze" in out

    def test_unknown_ref_is_a_usage_error(
        self, tmp_path, monkeypatch
    ):
        repo = self._repo(tmp_path)
        monkeypatch.chdir(repo)
        code, _, err = self._lint(
            "--changed", "no-such-ref", "."
        )
        assert code == analysis_cli.EXIT_USAGE
        assert "no-such-ref" in err

    def test_write_baseline_refuses_partial_runs(
        self, tmp_path, monkeypatch
    ):
        repo = self._repo(tmp_path)
        monkeypatch.chdir(repo)
        code, _, err = self._lint(
            "--changed",
            "HEAD",
            "--baseline",
            "b.json",
            "--write-baseline",
            ".",
        )
        assert code == analysis_cli.EXIT_USAGE
        assert "full run" in err


class TestBaseline:
    def test_round_trip_absorbs_current_findings(self, tmp_path):
        findings = findings_for("rpr001_bad.py")
        baseline_path = tmp_path / "baseline.json"
        write_baseline(findings, baseline_path)
        baseline = load_baseline(baseline_path)
        new, accepted, stale = baseline.partition(findings)
        assert new == []
        assert len(accepted) == len(findings)
        assert stale == []

    def test_excess_occurrences_are_new(self, tmp_path):
        findings = findings_for("rpr001_bad.py")
        baseline_path = tmp_path / "baseline.json"
        write_baseline(findings[:1], baseline_path)
        baseline = load_baseline(baseline_path)
        new, accepted, _ = baseline.partition(findings)
        assert len(accepted) == 1
        assert len(new) == len(findings) - 1

    def test_fixed_findings_go_stale(self, tmp_path):
        findings = findings_for("rpr001_bad.py")
        baseline_path = tmp_path / "baseline.json"
        write_baseline(findings, baseline_path)
        baseline = load_baseline(baseline_path)
        _, _, stale = baseline.partition([])
        assert {entry.code for entry in stale} == {"RPR001"}

    def test_rewrite_preserves_reasons(self, tmp_path):
        findings = findings_for("rpr001_bad.py")
        baseline_path = tmp_path / "baseline.json"
        first = write_baseline(findings, baseline_path)
        entry = first.entries[0]
        import json

        document = json.loads(baseline_path.read_text())
        for raw in document["entries"]:
            if raw["message"] == entry.message:
                raw["reason"] = "deliberate: fixture"
        baseline_path.write_text(json.dumps(document))
        rewritten = write_baseline(
            findings,
            baseline_path,
            previous=load_baseline(baseline_path),
        )
        kept = [
            e for e in rewritten.entries if e.key == entry.key
        ]
        assert kept[0].reason == "deliberate: fixture"

    def test_version_mismatch_is_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"version": 99, "entries": []}')
        with pytest.raises(ValueError):
            load_baseline(bad)


class TestSelfCheck:
    def test_src_tree_is_clean_under_checked_in_baseline(self):
        baseline = load_baseline(
            REPO_ROOT / "analysis_baseline.json"
        )
        findings = analyze_paths([REPO_ROOT / "src"])
        relative = [
            finding.__class__(
                path=Path(finding.path)
                .relative_to(REPO_ROOT)
                .as_posix(),
                line=finding.line,
                column=finding.column,
                code=finding.code,
                message=finding.message,
            )
            for finding in findings
        ]
        new, _, stale = baseline.partition(relative)
        assert new == [], "\n".join(f.format() for f in new)
        assert stale == []

    def test_every_baseline_entry_has_a_reason(self):
        baseline = load_baseline(
            REPO_ROOT / "analysis_baseline.json"
        )
        reasonless = [
            entry.key
            for entry in baseline.entries
            if not entry.reason.strip()
        ]
        assert reasonless == []
