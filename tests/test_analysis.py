"""Tests for the :mod:`repro.analysis` invariant linter.

Three layers of defence:

* fixture pairs — every rule has a ``*_bad.py`` file whose planted
  violations are asserted *exactly* (line and code), and a
  ``*_good.py`` twin proving the rule's exemptions hold;
* machinery — suppression directives, module scoping, alias
  resolution, the baseline round-trip, and the CLI exit codes;
* the self-check — the repo's own ``src`` tree must be clean under
  the checked-in ``analysis_baseline.json``, and every baseline
  entry must carry a written reason.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import (
    analyze_file,
    analyze_paths,
    analyze_source,
    load_baseline,
    rules_by_code,
    write_baseline,
)

FIXTURES = Path(__file__).parent / "analysis_fixtures"
REPO_ROOT = Path(__file__).resolve().parents[1]

#: Exact planted violations per bad fixture: the lines that must
#: fire, in order.  A drifting rule fails loudly here.
EXPECTED_LINES = {
    "RPR001": (8, 9, 10, 11, 12),
    "RPR002": (5, 9, 13),
    "RPR003": (7, 13, 17),
    "RPR004": (6, 7, 8),
    "RPR005": (7, 14, 21),
    "RPR006": (5, 9, 14),
    "RPR007": (5, 6),
    "RPR008": (4, 9, 9),
    "RPR009": (9, 10, 11),
    "RPR010": (11, 15, 17),
    "RPR011": (7, 8, 9, 10, 14),
}


def findings_for(name: str):
    return analyze_file(FIXTURES / name)


class TestFixturePairs:
    @pytest.mark.parametrize("code", sorted(EXPECTED_LINES))
    def test_bad_fixture_fires_exactly(self, code):
        findings = findings_for(f"{code.lower()}_bad.py")
        assert [(f.line, f.code) for f in findings] == [
            (line, code) for line in EXPECTED_LINES[code]
        ]

    @pytest.mark.parametrize("code", sorted(EXPECTED_LINES))
    def test_good_fixture_is_clean(self, code):
        assert findings_for(f"{code.lower()}_good.py") == []

    def test_every_rule_has_a_fixture_pair(self):
        assert set(EXPECTED_LINES) == set(rules_by_code())

    def test_messages_name_the_remedy(self):
        by_code = {
            code: " | ".join(
                finding.message
                for finding in findings_for(f"{code.lower()}_bad.py")
            )
            for code in EXPECTED_LINES
        }
        assert "seed" in by_code["RPR001"]
        assert "math.isclose" in by_code["RPR002"]
        assert "AccessCounter" in by_code["RPR003"]
        assert "monotonic" in by_code["RPR004"]
        assert "repro.exceptions" in by_code["RPR005"]
        assert "sorted()" in by_code["RPR006"]
        assert "get_registry()" in by_code["RPR007"]
        assert "None" in by_code["RPR008"]
        assert "run_in_executor" in by_code["RPR009"]
        assert "repro.obs.logging" in by_code["RPR010"]
        assert "query_accounting" in by_code["RPR011"]


class TestEngine:
    def test_syntax_error_is_rpr000_not_a_crash(self):
        findings = analyze_source("def broken(:\n", "bad.py")
        assert [f.code for f in findings] == ["RPR000"]
        assert "does not parse" in findings[0].message

    def test_finding_format_is_grep_friendly(self):
        finding = analyze_source(
            "import random\nrandom.random()\n", "pkg/mod.py"
        )[0]
        assert finding.format().startswith("pkg/mod.py:2:1: RPR001 ")

    def test_alias_import_cannot_dodge_rpr001(self):
        findings = analyze_source(
            "import random as rnd\nrnd.shuffle([1])\n", "mod.py"
        )
        assert [f.code for f in findings] == ["RPR001"]

    def test_select_subset_of_rules(self):
        source = "import random\nrandom.random()\nx = [i for i in {1}]\n"
        only_006 = analyze_source(
            source, "mod.py", rules=[rules_by_code()["RPR006"]]
        )
        assert [f.code for f in only_006] == ["RPR006"]

    def test_analyze_paths_rejects_missing_path(self):
        with pytest.raises(FileNotFoundError):
            analyze_paths(["no/such/tree"])


class TestScoping:
    def test_rpr003_only_applies_to_engine_modules(self):
        source = "def f(relation):\n    return [r for r in relation]\n"
        outside = analyze_source(source, "src/repro/models/x.py")
        inside = analyze_source(source, "src/repro/engine/x.py")
        assert [f.code for f in outside] == []
        assert [f.code for f in inside] == ["RPR003"]

    def test_module_directive_pins_identity(self):
        source = (
            "# repro: module repro.engine.pinned\n"
            "def f(relation):\n"
            "    return [r for r in relation]\n"
        )
        findings = analyze_source(source, "anywhere/at/all.py")
        assert [f.code for f in findings] == ["RPR003"]

    def test_rpr005_exempts_the_robust_package(self):
        source = (
            "def f(action):\n"
            "    try:\n"
            "        return action()\n"
            "    except Exception:\n"
            "        return None\n"
        )
        robust = analyze_source(source, "src/repro/robust/retry.py")
        other = analyze_source(source, "src/repro/engine/query.py")
        assert [f.code for f in robust] == []
        assert [f.code for f in other] == ["RPR005"]

    def test_rpr007_exempts_the_metrics_module_itself(self):
        source = (
            "from repro.obs.metrics import Counter\n"
            "c = Counter('x')\n"
        )
        home = analyze_source(source, "src/repro/obs/metrics.py")
        away = analyze_source(source, "src/repro/obs/report.py")
        assert [f.code for f in home] == []
        assert [f.code for f in away] == ["RPR007"]


class TestSuppression:
    def test_same_line_noqa(self):
        source = (
            "import random\n"
            "random.random()  # repro: noqa RPR001\n"
        )
        assert analyze_source(source, "mod.py") == []

    def test_comment_line_above(self):
        source = (
            "import random\n"
            "# seeded upstream  # repro: noqa RPR001\n"
            "random.random()\n"
        )
        assert analyze_source(source, "mod.py") == []

    def test_code_list_and_blanket_forms(self):
        listed = (
            "import random\n"
            "random.random()  # repro: noqa RPR001, RPR004\n"
        )
        blanket = "import random\nrandom.random()  # repro: noqa\n"
        assert analyze_source(listed, "mod.py") == []
        assert analyze_source(blanket, "mod.py") == []

    def test_wrong_code_does_not_suppress(self):
        source = (
            "import random\n"
            "random.random()  # repro: noqa RPR004\n"
        )
        findings = analyze_source(source, "mod.py")
        assert [f.code for f in findings] == ["RPR001"]

    def test_code_two_lines_up_does_not_suppress(self):
        source = (
            "# repro: noqa RPR001\n"
            "import random\n"
            "random.random()\n"
        )
        findings = analyze_source(source, "mod.py")
        assert [f.code for f in findings] == ["RPR001"]


class TestBaseline:
    def test_round_trip_absorbs_current_findings(self, tmp_path):
        findings = findings_for("rpr001_bad.py")
        baseline_path = tmp_path / "baseline.json"
        write_baseline(findings, baseline_path)
        baseline = load_baseline(baseline_path)
        new, accepted, stale = baseline.partition(findings)
        assert new == []
        assert len(accepted) == len(findings)
        assert stale == []

    def test_excess_occurrences_are_new(self, tmp_path):
        findings = findings_for("rpr001_bad.py")
        baseline_path = tmp_path / "baseline.json"
        write_baseline(findings[:1], baseline_path)
        baseline = load_baseline(baseline_path)
        new, accepted, _ = baseline.partition(findings)
        assert len(accepted) == 1
        assert len(new) == len(findings) - 1

    def test_fixed_findings_go_stale(self, tmp_path):
        findings = findings_for("rpr001_bad.py")
        baseline_path = tmp_path / "baseline.json"
        write_baseline(findings, baseline_path)
        baseline = load_baseline(baseline_path)
        _, _, stale = baseline.partition([])
        assert {entry.code for entry in stale} == {"RPR001"}

    def test_rewrite_preserves_reasons(self, tmp_path):
        findings = findings_for("rpr001_bad.py")
        baseline_path = tmp_path / "baseline.json"
        first = write_baseline(findings, baseline_path)
        entry = first.entries[0]
        import json

        document = json.loads(baseline_path.read_text())
        for raw in document["entries"]:
            if raw["message"] == entry.message:
                raw["reason"] = "deliberate: fixture"
        baseline_path.write_text(json.dumps(document))
        rewritten = write_baseline(
            findings,
            baseline_path,
            previous=load_baseline(baseline_path),
        )
        kept = [
            e for e in rewritten.entries if e.key == entry.key
        ]
        assert kept[0].reason == "deliberate: fixture"

    def test_version_mismatch_is_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text('{"version": 99, "entries": []}')
        with pytest.raises(ValueError):
            load_baseline(bad)


class TestSelfCheck:
    def test_src_tree_is_clean_under_checked_in_baseline(self):
        baseline = load_baseline(
            REPO_ROOT / "analysis_baseline.json"
        )
        findings = analyze_paths([REPO_ROOT / "src"])
        relative = [
            finding.__class__(
                path=Path(finding.path)
                .relative_to(REPO_ROOT)
                .as_posix(),
                line=finding.line,
                column=finding.column,
                code=finding.code,
                message=finding.message,
            )
            for finding in findings
        ]
        new, _, stale = baseline.partition(relative)
        assert new == [], "\n".join(f.format() for f in new)
        assert stale == []

    def test_every_baseline_entry_has_a_reason(self):
        baseline = load_baseline(
            REPO_ROOT / "analysis_baseline.json"
        )
        reasonless = [
            entry.key
            for entry in baseline.entries
            if not entry.reason.strip()
        ]
        assert reasonless == []
