"""Edge-case tests: degenerate relations, extreme parameters, bounds.

The paper's definitions quietly assume non-degenerate inputs; a
production library must behave predictably outside them.
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    global_topk,
    pt_k,
    u_kranks,
    u_topk,
)
from repro.core import (
    a_erank,
    a_mqrank,
    attribute_expected_ranks,
    rank,
    t_erank,
    t_mqrank,
    tuple_expected_ranks,
)
from repro.models import (
    AttributeLevelRelation,
    AttributeTuple,
    DiscretePDF,
    ExclusionRule,
    TupleLevelRelation,
    TupleLevelTuple,
)


class TestSingletonRelations:
    def test_attribute_single_tuple_all_methods(self):
        relation = AttributeLevelRelation(
            [AttributeTuple("only", DiscretePDF([5, 7], [0.5, 0.5]))]
        )
        assert a_erank(relation, 1).tids() == ("only",)
        assert a_mqrank(relation, 1).tids() == ("only",)
        assert u_topk(relation, 1).tids() == ("only",)
        assert u_kranks(relation, 1).tids() == ("only",)
        assert global_topk(relation, 1).tids() == ("only",)

    def test_tuple_single_uncertain_tuple(self):
        relation = TupleLevelRelation([TupleLevelTuple("x", 5.0, 0.3)])
        # Rank 0 when present, rank |W| = 0 when absent: always 0.
        assert tuple_expected_ranks(relation)["x"] == pytest.approx(0.0)
        assert t_mqrank(relation, 1).statistics["x"] == 0.0


class TestDegenerateProbabilities:
    def test_all_tuples_certain_reduces_to_sorting(self):
        relation = TupleLevelRelation(
            TupleLevelTuple(f"t{i}", float(100 - i), 1.0)
            for i in range(20)
        )
        assert t_erank(relation, 5).tids() == (
            "t0", "t1", "t2", "t3", "t4",
        )
        assert t_mqrank(relation, 5).tids() == (
            "t0", "t1", "t2", "t3", "t4",
        )

    def test_all_tuples_impossible(self):
        relation = TupleLevelRelation(
            TupleLevelTuple(f"t{i}", float(i), 0.0) for i in range(4)
        )
        ranks = tuple_expected_ranks(relation)
        # Every world is empty; every rank is |W| = 0.
        assert all(value == 0.0 for value in ranks.values())

    def test_rule_with_full_mass(self):
        relation = TupleLevelRelation(
            [
                TupleLevelTuple("a", 10.0, 0.5),
                TupleLevelTuple("b", 5.0, 0.5),
            ],
            rules=[ExclusionRule("r", ["a", "b"])],
        )
        ranks = tuple_expected_ranks(relation)
        # Exactly one appears: present -> rank 0; absent -> |W| = 1.
        assert ranks["a"] == pytest.approx(0.5)
        assert ranks["b"] == pytest.approx(0.5)

    def test_pt_k_threshold_one(self):
        relation = TupleLevelRelation(
            [
                TupleLevelTuple("sure", 10.0, 1.0),
                TupleLevelTuple("maybe", 5.0, 0.5),
            ]
        )
        result = pt_k(relation, 1, threshold=1.0)
        assert result.tid_set() == {"sure"}


class TestExtremeScores:
    def test_negative_scores_fine_for_exact_algorithms(self):
        relation = AttributeLevelRelation(
            [
                AttributeTuple("a", DiscretePDF([-5, -1], [0.5, 0.5])),
                AttributeTuple("b", DiscretePDF([-3], [1.0])),
            ]
        )
        ranks = attribute_expected_ranks(relation)
        assert ranks["a"] == pytest.approx(0.5)
        assert ranks["b"] == pytest.approx(0.5)

    def test_huge_spread_scores(self):
        relation = TupleLevelRelation(
            [
                TupleLevelTuple("tiny", 1e-12, 0.9),
                TupleLevelTuple("huge", 1e12, 0.1),
            ]
        )
        result = t_erank(relation, 2)
        assert result.tids() == ("tiny", "huge") or result.tids() == (
            "huge",
            "tiny",
        )
        # Value invariance: rescaling must not change the answer.
        rescaled = relation.map_scores(lambda value: value / 1e12 + 1.0)
        assert t_erank(rescaled, 2).tids() == result.tids()

    def test_identical_tuples_rank_by_insertion(self):
        relation = TupleLevelRelation(
            TupleLevelTuple(f"t{i}", 5.0, 0.5) for i in range(4)
        )
        assert t_erank(relation, 4).tids() == ("t0", "t1", "t2", "t3")


class TestKExtremes:
    def test_k_equals_n_everywhere(self, fig2, fig4):
        for method in ("expected_rank", "median_rank", "global_topk"):
            assert len(rank(fig2, fig2.size, method=method)) == fig2.size
            assert len(rank(fig4, fig4.size, method=method)) == fig4.size

    def test_k_far_beyond_n(self, fig4):
        assert len(rank(fig4, 1000)) == fig4.size

    def test_k_zero_everywhere(self, fig4):
        for method in (
            "expected_rank",
            "median_rank",
            "u_kranks",
            "global_topk",
            "expected_score",
        ):
            assert len(rank(fig4, 0, method=method)) == 0

    def test_u_topk_k_zero(self, fig4):
        result = u_topk(fig4, 0)
        assert result.tids() == ()
        assert result.metadata["answer_probability"] == pytest.approx(
            1.0
        )


class TestLongRules:
    def test_five_member_rule_against_oracle(self):
        from repro.baselines import brute_force_expected_ranks

        rows = [
            TupleLevelTuple(f"m{i}", 10.0 - i, 0.18) for i in range(5)
        ]
        rows.append(TupleLevelTuple("free", 7.5, 0.6))
        relation = TupleLevelRelation(
            rows,
            rules=[ExclusionRule("big", [f"m{i}" for i in range(5)])],
        )
        fast = tuple_expected_ranks(relation)
        slow = brute_force_expected_ranks(relation)
        for tid in fast:
            assert fast[tid] == pytest.approx(slow[tid], abs=1e-9)

    def test_five_member_rule_rank_distributions(self):
        from repro.baselines import brute_force_rank_distributions
        from repro.core import tuple_rank_distributions

        rows = [
            TupleLevelTuple(f"m{i}", 10.0 - i, 0.15) for i in range(5)
        ]
        rows.append(TupleLevelTuple("free", 8.2, 0.7))
        relation = TupleLevelRelation(
            rows,
            rules=[ExclusionRule("big", [f"m{i}" for i in range(5)])],
        )
        fast = tuple_rank_distributions(relation, ties="by_index")
        slow = brute_force_rank_distributions(relation, ties="by_index")
        for tid in fast:
            assert fast[tid].allclose(slow[tid], atol=1e-9)
