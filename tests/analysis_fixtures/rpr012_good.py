"""RPR012 fixture: injectable callables stay exempt."""

import time

_clock = time.time


def configure(clock) -> None:
    global _clock
    _clock = clock


def injected(clock=time.monotonic) -> float:
    return clock()


def rebound() -> float:
    reader = time.time
    reader = time.monotonic
    return reader()


def module_injectable() -> float:
    return _clock()
