"""RPR006 fixture: unsorted set iteration feeding output."""


def emit(tids):
    return [tid for tid in {tid.lower() for tid in tids}]


def materialise(tids):
    return list(set(tids))


def loop(rows):
    out = []
    for tid in {row.tid for row in rows}:
        out.append(tid)
    return out
