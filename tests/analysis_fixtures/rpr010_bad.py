# repro: module repro.serve.fixture
"""RPR010 fixture: unstructured output from the serving layer.

``logger.warning`` itself is not flagged — the rule catches the
``logging.getLogger`` chokepoint instead, without which no stdlib
logger object can exist.
"""

import logging

logger = logging.getLogger("serve")


def shed(tenant: str, reason: str) -> None:
    print(f"shedding {tenant}: {reason}")
    logger.warning("shed %s: %s", tenant, reason)
    logging.info("shed happened")
