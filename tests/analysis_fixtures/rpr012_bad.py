"""RPR012 fixture: RNG/clock reads laundered through aliases."""

import random
import time

_SNEAKY = time.time


def laundered() -> float:
    clock = time.time
    return clock()


def unpacked() -> float:
    clock, _ = time.time, None
    return clock()


def chained() -> float:
    draw = random.random
    roll = draw
    return roll()


def module_alias() -> float:
    return _SNEAKY()
