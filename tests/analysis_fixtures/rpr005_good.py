"""RPR005 fixture: specific catches and re-raises pass."""


def specific(action):
    try:
        return action()
    except ValueError:
        return None


def reraise(action):
    try:
        return action()
    except Exception:
        raise
