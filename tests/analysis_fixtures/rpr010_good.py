# repro: module repro.serve.fixture
"""RPR010 fixture: the structured logger, correlated and free when off."""

from repro.obs.logging import get_logger

_log = get_logger("repro.serve.fixture")


def shed(tenant: str, reason: str) -> None:
    _log.warning("serve.shed", tenant=tenant, reason=reason)
