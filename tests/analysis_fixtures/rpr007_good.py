"""RPR007 fixture: registry-mediated instruments pass."""

from collections import Counter

from repro.obs import get_registry

calls = get_registry().counter("fixture.calls")
words = Counter(["a", "b"])
