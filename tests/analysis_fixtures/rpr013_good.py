# repro: module repro.serve.fixture13
"""RPR013 fixture: executor dispatch and async chains pass."""

import asyncio
import time


async def handle(loop, pool, request):
    await stage(request)
    return await loop.run_in_executor(pool, grind, request)


async def stage(request):
    await asyncio.sleep(0)
    return request


def grind(request):
    time.sleep(0.1)
    return request
