"""RPR007 fixture: instruments constructed outside the registry."""

from repro.obs.metrics import Counter, Histogram

calls = Counter("fixture.calls")
latency = Histogram("fixture.latency")
