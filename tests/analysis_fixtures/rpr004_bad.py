"""RPR004 fixture: wall-clock reads on timing paths."""

import time
from datetime import datetime

start = time.time()
stamp = datetime.now()
legacy = datetime.utcnow()
