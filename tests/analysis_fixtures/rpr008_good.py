"""RPR008 fixture: None (or immutable) defaults pass."""


def append(row, rows=None):
    rows = [] if rows is None else rows
    rows.append(row)
    return rows


def label(name, suffix=""):
    return name + suffix
