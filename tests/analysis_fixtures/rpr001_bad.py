"""RPR001 fixture: every unseeded-randomness shape is caught."""

import random

import numpy.random as npr
from random import Random

value = random.random()
rng = Random()
legacy = npr.rand(3)
generator = npr.default_rng()
system = random.SystemRandom()
