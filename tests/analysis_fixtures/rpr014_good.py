"""RPR014 fixture: awaited coroutines and stored task handles."""

import asyncio


async def work() -> None:
    await asyncio.sleep(0)


async def main(loop) -> None:
    await work()
    task = asyncio.create_task(work())
    await task
    handle = loop.create_task(work())
    handle.cancel()


async def grouped() -> None:
    async with asyncio.TaskGroup() as group:
        group.create_task(work())
