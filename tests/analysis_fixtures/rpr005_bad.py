"""RPR005 fixture: broad handlers that swallow injected faults."""


def swallow(action):
    try:
        return action()
    except Exception:
        return None


def bare(action):
    try:
        return action()
    except:  # noqa: E722
        return None


def tupled(action):
    try:
        return action()
    except (ValueError, Exception):
        return None
