# repro: module repro.serve.fixture16
"""RPR016 fixture: locked mutation and single-color state."""

import asyncio
import threading

_lock = threading.Lock()
_SEEN: dict = {}
_LOOP_ONLY: list = []


async def handle(key, loop, pool):
    with _lock:
        _SEEN[key] = True
    _LOOP_ONLY.append(key)
    await asyncio.sleep(0)
    return loop.run_in_executor(pool, record, key)


def record(key):
    with _lock:
        _SEEN.setdefault(key, False)
