# repro: module repro.serve.fixture13
"""RPR013 fixture: blocking sinks hidden behind sync helpers."""

import time


async def handle(request):
    relay(request)
    return prepare(request)


def relay(request):
    nap()
    return request


def prepare(request):
    return load(request)


def load(request):
    with open(request) as stream:
        return stream.read()


def nap():
    time.sleep(0.1)
