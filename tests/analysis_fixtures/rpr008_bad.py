"""RPR008 fixture: mutable default arguments."""


def append(row, rows=[]):
    rows.append(row)
    return rows


def tally(counts={}, *, seen=set()):
    return counts, seen
