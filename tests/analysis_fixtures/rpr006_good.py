"""RPR006 fixture: sorted or reduced set consumption passes."""


def emit(tids):
    return [tid for tid in sorted({tid.lower() for tid in tids})]


def reduce(values):
    return sum(value for value in set(values))


def count(tids):
    return len(set(tids))
