"""RPR015 fixture: ContextVar claim tokens that escape a path."""

import contextvars

_claimed = contextvars.ContextVar("claimed", default=False)


def leaky(run) -> None:
    token = _claimed.set(True)
    run()
    _claimed.reset(token)


def early_exit(run, ready) -> None:
    token = _claimed.set(True)
    if not ready:
        return
    run()
    _claimed.reset(token)


def discarded() -> None:
    _claimed.set(True)
