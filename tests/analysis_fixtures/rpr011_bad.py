"""RPR011 fixture: resource accounting outside the cost ledger."""

import os
import resource
import time

cpu = time.process_time()
nanos = time.thread_time_ns()
used = resource.getrusage(resource.RUSAGE_SELF)
ticks = os.times()


def bill(ledger, entry) -> None:
    ledger.record(entry)
