# repro: module repro.serve.fixture
"""RPR009 fixture: blocking calls on the event-loop path."""

import time
from pathlib import Path


async def handle(path: Path) -> str:
    time.sleep(0.1)
    text = path.read_text()
    with open(path) as stream:
        text += stream.name
    return text
