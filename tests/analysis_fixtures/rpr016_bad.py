# repro: module repro.serve.fixture16
"""RPR016 fixture: module state mutated from both colors."""

import asyncio

_SEEN: dict = {}
_EVENTS: list = []


async def handle(key, loop, pool):
    _SEEN[key] = True
    _EVENTS.append(key)
    await asyncio.sleep(0)
    return loop.run_in_executor(pool, record, key)


def record(key):
    _SEEN.setdefault(key, False)
    _EVENTS.append(key)
