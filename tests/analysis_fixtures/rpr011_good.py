# repro: module repro.obs.costs
"""RPR011 fixture: the chokepoint itself may read the CPU clock,
and everyone else meters through it."""

import time

from repro.obs.costs import query_accounting

cpu = time.process_time()


def bill(result) -> None:
    with query_accounting() as meter:
        if meter is not None:
            meter.finish(result, k=1, n=1, method="expected_rank")
