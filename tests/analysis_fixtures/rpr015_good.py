"""RPR015 fixture: claims released on every exit path."""

import contextvars

_claimed = contextvars.ContextVar("claimed", default=False)


def guarded(run) -> None:
    token = _claimed.set(True)
    try:
        run()
    finally:
        _claimed.reset(token)


def branched(run, ready) -> None:
    token = _claimed.set(True)
    try:
        if ready:
            run()
    finally:
        _claimed.reset(token)


class Claim:
    def __enter__(self):
        self._token = _claimed.set(True)
        return self

    def __exit__(self, kind, value, trace):
        _claimed.reset(self._token)
