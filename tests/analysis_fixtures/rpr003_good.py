# repro: module repro.engine.fixture
"""RPR003 fixture: cursor-mediated access passes."""


def drain(cursor):
    total = 0.0
    for row in cursor:
        total += row.probability
    return total


def charged(relation, counter):
    counter.charge(len(relation))
    return [row.tid for row in relation.rows]


def cursored(relation):
    rows = relation.score_cursor()
    return [row.tid for row in rows]
