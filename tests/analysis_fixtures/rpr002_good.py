"""RPR002 fixture: sentinel and dunder comparisons are exempt."""


def certain(probability):
    return probability == 1.0


def empty(mass):
    return mass == 0.0


def unit(score):
    return score == 1


class Model:
    score = 0.0

    def __eq__(self, other):
        return self.score == other.score
