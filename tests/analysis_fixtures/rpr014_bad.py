"""RPR014 fixture: orphaned coroutines and dropped task handles."""

import asyncio


async def work() -> None:
    await asyncio.sleep(0)


async def main(loop) -> None:
    work()
    asyncio.create_task(work())
    asyncio.ensure_future(work())
    loop.create_task(work())
