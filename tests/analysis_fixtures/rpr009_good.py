# repro: module repro.serve.fixture
"""RPR009 fixture: awaited primitives and worker-thread dispatch."""

import asyncio
import time


async def handle(loop, pool, path) -> str:
    await asyncio.sleep(0.1)
    return await loop.run_in_executor(pool, path.read_text)


def sync_worker(path) -> str:
    time.sleep(0.001)
    return path.read_text()
