"""RPR001 fixture: explicitly seeded randomness passes."""

import numpy.random as npr
from random import Random

rng = Random(1234)
generator = npr.default_rng(7)
keyword_seeded = npr.default_rng(seed=7)
machinery = npr.Generator(npr.PCG64(7))
