"""RPR004 fixture: monotonic clocks pass."""

import time

start = time.monotonic()
tick = time.perf_counter()
nanos = time.monotonic_ns()
