"""RPR002 fixture: exact float equality on ranking quantities."""


def ties(row, other):
    return row.score == other.score


def check(probability):
    return probability != 0.25


def literal(value):
    return value == 0.3
