# repro: module repro.engine.fixture
"""RPR003 fixture: engine code iterating a relation directly."""


def drain(relation):
    total = 0.0
    for row in relation:
        total += row.probability
    return total


def tids(relation):
    return [row.tid for row in sorted(relation)]


def ordered(relation):
    return [row for row in relation.order_by_score()]


def unpacked(rel):
    rows, _ = rel.rows, None
    return [row.tid for row in rows]


def chained(relation):
    rows = relation.rows
    alias = rows
    total = 0.0
    for row in alias:
        total += row.score
    return total
