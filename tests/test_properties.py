"""Tests for the ranking-property checkers (paper Section 4.1, Figure 5).

Two layers: (1) the checkers themselves behave correctly on hand-built
positive and negative instances; (2) the full property matrix over the
paper's fixtures reproduces Figure 5 exactly, including the documented
violations of every baseline.
"""

from __future__ import annotations

import functools

import pytest

from repro.baselines import u_kranks
from repro.core import rank
from repro.core.properties import (
    PROPERTY_NAMES,
    boost_tuple,
    check_containment,
    check_exact_k,
    check_faithfulness,
    check_stability,
    check_unique_ranking,
    check_value_invariance,
    diminish_tuple,
    property_matrix,
)
from repro.models import (
    AttributeLevelRelation,
    AttributeTuple,
    DiscretePDF,
    ExclusionRule,
    TupleLevelRelation,
    TupleLevelTuple,
)


def invoker(method, **options):
    return functools.partial(rank, method=method, **options)


class TestPerturbations:
    def test_boost_attribute_is_stochastically_larger(self, fig2):
        boosted = boost_tuple(fig2, "t1", delta=3.0)
        new = boosted.tuple_by_id("t1").score
        old = fig2.tuple_by_id("t1").score
        assert new.stochastically_dominates(old)

    def test_boost_tuple_level_respects_rule_mass(self, fig4):
        boosted = boost_tuple(fig4, "t2", delta=1.0)
        row = boosted.tuple_by_id("t2")
        assert row.score == pytest.approx(93.0)
        mate = boosted.tuple_by_id("t4")
        assert row.probability + mate.probability <= 1.0 + 1e-9

    def test_diminish_attribute(self, fig2):
        diminished = diminish_tuple(fig2, "t1", delta=2.0)
        old = fig2.tuple_by_id("t1").score
        assert old.stochastically_dominates(
            diminished.tuple_by_id("t1").score
        )

    def test_diminish_tuple_level(self, fig4):
        diminished = diminish_tuple(fig4, "t2", delta=2.0)
        row = diminished.tuple_by_id("t2")
        assert row.score == pytest.approx(90.0)
        assert row.probability == pytest.approx(0.25)


class TestCheckers:
    def test_exact_k_passes_for_expected_rank(self, fig2):
        assert check_exact_k(invoker("expected_rank"), fig2).holds

    def test_exact_k_fails_for_pt_k(self, fig2):
        outcome = check_exact_k(
            invoker("pt_k", threshold=0.4), fig2
        )
        assert not outcome.holds
        assert "k=" in outcome.counterexample

    def test_containment_fails_for_u_topk(self, fig2):
        assert not check_containment(invoker("u_topk"), fig2).holds

    def test_weak_containment_holds_for_pt_k(self, fig2):
        assert check_containment(
            invoker("pt_k", threshold=0.4), fig2, weak=True
        ).holds

    def test_unique_ranking_fails_for_u_kranks(self, fig2):
        outcome = check_unique_ranking(invoker("u_kranks"), fig2)
        assert not outcome.holds
        assert "t1" in outcome.counterexample

    def test_value_invariance_fails_for_expected_score(self):
        relation = TupleLevelRelation(
            [
                TupleLevelTuple("lottery", 1000.0, 0.01),
                TupleLevelTuple("solid", 10.0, 0.99),
            ]
        )
        outcome = check_value_invariance(
            invoker("expected_score"), relation
        )
        assert not outcome.holds

    def test_value_invariance_holds_for_expected_rank(self, fig2, fig4):
        for relation in (fig2, fig4):
            assert check_value_invariance(
                invoker("expected_rank"), relation
            ).holds

    def test_value_invariance_compare_modes(self, fig2):
        with pytest.raises(ValueError):
            check_value_invariance(
                invoker("expected_rank"), fig2, compare="bogus"
            )

    def test_stability_holds_for_expected_rank(self, fig2, fig4):
        for relation in (fig2, fig4):
            assert check_stability(
                invoker("expected_rank"), relation
            ).holds

    def test_stability_counterexample_for_u_kranks(self):
        """Diminishing a non-member must not promote it — yet under
        U-kRanks it does on this instance (found by randomised search,
        then frozen): lowering t0's score and probability moves it
        *into* the top-3."""
        relation = TupleLevelRelation(
            [
                TupleLevelTuple("t0", 1.6, 0.36),
                TupleLevelTuple("t1", 1.3, 0.38),
                TupleLevelTuple("t2", 42.8, 0.18),
                TupleLevelTuple("t3", 34.5, 0.25),
                TupleLevelTuple("t4", 20.7, 0.23),
            ],
            rules=[ExclusionRule("rule0", ["t1", "t4"])],
        )
        before = u_kranks(relation, 3)
        assert "t0" not in before.tid_set()
        worse = relation.replace_tuple(TupleLevelTuple("t0", 0.6, 0.18))
        after = u_kranks(worse, 3)
        assert "t0" in after.tid_set()
        outcome = check_stability(
            invoker("u_kranks"), relation, ks=[3], delta=1.0
        )
        assert not outcome.holds


class TestFaithfulness:
    """The Appendix A 'further property' from [48]: a dominated tuple
    must not be reported while its dominator is left out."""

    def test_expected_rank_is_faithful_on_fixtures(self, fig2, fig4):
        for relation in (fig2, fig4):
            assert check_faithfulness(
                invoker("expected_rank"), relation
            ).holds

    @pytest.mark.parametrize("seed", range(12))
    def test_expected_rank_is_faithful_on_random_data(self, seed):
        from repro.datagen import generate_tuple_relation

        relation = generate_tuple_relation(
            6, rule_fraction=0.4, seed=seed
        )
        assert check_faithfulness(
            invoker("expected_rank"), relation, ks=[1, 2, 3]
        ).holds

    def test_simple_baselines_trivially_faithful(self, fig4):
        for method in ("expected_score", "probability_only"):
            assert check_faithfulness(invoker(method), fig4).holds

    def test_median_rank_can_break_faithfulness_via_ties(self):
        """Integer medians tie often; insertion-order tie-breaking can
        then report a dominated tuple ahead of its dominator — a
        documented limitation (seed frozen from randomized search)."""
        from repro.datagen import generate_tuple_relation

        violated = False
        for seed in range(30):
            relation = generate_tuple_relation(
                6, rule_fraction=0.4, seed=seed
            )
            outcome = check_faithfulness(
                invoker("median_rank"), relation, ks=[1, 2, 3]
            )
            if not outcome.holds:
                violated = True
                break
        assert violated

    def test_dominance_requires_strictness(self, fig4):
        """Rule mates are exempt: t2 and t4 share a rule, so their
        interaction never counts as a faithfulness violation."""
        outcome = check_faithfulness(invoker("expected_rank"), fig4)
        assert outcome.holds


class TestFigure5Matrix:
    """The full audit must reproduce the paper's Figure 5."""

    #: (method, kwargs) -> expected property outcomes.  "containment"
    #: here is the strict Definition 2; PT-k's documented status is
    #: weak-only.
    EXPECTED = {
        "expected_rank": dict(
            exact_k=True,
            containment=True,
            weak_containment=True,
            unique_ranking=True,
            value_invariance=True,
            stability=True,
        ),
        "median_rank": dict(
            exact_k=True,
            containment=True,
            weak_containment=True,
            unique_ranking=True,
            value_invariance=True,
            stability=True,
        ),
        "u_topk": dict(
            exact_k=False,
            containment=False,
            weak_containment=False,
            unique_ranking=True,
            value_invariance=True,
            stability=True,
        ),
        "u_kranks": dict(
            exact_k=True,
            containment=True,
            weak_containment=True,
            unique_ranking=False,
            value_invariance=True,
            # Stability is violated in general (shown above with a
            # dedicated counterexample); the Figure 2/4 fixtures alone
            # do not expose it, so it is checked separately.
        ),
        "pt_k": dict(
            exact_k=False,
            containment=False,
            weak_containment=True,
            unique_ranking=True,
            value_invariance=True,
            stability=True,
        ),
        "global_topk": dict(
            exact_k=True,
            containment=False,
            unique_ranking=True,
            value_invariance=True,
            stability=True,
        ),
        "expected_score": dict(
            exact_k=True,
            containment=True,
            weak_containment=True,
            unique_ranking=True,
            value_invariance=False,
            stability=True,
        ),
    }

    @pytest.fixture(scope="class")
    def matrix(self):
        fig2 = AttributeLevelRelation(
            [
                AttributeTuple("t1", DiscretePDF([100, 70], [0.4, 0.6])),
                AttributeTuple("t2", DiscretePDF([92, 80], [0.6, 0.4])),
                AttributeTuple("t3", DiscretePDF([85], [1.0])),
            ]
        )
        fig4 = TupleLevelRelation(
            [
                TupleLevelTuple("t1", 100, 0.4),
                TupleLevelTuple("t2", 92, 0.5),
                TupleLevelTuple("t3", 85, 1.0),
                TupleLevelTuple("t4", 80, 0.5),
            ],
            rules=[ExclusionRule("tau2", ["t2", "t4"])],
        )
        methods = {
            "expected_rank": invoker("expected_rank"),
            "median_rank": invoker("median_rank"),
            "u_topk": invoker("u_topk"),
            "u_kranks": invoker("u_kranks"),
            "pt_k": invoker("pt_k", threshold=0.4),
            "global_topk": invoker("global_topk"),
            "expected_score": invoker("expected_score"),
        }
        return property_matrix(methods, [fig2, fig4])

    @pytest.mark.parametrize(
        "method", sorted(EXPECTED), ids=sorted(EXPECTED)
    )
    def test_row_matches_figure5(self, matrix, method):
        for property_name, expected in self.EXPECTED[method].items():
            outcome = matrix[method][property_name]
            assert outcome.holds == expected, (
                f"{method}/{property_name}: expected "
                f"{'hold' if expected else 'violation'}, got {outcome}"
            )

    def test_matrix_covers_all_properties(self, matrix):
        for row in matrix.values():
            assert set(row) == set(PROPERTY_NAMES)
