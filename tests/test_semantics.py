"""Tests for the unified semantics registry (:mod:`repro.core.semantics`)."""

from __future__ import annotations

import pytest

from repro.core import (
    available_methods,
    method_supports,
    rank,
    register_method,
)
from repro.core.result import RankedItem, TopKResult
from repro.exceptions import UnknownMethodError, UnsupportedModelError


EXPECTED_METHODS = {
    "expected_rank",
    "expected_rank_prune",
    "median_rank",
    "quantile_rank",
    "quantile_rank_prune",
    "u_topk",
    "u_kranks",
    "pt_k",
    "global_topk",
    "expected_score",
    "probability_only",
}


class TestRegistry:
    def test_all_builtins_registered(self):
        assert EXPECTED_METHODS <= set(available_methods())

    def test_unknown_method_rejected(self, fig2):
        with pytest.raises(UnknownMethodError):
            rank(fig2, 1, method="nope")

    def test_method_supports(self, fig2, fig4):
        assert method_supports("expected_rank", fig2)
        assert method_supports("probability_only", fig4)
        assert not method_supports("probability_only", fig2)
        with pytest.raises(UnknownMethodError):
            method_supports("nope", fig2)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):

            @register_method("expected_rank")
            def clash(relation, k, **options):  # pragma: no cover
                raise AssertionError

    def test_custom_method_registration(self, fig2):
        @register_method("test_only_first")
        def first_tuple(relation, k, **options):
            items = tuple(
                RankedItem(tid=tid, position=index)
                for index, tid in enumerate(relation.tids()[:k])
            )
            return TopKResult(
                method="test_only_first", k=k, items=items
            )

        assert rank(fig2, 2, method="test_only_first").tids() == (
            "t1",
            "t2",
        )


class TestDispatch:
    def test_expected_rank_both_models(self, fig2, fig4):
        assert rank(fig2, 3).tids() == ("t2", "t3", "t1")
        assert rank(fig4, 4).tids() == ("t3", "t1", "t2", "t4")

    def test_default_method_is_expected_rank(self, fig2):
        assert rank(fig2, 2).method == "expected_rank"

    def test_median_rank_dispatch(self, fig2, fig4):
        assert rank(fig2, 3, method="median_rank").tids() == (
            "t2",
            "t3",
            "t1",
        )
        assert rank(fig4, 4, method="median_rank").tids() == (
            "t2",
            "t3",
            "t1",
            "t4",
        )

    def test_quantile_options_flow_through(self, fig4):
        result = rank(fig4, 2, method="quantile_rank", phi=0.75)
        assert result.metadata["phi"] == 0.75

    def test_prune_dispatch(self, fig2, fig4):
        assert rank(fig2, 2, method="expected_rank_prune").tids() == rank(
            fig2, 2
        ).tids()
        assert rank(fig4, 2, method="expected_rank_prune").tids() == rank(
            fig4, 2
        ).tids()

    def test_pt_k_requires_threshold(self, fig4):
        with pytest.raises(TypeError):
            rank(fig4, 2, method="pt_k")

    def test_probability_only_rejects_attribute(self, fig2):
        with pytest.raises(UnsupportedModelError):
            rank(fig2, 1, method="probability_only")

    def test_unsupported_relation_type(self):
        with pytest.raises(UnsupportedModelError):
            rank([1, 2, 3], 1)  # type: ignore[arg-type]


class TestAgreementAcrossStatistics:
    """Expected, median and quantile ranks should broadly agree on
    clean inputs while remaining distinct definitions."""

    def test_certain_data_all_agree(self, certain_attribute):
        for method in ("expected_rank", "median_rank"):
            assert rank(certain_attribute, 3, method=method).tids() == (
                "a",
                "b",
                "c",
            )

    def test_figure4_disagreement_is_real(self, fig4):
        """The paper's own example where median and expectation differ."""
        assert rank(fig4, 4).tids() != rank(
            fig4, 4, method="median_rank"
        ).tids()
