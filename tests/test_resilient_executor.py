"""Tests for the graceful-degradation ladder and the chaos CLI demo.

The :class:`~repro.engine.query.ResilientExecutor` must (a) change
nothing when nothing goes wrong, (b) step exact → pruned → Monte-Carlo
exactly when the environment forces it, and (c) keep the CLI exiting 0
with k answers under injected faults and tight deadlines.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core import rank
from repro.engine.query import ResilientExecutor, TopKPlanner
from repro.exceptions import UnknownMethodError
from repro.robust import FaultInjector, RetryPolicy


def no_sleep(_seconds: float) -> None:
    pass


def instant_retry(max_retries: int = 3) -> RetryPolicy:
    return RetryPolicy(max_retries=max_retries, base_delay=0.0)


class TestPlannerUnknownMethod:
    def test_message_lists_available_methods(self, fig2):
        with pytest.raises(UnknownMethodError) as excinfo:
            TopKPlanner().plan(fig2, 2, "bogus")
        message = str(excinfo.value)
        assert "unknown ranking method 'bogus'" in message
        assert "available:" in message
        assert "expected_rank" in message

    def test_executor_propagates_it_unchanged(self, fig2):
        # A bad method name is a request error, not an environmental
        # one: the ladder must not absorb it into a degraded answer.
        executor = ResilientExecutor(
            injector=FaultInjector(error_rate=1.0, seed=0),
            retry=instant_retry(),
            sleep=no_sleep,
        )
        with pytest.raises(UnknownMethodError):
            executor.execute(fig2, 2, method="bogus")


class TestNoFaultPath:
    def test_results_identical_to_plain_rank(self, fig2):
        executor = ResilientExecutor(sleep=no_sleep)
        resilient = executor.execute(fig2, 2, method="expected_rank")
        plain = rank(fig2, 2, method="expected_rank")
        assert resilient.tids() == plain.tids()
        assert [item.statistic for item in resilient] == [
            item.statistic for item in plain
        ]

    def test_metadata_records_clean_run(self, fig4):
        executor = ResilientExecutor(sleep=no_sleep)
        result = executor.execute(fig4, 2, method="expected_rank")
        meta = result.metadata
        assert meta["resilient"] is True
        assert meta["degraded"] is False
        assert meta["fallback_method"] == "expected_rank"
        assert meta["attempts"] == 1
        assert meta["faults_survived"] == 0
        assert meta["faults_injected"] == 0
        assert [rung["outcome"] for rung in meta["ladder"]] == ["ok"]


class TestDegradation:
    def test_retry_survives_a_transient_fault(self, fig2):
        injector = FaultInjector(
            error_rate=1.0, seed=0, fault_budget=1
        )
        executor = ResilientExecutor(
            injector=injector, retry=instant_retry(), sleep=no_sleep
        )
        result = executor.execute(fig2, 2)
        meta = result.metadata
        assert meta["degraded"] is False
        assert meta["attempts"] == 2
        assert meta["faults_survived"] == 1
        assert result.tids() == rank(fig2, 2).tids()

    def test_degrades_to_pruned_when_exact_keeps_failing(self, fig2):
        # Budget = exactly the exact rung's 1 + 2 retries; the pruned
        # rung then runs fault-free.
        injector = FaultInjector(
            error_rate=1.0, seed=0, fault_budget=3
        )
        executor = ResilientExecutor(
            injector=injector,
            retry=instant_retry(max_retries=2),
            sleep=no_sleep,
        )
        result = executor.execute(fig2, 2, method="expected_rank")
        meta = result.metadata
        assert meta["degraded"] is True
        assert meta["fallback_method"] == "expected_rank_prune"
        ladder = list(meta["ladder"])
        assert ladder[0]["rung"] == "exact"
        assert "TransientAccessError" in ladder[0]["outcome"]
        assert ladder[1] == {
            "rung": "pruned",
            "method": "expected_rank_prune",
            "outcome": "ok",
        }
        # Degraded, but still the exact answer: pruning is lossless.
        assert result.tids() == rank(fig2, 2).tids()

    def test_falls_back_to_monte_carlo_as_last_resort(self, fig4):
        # Unlimited faults: every faultable rung fails; the last
        # resort is never pulsed and must answer.
        injector = FaultInjector(error_rate=1.0, seed=0)
        executor = ResilientExecutor(
            injector=injector,
            retry=instant_retry(max_retries=1),
            seed=7,
            sleep=no_sleep,
        )
        result = executor.execute(fig4, 2, method="expected_rank")
        meta = result.metadata
        assert meta["degraded"] is True
        assert meta["fallback_method"] == "mc_expected_rank"
        assert len(result) == 2
        failed = [
            rung
            for rung in meta["ladder"]
            if rung["outcome"] != "ok"
        ]
        assert len(failed) == 2  # exact and pruned both gave up

    def test_monte_carlo_fallback_is_seeded(self, fig4):
        def degraded_result():
            executor = ResilientExecutor(
                injector=FaultInjector(error_rate=1.0, seed=0),
                retry=instant_retry(max_retries=0),
                seed=11,
                sleep=no_sleep,
            )
            return executor.execute(fig4, 2)

        first = degraded_result()
        second = degraded_result()
        assert first.tids() == second.tids()
        assert [item.statistic for item in first] == [
            item.statistic for item in second
        ]

    def test_expired_deadline_forces_cheap_estimate(self, fig4):
        # A zero deadline expires before the first attempt of every
        # bounded rung; only the last resort (deadline-free, with a
        # shrunken sampling budget) can answer.
        executor = ResilientExecutor(
            deadline_ms=0.0, retry=instant_retry(), sleep=no_sleep
        )
        result = executor.execute(fig4, 2, method="expected_rank")
        meta = result.metadata
        assert meta["degraded"] is True
        assert meta["fallback_method"] == "mc_expected_rank"
        assert len(result) == 2
        assert meta["samples"] <= 64  # the shrunk budget
        assert all(
            "DeadlineExceededError" in rung["outcome"]
            for rung in list(meta["ladder"])[:-1]
        )

    def test_pt_k_has_no_pruned_rung(self, fig4):
        # Methods without a pruned twin degrade straight to the
        # estimate.
        injector = FaultInjector(error_rate=1.0, seed=0)
        executor = ResilientExecutor(
            injector=injector,
            retry=instant_retry(max_retries=0),
            sleep=no_sleep,
        )
        result = executor.execute(
            fig4, 2, method="pt_k", threshold=0.4
        )
        rungs = [r["rung"] for r in result.metadata["ladder"]]
        assert rungs == ["exact", "monte_carlo"]


class TestDatabaseIntegration:
    def test_topk_routes_through_executor(self, fig4):
        from repro.engine import ProbabilisticDatabase

        db = ProbabilisticDatabase()
        db.create_relation("r", fig4)
        executor = ResilientExecutor(
            injector=FaultInjector(error_rate=1.0, seed=0),
            retry=instant_retry(max_retries=0),
            sleep=no_sleep,
        )
        result = db.topk("r", 2, executor=executor)
        assert result.metadata["degraded"] is True
        entry = db.query_log[-1]
        assert entry.degraded is True
        assert entry.fallback_method == "mc_expected_rank"

    def test_plain_topk_logs_undegraded(self, fig4):
        from repro.engine import ProbabilisticDatabase

        db = ProbabilisticDatabase()
        db.create_relation("r", fig4)
        db.topk("r", 2)
        entry = db.query_log[-1]
        assert entry.degraded is False
        assert entry.fallback_method is None


@pytest.mark.chaos
class TestChaosDemo:
    """The acceptance scenario: 20% faults, tight budget, exit 0."""

    @pytest.fixture
    def workload_csv(self, tmp_path, capsys):
        path = tmp_path / "rel.csv"
        assert (
            main(
                [
                    "generate",
                    "tuple",
                    str(path),
                    "-n",
                    "60",
                    "--seed",
                    "3",
                ]
            )
            == 0
        )
        capsys.readouterr()
        return path

    @pytest.mark.timeout(60)
    def test_cli_survives_injected_faults(self, workload_csv, capsys):
        code = main(
            [
                "topk",
                str(workload_csv),
                "-k",
                "5",
                "--inject-faults",
                "0.2",
                "--deadline-ms",
                "500",
                "--fault-seed",
                "3",
                "--max-retries",
                "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        ranked = [
            line
            for line in out.splitlines()
            if line and line[0].isdigit() and "\t" in line
        ]
        assert len(ranked) == 5
        resilience = next(
            line
            for line in out.splitlines()
            if line.startswith("resilience:")
        )
        # Seed 3 deterministically injects at least one transient
        # fault that the retry layer survives.
        assert "faults_injected=0" not in resilience
        assert "faults_survived=0" not in resilience

    @pytest.mark.timeout(60)
    def test_metrics_out_records_retries_and_faults(
        self, workload_csv, tmp_path, capsys
    ):
        metrics = tmp_path / "metrics.jsonl"
        code = main(
            [
                "--metrics-out",
                str(metrics),
                "topk",
                str(workload_csv),
                "-k",
                "5",
                "--inject-faults",
                "0.2",
                "--deadline-ms",
                "500",
                "--fault-seed",
                "3",
                "--max-retries",
                "3",
            ]
        )
        capsys.readouterr()
        assert code == 0
        snapshot = json.loads(metrics.read_text().splitlines()[-1])
        counters = snapshot["counters"]
        assert counters["robust.execute.calls"] == 1
        assert counters["robust.faults.injected.error"] >= 1
        assert counters["robust.retry.attempts"] >= 2

    @pytest.mark.timeout(60)
    def test_every_seed_in_a_band_exits_zero(self, workload_csv, capsys):
        # The ladder guarantee is seed-independent: whatever the fault
        # pattern, the CLI answers.  (Only the load can theoretically
        # fail — after 4 consecutive open faults — which none of these
        # seeds hits.)
        for seed in range(8):
            code = main(
                [
                    "topk",
                    str(workload_csv),
                    "-k",
                    "5",
                    "--inject-faults",
                    "0.2",
                    "--deadline-ms",
                    "250",
                    "--fault-seed",
                    str(seed),
                    "--max-retries",
                    "3",
                ]
            )
            capsys.readouterr()
            assert code == 0, f"chaos run failed for seed {seed}"
