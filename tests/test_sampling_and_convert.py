"""Tests for Monte-Carlo sampling and the model converters."""

from __future__ import annotations

import pytest

from repro.core import attribute_expected_ranks, tuple_expected_ranks
from repro.models.convert import (
    alternatives_of,
    attribute_to_tuple_level,
    certain_to_attribute_level,
    certain_to_tuple_level,
)
from repro.models.sampling import (
    estimate_expected_ranks,
    sample_attribute_rank_counts,
    sample_attribute_topk_answers,
    sample_tuple_rank_counts,
    sample_tuple_topk_answers,
)


class TestSamplingEstimators:
    def test_attribute_rank_counts_total(self, fig2):
        counts = sample_attribute_rank_counts(fig2, 500, rng=1)
        for histogram in counts.values():
            assert sum(histogram.values()) == 500

    def test_tuple_rank_counts_total(self, fig4):
        counts = sample_tuple_rank_counts(fig4, 500, rng=1)
        for histogram in counts.values():
            assert sum(histogram.values()) == 500

    def test_attribute_expected_rank_estimates_converge(self, fig2):
        estimates = estimate_expected_ranks(fig2, 40_000, rng=7)
        exact = attribute_expected_ranks(fig2)
        for tid, value in exact.items():
            assert estimates[tid] == pytest.approx(value, abs=0.05)

    def test_tuple_expected_rank_estimates_converge(self, fig4):
        estimates = estimate_expected_ranks(fig4, 40_000, rng=7)
        exact = tuple_expected_ranks(fig4)
        for tid, value in exact.items():
            assert estimates[tid] == pytest.approx(value, abs=0.05)

    def test_attribute_topk_answer_frequencies(self, fig2):
        counts = sample_attribute_topk_answers(fig2, 2, 30_000, rng=3)
        assert counts[("t2", "t3")] / 30_000 == pytest.approx(
            0.36, abs=0.02
        )

    def test_tuple_topk_answer_frequencies(self, fig4):
        counts = sample_tuple_topk_answers(fig4, 1, 30_000, rng=3)
        assert counts[("t1",)] / 30_000 == pytest.approx(0.4, abs=0.02)

    def test_seed_reproducibility(self, fig2):
        first = sample_attribute_rank_counts(fig2, 100, rng=42)
        second = sample_attribute_rank_counts(fig2, 100, rng=42)
        assert first == second


class TestCertainLifts:
    def test_attribute_lift_ranks_deterministically(self):
        relation = certain_to_attribute_level(
            [("a", 3.0), ("b", 2.0), ("c", 1.0)]
        )
        ranks = attribute_expected_ranks(relation)
        assert ranks == {"a": 0.0, "b": 1.0, "c": 2.0}

    def test_tuple_lift_ranks_deterministically(self):
        relation = certain_to_tuple_level(
            [("a", 3.0), ("b", 2.0), ("c", 1.0)]
        )
        ranks = tuple_expected_ranks(relation)
        assert ranks == {"a": 0.0, "b": 1.0, "c": 2.0}


class TestAttributeToTupleExpansion:
    def test_alternative_counts(self, fig2):
        expanded = attribute_to_tuple_level(fig2)
        assert expanded.size == 5  # 2 + 2 + 1 alternatives
        assert expanded.rule_count == 3

    def test_alternatives_form_one_rule(self, fig2):
        expanded = attribute_to_tuple_level(fig2)
        names = alternatives_of(expanded, "t1")
        assert len(names) == 2
        assert expanded.exclusive_with(*names)

    def test_expanded_probabilities_match_pdf(self, fig2):
        expanded = attribute_to_tuple_level(fig2)
        first = expanded.tuple_by_id("t1@0")
        assert first.probability == pytest.approx(
            fig2.tuple_by_id("t1").score.probabilities[0]
        )

    def test_rankings_do_not_transfer(self, fig2):
        """The paper's point: the models rank different tuple sets, so
        no simple reduction exists.  The expansion has N=5 entities
        versus the original N=3."""
        expanded = attribute_to_tuple_level(fig2)
        assert expanded.size != fig2.size
