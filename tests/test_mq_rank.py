"""Tests for the median/quantile rank DPs (Section 7) and their pruning."""

from __future__ import annotations

import pytest

from repro.baselines import brute_force_rank_distributions
from repro.core import (
    a_mqrank,
    a_mqrank_prune,
    attribute_rank_distribution,
    attribute_rank_distributions,
    t_mqrank,
    t_mqrank_prune,
    tuple_present_rank_pmf,
    tuple_rank_distribution,
    tuple_rank_distributions,
)
from repro.datagen import (
    generate_attribute_relation,
    generate_tuple_relation,
)
from repro.exceptions import PruningBoundError, RankingError
from repro.models import (
    AttributeLevelRelation,
    AttributeTuple,
    DiscretePDF,
    TupleLevelRelation,
    TupleLevelTuple,
)


class TestAttributeRankDistributions:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("ties", ["shared", "by_index"])
    def test_against_oracle(self, seed, ties):
        relation = generate_attribute_relation(5, pdf_size=3, seed=seed)
        fast = attribute_rank_distributions(relation, ties=ties)
        slow = brute_force_rank_distributions(relation, ties=ties)
        for tid in fast:
            assert fast[tid].allclose(slow[tid], atol=1e-9)

    def test_single_tuple_distribution(self):
        relation = AttributeLevelRelation(
            [AttributeTuple("only", DiscretePDF([1, 2], [0.5, 0.5]))]
        )
        dist = attribute_rank_distribution(relation, "only")
        assert dist.probability_of(0) == pytest.approx(1.0)

    def test_expectation_consistency(self, fig2):
        """E[rank] from the full distribution equals A-ERank's output
        (shared ties)."""
        from repro.core import attribute_expected_ranks

        dists = attribute_rank_distributions(fig2, ties="shared")
        ranks = attribute_expected_ranks(fig2, ties="shared")
        for tid in ranks:
            assert dists[tid].expectation() == pytest.approx(ranks[tid])

    def test_distributions_are_proper(self, fig2):
        for dist in attribute_rank_distributions(fig2).values():
            assert float(dist.pmf.sum()) == pytest.approx(1.0)
            assert dist.max_rank <= fig2.size - 1


class TestTupleRankDistributions:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("ties", ["shared", "by_index"])
    def test_against_oracle(self, seed, ties):
        relation = generate_tuple_relation(
            7, rule_fraction=0.6, seed=seed
        )
        fast = tuple_rank_distributions(relation, ties=ties)
        slow = brute_force_rank_distributions(relation, ties=ties)
        for tid in fast:
            assert fast[tid].allclose(slow[tid], atol=1e-9)

    def test_certain_tuple_point_mass(self, certain_tuple):
        dists = tuple_rank_distributions(certain_tuple)
        assert dists["a"].probability_of(0) == pytest.approx(1.0)
        assert dists["c"].probability_of(2) == pytest.approx(1.0)

    def test_zero_probability_tuple_rank_is_world_size(self):
        relation = TupleLevelRelation(
            [
                TupleLevelTuple("never", 10.0, 0.0),
                TupleLevelTuple("coin", 5.0, 0.5),
            ]
        )
        dist = tuple_rank_distribution(relation, "never")
        # Rank of the absent tuple is |W| in {0, 1} with equal odds.
        assert dist.probability_of(0) == pytest.approx(0.5)
        assert dist.probability_of(1) == pytest.approx(0.5)

    def test_present_pmf_conditioning(self, fig4):
        """p(t) * present-pmf equals Pr[appears and j tuples beat it]."""
        pmf = tuple_present_rank_pmf(fig4, "t2")
        # Given t2 appears, only t1 (score 100 > 92) can beat it: t3
        # scores below and t4 is excluded by the shared rule.
        assert pmf[0] == pytest.approx(0.6)
        assert pmf[1] == pytest.approx(0.4)

    def test_expectation_consistency(self, fig4):
        from repro.core import tuple_expected_ranks

        dists = tuple_rank_distributions(fig4, ties="shared")
        ranks = tuple_expected_ranks(fig4, ties="shared")
        for tid in ranks:
            assert dists[tid].expectation() == pytest.approx(ranks[tid])


class TestQuantileRanking:
    def test_median_is_half_quantile(self, fig4):
        median = t_mqrank(fig4, 4, phi=0.5)
        assert median.method == "median_rank"
        assert median.tids() == ("t2", "t3", "t1", "t4")

    def test_phi_extremes(self, fig2):
        optimistic = a_mqrank(fig2, 3, phi=0.05)
        pessimistic = a_mqrank(fig2, 3, phi=1.0)
        for tid in fig2.tids():
            assert optimistic.statistics[tid] <= pessimistic.statistics[
                tid
            ]

    def test_quantile_statistics_monotone_in_phi(self, fig4):
        previous = None
        for phi in (0.1, 0.3, 0.5, 0.7, 0.9):
            current = t_mqrank(fig4, 4, phi=phi).statistics
            if previous is not None:
                for tid in current:
                    assert current[tid] >= previous[tid]
            previous = current

    def test_invalid_phi_rejected(self, fig2):
        with pytest.raises(RankingError):
            a_mqrank(fig2, 1, phi=0.0)
        with pytest.raises(RankingError):
            t_mqrank(
                TupleLevelRelation([TupleLevelTuple("a", 1.0, 1.0)]),
                1,
                phi=1.2,
            )

    def test_negative_k_rejected(self, fig2):
        with pytest.raises(RankingError):
            a_mqrank(fig2, -2)

    def test_method_name_reflects_phi(self, fig2):
        assert a_mqrank(fig2, 1, phi=0.75).method == "quantile_rank[0.75]"


class TestAttributeMQPrune:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_exact(self, seed):
        relation = generate_attribute_relation(
            60, pdf_size=3, score_distribution="zipf", seed=seed
        )
        exact = a_mqrank(relation, 5)
        pruned = a_mqrank_prune(relation, 5, check_every=8)
        assert pruned.tids() == exact.tids()

    def test_rejects_nonpositive_scores(self):
        relation = AttributeLevelRelation(
            [
                AttributeTuple("a", DiscretePDF([0.0, 5], [0.5, 0.5])),
                AttributeTuple("b", DiscretePDF.point(3)),
            ]
        )
        with pytest.raises(PruningBoundError):
            a_mqrank_prune(relation, 1)

    def test_rejects_boundary_phi(self, fig2):
        with pytest.raises(RankingError):
            a_mqrank_prune(fig2, 1, phi=1.0)

    def test_rejects_bad_check_every(self, fig2):
        with pytest.raises(RankingError):
            a_mqrank_prune(fig2, 1, check_every=0)

    def test_reports_access_metadata(self, fig2):
        result = a_mqrank_prune(fig2, 1, check_every=1)
        assert "tuples_accessed" in result.metadata
        assert result.metadata["tuples_accessed"] <= fig2.size

    def test_markov_only_bounds_still_sound(self):
        """tight_bounds=False (the E15 ablation arm) may access more
        but must return the same answer."""
        relation = generate_attribute_relation(
            80, pdf_size=3, score_distribution="zipf", seed=4
        )
        exact = a_mqrank(relation, 5)
        tight = a_mqrank_prune(relation, 5, check_every=8)
        loose = a_mqrank_prune(
            relation, 5, check_every=8, tight_bounds=False
        )
        assert tight.tids() == exact.tids()
        assert loose.tids() == exact.tids()
        assert (
            tight.metadata["tuples_accessed"]
            <= loose.metadata["tuples_accessed"]
        )


class TestTupleMQPrune:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_exact(self, seed):
        relation = generate_tuple_relation(
            300, rule_fraction=0.3, seed=seed
        )
        exact = t_mqrank(relation, 5)
        pruned = t_mqrank_prune(relation, 5, check_every=16)
        assert pruned.tids() == exact.tids()

    def test_halts_early_on_large_input(self):
        relation = generate_tuple_relation(800, seed=2)
        pruned = t_mqrank_prune(relation, 5, check_every=16)
        assert pruned.metadata["halted_early"]
        assert pruned.metadata["tuples_accessed"] < relation.size

    def test_quantile_variant(self):
        relation = generate_tuple_relation(300, seed=5)
        exact = t_mqrank(relation, 5, phi=0.75)
        pruned = t_mqrank_prune(relation, 5, phi=0.75, check_every=16)
        assert pruned.tids() == exact.tids()

    def test_unseen_bound_soundness(self):
        """No unseen tuple can have a quantile rank better than any
        reported one."""
        relation = generate_tuple_relation(400, seed=6)
        pruned = t_mqrank_prune(relation, 5, check_every=16)
        exact = t_mqrank(relation, relation.size)
        seen = set(pruned.statistics)
        worst_reported = max(item.statistic for item in pruned)
        for tid, value in exact.statistics.items():
            if tid not in seen:
                assert value >= worst_reported - 1e-9
