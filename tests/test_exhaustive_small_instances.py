"""Exhaustive validation over *all* small instances of a grid family.

Property-based tests sample; this module enumerates.  Over every
relation in a small combinatorial family — all score/probability
assignments from fixed grids, all rule layouts — the fast algorithms
must agree with possible-world enumeration exactly.  The families are
small enough to cover completely, so a pass is a proof over that
domain rather than statistical evidence.
"""

from __future__ import annotations

import itertools

import pytest

from repro.baselines import (
    brute_force_expected_ranks,
    brute_force_rank_distributions,
)
from repro.core import (
    attribute_expected_ranks,
    attribute_rank_distributions,
    tuple_expected_ranks,
    tuple_rank_distributions,
)
from repro.models import (
    AttributeLevelRelation,
    AttributeTuple,
    DiscretePDF,
    ExclusionRule,
    TupleLevelRelation,
    TupleLevelTuple,
)

SCORE_GRID = (1.0, 2.0)
PROBABILITY_GRID = (0.0, 0.5, 1.0)
PDF_GRID = (
    DiscretePDF([1.0], [1.0]),
    DiscretePDF([2.0], [1.0]),
    DiscretePDF([1.0, 2.0], [0.5, 0.5]),
    DiscretePDF([1.0, 3.0], [0.25, 0.75]),
)


def all_tuple_relations(size: int):
    """Every tuple-level relation over the grids, every rule layout.

    Rule layouts for size 3: none, each of the three pairs, or the
    full triple (when its mass fits).
    """
    layouts: list[tuple[tuple[int, ...], ...]] = [()]
    indices = range(size)
    layouts.extend(
        (pair,) for pair in itertools.combinations(indices, 2)
    )
    if size >= 3:
        layouts.append((tuple(indices),))
    for scores in itertools.product(SCORE_GRID, repeat=size):
        for probabilities in itertools.product(
            PROBABILITY_GRID, repeat=size
        ):
            rows = [
                TupleLevelTuple(
                    f"t{i}", scores[i], probabilities[i]
                )
                for i in range(size)
            ]
            for layout in layouts:
                rules = []
                valid = True
                for rule_index, members in enumerate(layout):
                    if (
                        sum(probabilities[m] for m in members)
                        > 1.0 + 1e-12
                    ):
                        valid = False
                        break
                    rules.append(
                        ExclusionRule(
                            f"r{rule_index}",
                            [f"t{m}" for m in members],
                        )
                    )
                if valid:
                    yield TupleLevelRelation(rows, rules=rules)


def all_attribute_relations(size: int):
    """Every attribute-level relation whose pdfs come from PDF_GRID."""
    for combo in itertools.product(PDF_GRID, repeat=size):
        yield AttributeLevelRelation(
            AttributeTuple(f"t{i}", pdf)
            for i, pdf in enumerate(combo)
        )


class TestExhaustiveTupleLevel:
    @pytest.mark.parametrize("ties", ["shared", "by_index"])
    def test_expected_ranks_match_enumeration_everywhere(self, ties):
        count = 0
        for relation in all_tuple_relations(3):
            fast = tuple_expected_ranks(relation, ties=ties)
            slow = brute_force_expected_ranks(relation, ties=ties)
            for tid in fast:
                assert fast[tid] == pytest.approx(
                    slow[tid], abs=1e-12
                ), relation
            count += 1
        # 2^3 scores x 3^3 probabilities x (1 + 3 + conditional) rule
        # layouts, minus overflowing rules — make sure the sweep is
        # genuinely large.
        assert count > 500

    def test_rank_distributions_match_enumeration_everywhere(self):
        for relation in all_tuple_relations(3):
            fast = tuple_rank_distributions(relation, ties="by_index")
            slow = brute_force_rank_distributions(
                relation, ties="by_index"
            )
            for tid in fast:
                assert fast[tid].allclose(
                    slow[tid], atol=1e-12
                ), relation


class TestExhaustiveAttributeLevel:
    @pytest.mark.parametrize("ties", ["shared", "by_index"])
    def test_expected_ranks_match_enumeration_everywhere(self, ties):
        count = 0
        for relation in all_attribute_relations(3):
            fast = attribute_expected_ranks(relation, ties=ties)
            slow = brute_force_expected_ranks(relation, ties=ties)
            for tid in fast:
                assert fast[tid] == pytest.approx(
                    slow[tid], abs=1e-12
                ), relation
            count += 1
        assert count == len(PDF_GRID) ** 3

    def test_rank_distributions_match_enumeration_everywhere(self):
        for relation in all_attribute_relations(3):
            fast = attribute_rank_distributions(
                relation, ties="by_index"
            )
            slow = brute_force_rank_distributions(
                relation, ties="by_index"
            )
            for tid in fast:
                assert fast[tid].allclose(
                    slow[tid], atol=1e-12
                ), relation
