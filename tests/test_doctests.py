"""Run every doctest embedded in the library's docstrings.

The public API's usage examples must stay executable — they double as
documentation and as smoke tests of the advertised behaviour.
"""

from __future__ import annotations

import doctest
import importlib
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    )
    if not name.endswith("__main__")
)


@pytest.mark.parametrize("module_name", ["repro", *MODULES])
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(
        module,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
    )
    assert results.failed == 0, (
        f"{results.failed} doctest failure(s) in {module_name}"
    )
