"""Property-based tests for the relational operators.

The operators' contract is that they commute with the possible-world
semantics.  Hypothesis drives random relations through random
selections and unions and checks the semantic invariants against both
the fast algorithms and the enumeration oracle.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import brute_force_expected_ranks
from repro.core import tuple_expected_ranks
from repro.engine import select, select_by_score, union_disjoint
from repro.models import (
    ExclusionRule,
    TupleLevelRelation,
    TupleLevelTuple,
)

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def tagged_relations(draw, max_tuples=6, prefix="t"):
    count = draw(st.integers(1, max_tuples))
    rows = []
    for index in range(count):
        rows.append(
            TupleLevelTuple(
                f"{prefix}{index}",
                float(draw(st.integers(1, 15))),
                draw(st.floats(0.0, 1.0, allow_nan=False)),
                {"group": draw(st.sampled_from(["x", "y"]))},
            )
        )
    pair_count = draw(st.integers(0, count // 2))
    order = draw(st.permutations(range(count)))
    rules = []
    for pair_index in range(pair_count):
        first, second = order[2 * pair_index], order[2 * pair_index + 1]
        total = rows[first].probability + rows[second].probability
        if total > 1.0:
            scale = (1.0 - 1e-9) / total
            for position in (first, second):
                row = rows[position]
                rows[position] = TupleLevelTuple(
                    row.tid,
                    row.score,
                    row.probability * scale,
                    row.attributes,
                )
        rules.append(
            ExclusionRule(
                f"{prefix}rule{pair_index}",
                [rows[min(first, second)].tid,
                 rows[max(first, second)].tid],
            )
        )
    return TupleLevelRelation(rows, rules=rules)


class TestSelectionSemantics:
    @SETTINGS
    @given(relation=tagged_relations())
    def test_filtered_relation_matches_oracle(self, relation):
        filtered = select(
            relation, lambda tid, attrs: attrs["group"] == "x"
        )
        if filtered.size == 0:
            return
        fast = tuple_expected_ranks(filtered)
        slow = brute_force_expected_ranks(filtered)
        for tid in fast:
            assert fast[tid] == pytest.approx(slow[tid], abs=1e-8)

    @SETTINGS
    @given(relation=tagged_relations(), threshold=st.integers(1, 15))
    def test_score_selection_keeps_high_scores_only(
        self, relation, threshold
    ):
        filtered = select_by_score(
            relation, lambda score: score >= threshold
        )
        assert all(row.score >= threshold for row in filtered)
        survivors = {row.tid for row in filtered}
        dropped = set(relation.tids()) - survivors
        assert all(
            relation.tuple_by_id(tid).score < threshold
            for tid in dropped
        )

    @SETTINGS
    @given(relation=tagged_relations())
    def test_selection_preserves_probabilities_and_rules(
        self, relation
    ):
        filtered = select(relation, lambda tid, attrs: True)
        assert filtered.tids() == relation.tids()
        for row in relation:
            kept = filtered.tuple_by_id(row.tid)
            assert kept.probability == row.probability
        for rule in relation.rules:
            if rule.is_singleton:
                continue
            for first in rule:
                for second in rule:
                    if first != second:
                        assert filtered.exclusive_with(first, second)


class TestUnionSemantics:
    @SETTINGS
    @given(
        first=tagged_relations(prefix="a"),
        second=tagged_relations(prefix="b"),
    )
    def test_union_matches_oracle(self, first, second):
        merged = union_disjoint(first, second)
        assert merged.size == first.size + second.size
        fast = tuple_expected_ranks(merged)
        slow = brute_force_expected_ranks(merged)
        for tid in fast:
            assert fast[tid] == pytest.approx(slow[tid], abs=1e-8)

    @SETTINGS
    @given(
        first=tagged_relations(prefix="a"),
        second=tagged_relations(prefix="b"),
    )
    def test_union_world_size_is_additive(self, first, second):
        merged = union_disjoint(first, second)
        assert merged.expected_world_size() == pytest.approx(
            first.expected_world_size() + second.expected_world_size()
        )
