"""Tests for the Monte-Carlo expected-rank alternative."""

from __future__ import annotations

import pytest

from repro.core import a_erank, mc_expected_rank, t_erank
from repro.datagen import (
    generate_attribute_relation,
    generate_tuple_relation,
)
from repro.exceptions import RankingError


class TestCertification:
    def test_certified_answer_matches_exact_tuple_level(self):
        relation = generate_tuple_relation(40, seed=0)
        exact = t_erank(relation, 3)
        sampled = mc_expected_rank(relation, 3, rng=7)
        assert sampled.metadata["certified"]
        assert sampled.tids() == exact.tids()

    def test_certified_answer_matches_exact_attribute_level(self):
        relation = generate_attribute_relation(25, pdf_size=3, seed=0)
        exact = a_erank(relation, 3)
        sampled = mc_expected_rank(relation, 3, rng=7)
        assert sampled.metadata["certified"]
        assert sampled.tids() == exact.tids()

    def test_budget_exhaustion_reports_uncertified(self):
        relation = generate_tuple_relation(200, seed=1)
        sampled = mc_expected_rank(
            relation, 10, batch=200, max_samples=400, rng=1
        )
        assert not sampled.metadata["certified"]
        assert sampled.metadata["samples"] == 400

    def test_estimates_are_close_even_uncertified(self):
        relation = generate_tuple_relation(60, seed=2)
        exact = t_erank(relation, relation.size).statistics
        sampled = mc_expected_rank(
            relation, 5, batch=2000, max_samples=2000, rng=3
        )
        worst = max(
            abs(sampled.statistics[tid] - exact[tid]) for tid in exact
        )
        assert worst < 2.0

    def test_k_zero_and_k_full(self):
        relation = generate_tuple_relation(10, seed=3)
        assert len(mc_expected_rank(relation, 0, rng=0)) == 0
        full = mc_expected_rank(relation, 10, rng=0)
        assert len(full) == 10
        assert full.metadata["certified"]

    def test_half_width_shrinks_with_samples(self):
        relation = generate_tuple_relation(150, seed=4)
        small = mc_expected_rank(
            relation, 5, batch=500, max_samples=500, rng=0
        )
        large = mc_expected_rank(
            relation, 5, batch=500, max_samples=4000, rng=0
        )
        assert (
            large.metadata["half_width"] <= small.metadata["half_width"]
        )

    def test_reproducible_with_seed(self):
        relation = generate_tuple_relation(30, seed=5)
        first = mc_expected_rank(relation, 3, rng=11)
        second = mc_expected_rank(relation, 3, rng=11)
        assert first.tids() == second.tids()
        assert first.statistics == second.statistics


class TestValidation:
    def test_parameters(self):
        relation = generate_tuple_relation(5, seed=0)
        with pytest.raises(RankingError):
            mc_expected_rank(relation, -1)
        with pytest.raises(RankingError):
            mc_expected_rank(relation, 1, confidence=1.0)
        with pytest.raises(RankingError):
            mc_expected_rank(relation, 1, batch=0)
        with pytest.raises(RankingError):
            mc_expected_rank(relation, 1, batch=100, max_samples=50)
