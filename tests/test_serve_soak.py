"""Chaos soak for the serving core (``-m chaos``, CI serve-soak job).

Two phases drive well over 200 concurrent requests through
:class:`~repro.serve.ServingCore`:

* **Phase A (calm)** — no faults: coalesced answers must be
  bit-identical (same ``answer_digest``) to uncoalesced runs of the
  same query and to a direct engine call;
* **Phase B (chaos)** — transient faults injected at the
  ``REPRO_FAULT_SEED`` seed, tight deadlines, hostile payloads, and a
  drain fired mid-flight: every request must still resolve to exactly
  one typed outcome (``ok`` / ``shed`` / ``error``), nothing may hang
  past its deadline, and the drained loop must hold zero orphan tasks.

Breaker activity must be visible where operators look: the Prometheus
export of the soak's registry.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.engine.database import ProbabilisticDatabase
from repro.obs import MetricsRegistry, answer_digest, set_registry
from repro.robust import FaultInjector, RetryPolicy, fault_seed_from_env
from repro.serve import ServeRequest, ServeSettings, ServingCore

pytestmark = [pytest.mark.chaos, pytest.mark.timeout(120)]

#: Concurrent requests per phase (the ISSUE's floor is 200).
SOAK_REQUESTS = 240

TYPED_STATUSES = {"ok", "shed", "error"}


@pytest.fixture
def registry():
    fresh = MetricsRegistry(enabled=True)
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


@pytest.fixture
def db(fig2, fig4) -> ProbabilisticDatabase:
    database = ProbabilisticDatabase()
    database.create_relation("fig2", fig2)
    database.create_relation("fig4", fig4)
    return database


def soak_requests() -> list[ServeRequest]:
    """A mixed, deterministic workload of SOAK_REQUESTS queries."""
    requests = []
    for index in range(SOAK_REQUESTS):
        relation = "fig2" if index % 3 else "fig4"
        requests.append(
            ServeRequest(
                relation=relation,
                k=1 + index % 3,
                method=(
                    "expected_rank"
                    if index % 2
                    else "median_rank"
                ),
                tenant=f"tenant-{index % 5}",
            )
        )
    return requests


def assert_no_orphan_tasks() -> None:
    current = asyncio.current_task()
    orphans = [
        task
        for task in asyncio.all_tasks()
        if task is not current and not task.done()
    ]
    assert orphans == [], f"drain left orphan tasks: {orphans}"


class TestCalmSoak:
    def test_coalesced_digests_match_uncoalesced(self, db, registry):
        requests = soak_requests()
        settings = dict(
            queue_limit=SOAK_REQUESTS + 1,
            tenant_rate=10_000.0,
            tenant_burst=float(SOAK_REQUESTS),
        )
        retry = RetryPolicy(max_retries=1, base_delay=0.0)

        async def run_core(coalesce: bool):
            core = ServingCore(
                db,
                settings=ServeSettings(
                    coalesce=coalesce, **settings
                ),
                retry=retry,
            )
            responses = await asyncio.gather(
                *(core.submit(request) for request in requests)
            )
            await core.drain()
            assert_no_orphan_tasks()
            return responses

        coalesced = asyncio.run(run_core(True))
        plain = asyncio.run(run_core(False))
        assert all(r.status == "ok" for r in coalesced)
        assert all(r.status == "ok" for r in plain)
        # Same workload, same answers, bit-identical digests —
        # coalescing must never change what a tenant receives.
        for with_share, without in zip(coalesced, plain):
            assert with_share.answer_digest == without.answer_digest
        assert any(r.coalesced for r in coalesced)
        # And both match a direct engine call, per distinct query.
        for response in coalesced:
            direct = db.topk(
                response.relation, response.k, response.method
            )
            assert response.answer_digest == answer_digest(direct)


class TestChaosSoak:
    def test_every_request_gets_exactly_one_typed_outcome(
        self, db, registry
    ):
        seed = fault_seed_from_env()
        injector = FaultInjector(error_rate=0.4, seed=seed)
        core = ServingCore(
            db,
            settings=ServeSettings(
                queue_limit=64,
                tenant_rate=10_000.0,
                tenant_burst=float(SOAK_REQUESTS),
                default_deadline_ms=2_000.0,
                breaker_min_calls=4,
                breaker_window=8,
            ),
            injector=injector,
            retry=RetryPolicy(max_retries=1, base_delay=0.0),
        )
        requests = soak_requests()
        # Hostile extras: unknown relations and already-dead deadlines.
        hostile = [
            ServeRequest(relation="missing", k=2),
            ServeRequest(relation="fig2", k=2, deadline_ms=0.0),
        ] * 5
        requests += hostile

        async def scenario():
            responses = await asyncio.gather(
                *(core.submit(request) for request in requests)
            )
            report = await core.drain()
            assert_no_orphan_tasks()
            return responses, report

        responses, report = asyncio.run(scenario())
        assert len(responses) == len(requests)
        for response in responses:
            assert response.status in TYPED_STATUSES
        # The hostile extras resolved typed (shed by the overloaded
        # queue, or a typed error), never as hangs or crashes.
        for response in responses[-len(hostile):]:
            assert response.status in ("shed", "error")
            if response.status == "error":
                assert response.error_type in (
                    "RelationNotFoundError",
                    "DeadlineExceededError",
                )
        assert report["abandoned"] >= 0
        # ok answers under chaos still verify against the engine.
        for response in responses:
            if response.status == "ok" and not response.degraded:
                direct = db.topk(
                    response.relation, response.k, response.method
                )
                assert response.answer_digest == answer_digest(
                    direct
                )

    def test_breaker_activity_is_visible_in_prometheus(
        self, db, registry
    ):
        injector = FaultInjector(
            error_rate=1.0, seed=fault_seed_from_env()
        )
        core = ServingCore(
            db,
            settings=ServeSettings(
                breaker_min_calls=2, breaker_window=4
            ),
            injector=injector,
            retry=RetryPolicy(max_retries=0, base_delay=0.0),
        )

        async def scenario():
            for _ in range(6):
                response = await core.submit(
                    ServeRequest("fig2", 2)
                )
                assert response.status in TYPED_STATUSES
            await core.drain()

        asyncio.run(scenario())
        assert "open" in core.breakers.states().values()
        export = registry.to_prometheus()
        assert "robust_breaker" in export
        assert "serve_requests" in export

    def test_drain_mid_flight_settles_everything(
        self, db, registry
    ):
        injector = FaultInjector(
            error_rate=0.2,
            latency_rate=1.0,
            latency_seconds=0.002,
            seed=fault_seed_from_env(),
        )
        core = ServingCore(
            db,
            settings=ServeSettings(
                queue_limit=SOAK_REQUESTS + 1,
                tenant_rate=10_000.0,
                tenant_burst=float(SOAK_REQUESTS),
                drain_deadline_ms=5.0,
            ),
            injector=injector,
            retry=RetryPolicy(max_retries=1, base_delay=0.0),
        )
        requests = soak_requests()

        async def scenario():
            pending = [
                asyncio.create_task(core.submit(request))
                for request in requests
            ]
            await asyncio.sleep(0.01)
            await core.drain()
            responses = await asyncio.gather(*pending)
            assert_no_orphan_tasks()
            return responses

        responses = asyncio.run(scenario())
        assert core.inflight == 0
        assert len(responses) == SOAK_REQUESTS
        for response in responses:
            assert response.status in TYPED_STATUSES


class TestAdminUnderChaos:
    """Admin-endpoint round-trips while the soak is in flight.

    The admin plane shares the event loop with the data plane, so
    this is the test that it stays responsive under load, that a
    mid-soak ``/metrics`` scrape parses with exemplars, and that an
    armed flight recorder captures the chaos-induced anomalies.
    """

    def test_admin_round_trips_mid_soak(
        self, db, registry, tmp_path
    ):
        from repro.obs import (
            FlightRecorder,
            parse_prometheus,
            set_flight_recorder,
        )
        from repro.obs.slo import SLOEngine, SLOSpec
        from repro.serve import serve_admin
        import time as time_module

        injector = FaultInjector(
            error_rate=0.3,
            latency_rate=0.5,
            latency_seconds=0.002,
            seed=fault_seed_from_env(),
        )
        slo = SLOEngine(
            [
                SLOSpec(
                    name="soak-avail",
                    objective="availability",
                    target=0.5,
                )
            ],
            clock=time_module.monotonic,
        )
        core = ServingCore(
            db,
            settings=ServeSettings(
                queue_limit=SOAK_REQUESTS + 1,
                tenant_rate=10_000.0,
                tenant_burst=float(SOAK_REQUESTS),
                default_deadline_ms=2_000.0,
            ),
            injector=injector,
            retry=RetryPolicy(max_retries=1, base_delay=0.0),
            slo=slo,
        )
        recorder = FlightRecorder(
            capacity=512, dump_dir=tmp_path, max_dumps=4
        )
        recorder.arm()
        set_flight_recorder(recorder)

        async def admin_get(port: int, path: str):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            writer.write(
                f"GET {path} HTTP/1.0\r\n\r\n".encode()
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            head, _, body = raw.partition(b"\r\n\r\n")
            status = int(head.decode().split()[1])
            return status, body.decode()

        async def scenario():
            admin = await serve_admin(core, port=0, slo=slo)
            port = admin.sockets[0].getsockname()[1]
            pending = [
                asyncio.create_task(core.submit(request))
                for request in soak_requests()
            ]
            # Scrape while the soak is genuinely in flight.
            await asyncio.sleep(0.005)
            mid_status, mid_body = await admin_get(
                port, "/metrics"
            )
            health_status, _ = await admin_get(port, "/healthz")
            ready_status, _ = await admin_get(port, "/readyz")
            responses = await asyncio.gather(*pending)
            # Force one deterministic anomaly: an already-expired
            # deadline resolves as a typed DeadlineExceededError,
            # which must trigger a flight dump.
            forced = await core.submit(
                ServeRequest(relation="fig2", k=2, deadline_ms=0.0)
            )
            assert forced.status == "error"
            assert forced.error_type == "DeadlineExceededError"
            slo_status, slo_body = await admin_get(port, "/slo")
            flight_status, flight_body = await admin_get(
                port, "/debug/flight"
            )
            await core.drain()
            admin.close()
            await admin.wait_closed()
            assert_no_orphan_tasks()
            return (
                responses,
                (mid_status, mid_body),
                (health_status, ready_status),
                (slo_status, slo_body),
                (flight_status, flight_body),
            )

        try:
            (
                responses,
                (mid_status, mid_body),
                (health_status, ready_status),
                (slo_status, slo_body),
                (flight_status, flight_body),
            ) = asyncio.run(scenario())
        finally:
            recorder.disarm()
            set_flight_recorder(None)

        for response in responses:
            assert response.status in TYPED_STATUSES
        assert mid_status == 200
        assert mid_body.rstrip().endswith("# EOF")
        families = parse_prometheus(mid_body)
        assert "repro_serve_queue_depth" in families
        assert (health_status, ready_status) == (200, 200)
        assert slo_status == 200
        import json as json_module

        (slo_state,) = json_module.loads(slo_body)
        assert slo_state["good"] + slo_state["bad"] > 0
        assert flight_status == 200
        flight = json_module.loads(flight_body)
        assert flight["armed"] is True
        assert flight["records"] > 0
        # The forced deadline anomaly dumped, and the dump is on
        # disk with the triggering trace's span tree in it.
        assert flight["dumps_written"] >= 1
        dump_lines = [
            json_module.loads(line)
            for line in recorder.dump_paths[0]
            .read_text()
            .splitlines()
        ]
        header = dump_lines[0]
        trace_records = [
            record
            for record in dump_lines[1:]
            if record.get("trace_id") == header["trace_id"]
        ]
        assert any(
            record.get("name") == "serve.request"
            for record in trace_records
        )


class TestProfilerOverheadUnderSoak:
    """An armed sampling profiler must not distort the calm soak.

    The strict 5% gate lives in the CI perf-smoke job where the
    machine is quiet; here the budget is deliberately loose (1.5x
    plus a constant floor) so a noisy laptop never flakes, while a
    pathological profiler — one that serialises the workload or
    leaks sampler threads — still fails loudly.  The capture itself
    must come out as a loadable speedscope document, and both the
    ledger and the answers must be unaffected by sampling.
    """

    def test_armed_profiler_stays_inside_budget(self, db, registry):
        import time

        from repro.obs.costs import CostLedger
        from repro.obs.profiler import (
            SamplingProfiler,
            validate_speedscope,
        )

        requests = soak_requests()
        settings = ServeSettings(
            queue_limit=SOAK_REQUESTS + 1,
            tenant_rate=10_000.0,
            tenant_burst=float(SOAK_REQUESTS),
        )

        def run_soak(profiler: SamplingProfiler | None):
            ledger = CostLedger()
            core = ServingCore(
                db,
                settings=settings,
                retry=RetryPolicy(max_retries=1, base_delay=0.0),
                ledger=ledger,
            )

            async def scenario():
                responses = await asyncio.gather(
                    *(core.submit(request) for request in requests)
                )
                await core.drain()
                assert_no_orphan_tasks()
                return responses

            start = time.perf_counter()
            if profiler is not None:
                with profiler:
                    responses = asyncio.run(scenario())
            else:
                responses = asyncio.run(scenario())
            elapsed = time.perf_counter() - start
            assert all(r.status == "ok" for r in responses)
            return elapsed, responses, ledger

        unarmed_seconds, unarmed, _ = run_soak(None)
        profiler = SamplingProfiler(hz=97.0)
        armed_seconds, armed, ledger = run_soak(profiler)

        assert armed_seconds <= unarmed_seconds * 1.5 + 0.5, (
            f"armed soak took {armed_seconds:.3f}s vs "
            f"{unarmed_seconds:.3f}s unarmed"
        )
        # Sampling is observation only: same digests, same ledger
        # shape, and the dump loads in speedscope.
        for with_profiler, without in zip(armed, unarmed):
            assert (
                with_profiler.answer_digest == without.answer_digest
            )
        # The ledger accounts *executions*, not admissions: the
        # calm soak coalesces 240 requests down to one run per
        # distinct (relation, k, method).
        distinct = {
            (request.relation, request.k, request.method)
            for request in requests
        }
        assert ledger.summary()["queries"] == len(distinct)
        assert not profiler.armed  # no orphan sampler thread
        validate_speedscope(profiler.to_speedscope())
