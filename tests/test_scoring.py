"""Tests for scoring functions and the integration workload."""

from __future__ import annotations

import pytest

from repro.core import rank
from repro.datagen import MATCH_WEIGHTS, integration_matches
from repro.engine import (
    score_attribute_records,
    score_tuple_records,
    weighted_sum,
)
from repro.exceptions import EngineError, WorkloadError
from repro.models import TupleLevelRelation


class TestWeightedSum:
    def test_basic(self):
        scoring = weighted_sum({"a": 2.0, "b": -1.0})
        assert scoring({"a": 3, "b": 4}) == pytest.approx(2.0)

    def test_missing_attribute_scores_zero(self):
        scoring = weighted_sum({"a": 2.0})
        assert scoring({}) == 0.0

    def test_non_numeric_rejected(self):
        scoring = weighted_sum({"a": 1.0})
        with pytest.raises(EngineError):
            scoring({"a": "oops"})

    def test_empty_weights_rejected(self):
        with pytest.raises(EngineError):
            weighted_sum({})


class TestScoreAttributeRecords:
    def test_alternatives_become_pdf(self):
        relation = score_attribute_records(
            [
                (
                    "r1",
                    [
                        ({"rating": 4}, 0.7),
                        ({"rating": 2}, 0.3),
                    ],
                )
            ],
            weighted_sum({"rating": 1.0}),
        )
        pdf = relation.tuple_by_id("r1").score
        assert pdf.pr_equal(4.0) == pytest.approx(0.7)
        assert pdf.expectation() == pytest.approx(3.4)

    def test_equal_scores_merge(self):
        relation = score_attribute_records(
            [
                (
                    "r1",
                    [
                        ({"a": 1, "b": 2}, 0.5),
                        ({"a": 2, "b": 1}, 0.5),
                    ],
                )
            ],
            weighted_sum({"a": 1.0, "b": 1.0}),
        )
        assert relation.tuple_by_id("r1").score.support_size == 1

    def test_modal_attributes_kept(self):
        relation = score_attribute_records(
            [
                (
                    "r1",
                    [
                        ({"rating": 4, "tag": "hi"}, 0.7),
                        ({"rating": 2, "tag": "lo"}, 0.3),
                    ],
                )
            ],
            weighted_sum({"rating": 1.0}),
        )
        assert relation.tuple_by_id("r1").attributes["tag"] == "hi"

    def test_empty_alternatives_rejected(self):
        with pytest.raises(EngineError):
            score_attribute_records(
                [("r1", [])], weighted_sum({"a": 1.0})
            )

    def test_bad_scoring_output_rejected(self):
        with pytest.raises(EngineError):
            score_attribute_records(
                [("r1", [({"a": 1}, 1.0)])],
                lambda attributes: float("nan"),
            )


class TestScoreTupleRecords:
    def test_conflicts_become_rules(self):
        relation = score_tuple_records(
            [
                ("m1", {"sim": 0.9}, 0.6),
                ("m2", {"sim": 0.4}, 0.3),
                ("m3", {"sim": 0.5}, 0.8),
            ],
            weighted_sum({"sim": 100.0}),
            conflicts=[["m1", "m2"]],
        )
        assert relation.exclusive_with("m1", "m2")
        assert not relation.exclusive_with("m1", "m3")
        assert relation.tuple_by_id("m1").score == pytest.approx(90.0)

    def test_attributes_carried(self):
        relation = score_tuple_records(
            [("m1", {"sim": 0.5, "source": "crawl"}, 0.5)],
            weighted_sum({"sim": 1.0}),
        )
        assert relation.tuple_by_id("m1").attributes["source"] == "crawl"


class TestIntegrationWorkload:
    def test_shape(self):
        relation = integration_matches(40, seed=0)
        assert isinstance(relation, TupleLevelRelation)
        assert relation.size >= 40
        # Every entity contributes exactly one rule (singletons
        # included for single-candidate entities).
        entities = {
            row.attributes["entity"] for row in relation
        }
        assert len(entities) == 40

    def test_rules_group_entities(self):
        relation = integration_matches(30, seed=1)
        for rule in relation.rules:
            if rule.is_singleton:
                continue
            entities = {
                relation.tuple_by_id(tid).attributes["entity"]
                for tid in rule
            }
            assert len(entities) == 1

    def test_rule_masses_valid(self):
        relation = integration_matches(60, seed=2)
        for rule in relation.rules:
            mass = sum(
                relation.tuple_by_id(tid).probability for tid in rule
            )
            assert mass <= 1.0 + 1e-9

    def test_scores_follow_weights(self):
        relation = integration_matches(10, seed=3)
        row = relation[0]
        expected = sum(
            weight * row.attributes[name]
            for name, weight in MATCH_WEIGHTS.items()
        )
        assert row.score == pytest.approx(expected)

    def test_rankable_end_to_end(self):
        relation = integration_matches(50, seed=4)
        result = rank(relation, 10)
        assert len(result) == 10
        # High-scoring matches should come from distinct entities more
        # often than not (rule mates rarely co-rank).
        top_entities = [
            relation.tuple_by_id(tid).attributes["entity"]
            for tid in result.tids()
        ]
        assert len(set(top_entities)) >= 8

    def test_seeded_determinism(self):
        first = integration_matches(20, seed=9)
        second = integration_matches(20, seed=9)
        assert first.tids() == second.tids()
        assert [row.score for row in first] == [
            row.score for row in second
        ]

    def test_validation(self):
        with pytest.raises(WorkloadError):
            integration_matches(-1)
        with pytest.raises(WorkloadError):
            integration_matches(5, max_candidates=0)
