"""The perf-smoke baseline runner and the compare gate."""

from __future__ import annotations

import json

import pytest

import repro.bench.baseline as baseline_module
from repro.bench.baseline import run_suite, write_baseline
from repro.bench.compare import (
    append_history,
    compare_documents,
    last_history_entry,
)
from repro.bench.compare import main as compare_main


# Tiny and fast: every workload shrunk ~50x, single repetition.
TEST_SCALE = 0.02
TIMED_CASES = {
    "a_erank/uu/n=2000/seconds",
    "t_erank/uu/n=4000/seconds",
}


@pytest.fixture(scope="module")
def small_document():
    return run_suite(scale=TEST_SCALE, repeats=1)


class TestRunSuite:
    def test_document_shape(self, small_document):
        assert small_document["schema"] == 1
        assert small_document["suite"] == "repro-perf-smoke"
        assert small_document["metrics"]
        for entry in small_document["metrics"].values():
            assert entry["kind"] in {"seconds", "count"}
            assert entry["value"] >= 0.0

    def test_count_metrics_are_deterministic(self):
        first = run_suite(
            scale=TEST_SCALE,
            repeats=1,
            names={"t_erank_prune/uu/n=4000/k=10/tuples_accessed"},
        )
        second = run_suite(
            scale=TEST_SCALE,
            repeats=1,
            names={"t_erank_prune/uu/n=4000/k=10/tuples_accessed"},
        )
        assert first["metrics"] == second["metrics"]

    def test_unknown_case_name_rejected(self):
        with pytest.raises(ValueError, match="unknown case"):
            run_suite(scale=TEST_SCALE, repeats=1, names={"nope"})

    def test_write_round_trip(self, small_document, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(small_document, path)
        assert json.loads(path.read_text()) == small_document


class TestCompareDocuments:
    def test_identical_documents_pass(self, small_document):
        comparisons = compare_documents(small_document, small_document)
        assert not any(entry.regressed for entry in comparisons)

    def test_missing_metric_is_a_regression(self, small_document):
        current = json.loads(json.dumps(small_document))
        dropped = next(iter(current["metrics"]))
        del current["metrics"][dropped]
        comparisons = compare_documents(small_document, current)
        missing = [c for c in comparisons if c.name == dropped]
        assert missing[0].regressed
        assert missing[0].current is None

    def test_extra_metric_is_reported_not_failed(self, small_document):
        current = json.loads(json.dumps(small_document))
        current["metrics"]["brand/new"] = {"kind": "count", "value": 1}
        comparisons = compare_documents(small_document, current)
        extra = [c for c in comparisons if c.name == "brand/new"]
        assert extra and not extra[0].regressed

    def test_improvement_never_fails(self, small_document):
        current = json.loads(json.dumps(small_document))
        for entry in current["metrics"].values():
            entry["value"] *= 0.1
        comparisons = compare_documents(small_document, current)
        assert not any(entry.regressed for entry in comparisons)

    def test_count_regression_beyond_tolerance_fails(self, small_document):
        current = json.loads(json.dumps(small_document))
        name = "t_erank_prune/uu/n=4000/k=10/tuples_accessed"
        current["metrics"][name]["value"] *= 2
        comparisons = compare_documents(small_document, current)
        assert any(
            entry.name == name and entry.regressed
            for entry in comparisons
        )


class TestCompareCli:
    def _write(self, tmp_path, name, document):
        path = tmp_path / name
        path.write_text(json.dumps(document))
        return path

    def test_exit_zero_on_unchanged_tree(self, tmp_path, capsys):
        """Two consecutive runs of the same tree stay within tolerance."""
        reference = run_suite(
            scale=TEST_SCALE, repeats=3, names=TIMED_CASES
        )
        fresh = run_suite(scale=TEST_SCALE, repeats=3, names=TIMED_CASES)
        baseline_path = self._write(tmp_path, "base.json", reference)
        fresh_path = self._write(tmp_path, "fresh.json", fresh)
        # Generous CI-style tolerance: identical code must pass.
        code = compare_main(
            [str(baseline_path), str(fresh_path), "--time-tolerance", "4"]
        )
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_exit_nonzero_when_kernel_slowed(
        self, tmp_path, capsys, monkeypatch
    ):
        """An artificially slowed kernel trips the gate."""
        reference = run_suite(
            scale=TEST_SCALE, repeats=1, names=TIMED_CASES
        )
        baseline_path = self._write(tmp_path, "base.json", reference)

        import time

        from repro.core import tuple_expected_rank as kernel_module

        real_kernel = kernel_module.tuple_expected_ranks

        def slowed(relation, **kwargs):
            time.sleep(0.05)  # huge next to the ~1ms tiny-scale pass
            return real_kernel(relation, **kwargs)

        monkeypatch.setattr(
            baseline_module, "tuple_expected_ranks", slowed
        )
        fresh = run_suite(scale=TEST_SCALE, repeats=1, names=TIMED_CASES)
        fresh_path = self._write(tmp_path, "fresh.json", fresh)
        code = compare_main(
            [str(baseline_path), str(fresh_path), "--time-tolerance", "4"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESS" in out
        assert "t_erank/uu/n=4000/seconds" in out

    def test_unreadable_input_is_usage_error(self, tmp_path, capsys):
        good = self._write(
            tmp_path, "base.json", {"metrics": {}}
        )
        code = compare_main([str(good), str(tmp_path / "missing.json")])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestHistory:
    DOCUMENT = {
        "suite": "repro-perf-smoke",
        "metrics": {
            "kernel/seconds": {"kind": "seconds", "value": 0.5},
            "prune/tuples_accessed": {"kind": "count", "value": 40},
        },
    }

    def test_append_writes_flat_jsonl_entry(self, tmp_path):
        path = tmp_path / "history.jsonl"
        written = append_history(
            path, self.DOCUMENT, commit="abc1234", timestamp=100.0
        )
        entry = json.loads(path.read_text().splitlines()[0])
        assert entry == written
        assert entry["commit"] == "abc1234"
        assert entry["timestamp"] == 100.0
        assert entry["suite"] == "repro-perf-smoke"
        assert entry["metrics"]["kernel/seconds"] == 0.5
        assert entry["metrics"]["prune/tuples_accessed"] == 40.0

    def test_append_creates_parent_directories(self, tmp_path):
        path = tmp_path / "nested" / "deep" / "history.jsonl"
        append_history(path, self.DOCUMENT, commit="x")
        assert path.exists()

    def test_last_entry_skips_corrupt_lines(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(path, self.DOCUMENT, commit="first")
        with path.open("a") as handle:
            handle.write("{truncated\n")
        assert last_history_entry(path)["commit"] == "first"

    def test_last_entry_none_when_missing(self, tmp_path):
        assert last_history_entry(tmp_path / "ghost.jsonl") is None

    def test_default_commit_is_resolved_or_unknown(self, tmp_path):
        entry = append_history(
            tmp_path / "history.jsonl", self.DOCUMENT
        )
        assert isinstance(entry["commit"], str) and entry["commit"]

    def test_cli_appends_and_prints_deltas(self, tmp_path, capsys):
        document = json.loads(json.dumps(self.DOCUMENT))
        base = tmp_path / "base.json"
        base.write_text(json.dumps(document))
        history = tmp_path / "history.jsonl"
        # First gated run: entry written, no previous to diff against.
        code = compare_main(
            [
                str(base),
                str(base),
                "--history",
                str(history),
                "--commit",
                "run1",
            ]
        )
        assert code == 0
        first_output = capsys.readouterr().out
        assert "history:" not in first_output
        # Second run with a faster kernel: deltas versus run1.
        document["metrics"]["kernel/seconds"]["value"] = 0.25
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps(document))
        code = compare_main(
            [
                str(base),
                str(fresh),
                "--history",
                str(history),
                "--commit",
                "run2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "history: vs run1" in output
        assert "kernel/seconds: 0.5 -> 0.25 (-50.0%)" in output
        entries = [
            json.loads(line)
            for line in history.read_text().splitlines()
        ]
        assert [entry["commit"] for entry in entries] == [
            "run1", "run2",
        ]

    def test_failing_gate_still_records_history(self, tmp_path, capsys):
        document = json.loads(json.dumps(self.DOCUMENT))
        base = tmp_path / "base.json"
        base.write_text(json.dumps(document))
        document["metrics"]["prune/tuples_accessed"]["value"] = 400
        fresh = tmp_path / "fresh.json"
        fresh.write_text(json.dumps(document))
        history = tmp_path / "history.jsonl"
        code = compare_main(
            [str(base), str(fresh), "--history", str(history)]
        )
        assert code == 1
        assert history.exists()

    def test_history_io_failure_warns_but_gate_passes(
        self, tmp_path, capsys
    ):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(self.DOCUMENT))
        # A directory where the history file should be: append fails.
        blocked = tmp_path / "history.jsonl"
        blocked.mkdir()
        code = compare_main(
            [str(base), str(base), "--history", str(blocked)]
        )
        assert code == 0
        assert "warning" in capsys.readouterr().err
