"""Stateful property-based testing of the maintained tuple store.

A hypothesis rule-based state machine drives random interleavings of
inserts, deletes, and updates against :class:`MaintainedTupleStore`,
with a plain-dictionary model as the oracle.  Invariants checked after
every step: the maintained ``E[|W|]`` equals the model's sum, the
score order matches a from-scratch sort, and snapshots rank exactly
like a freshly-built relation.
"""

from __future__ import annotations

import math

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.core import tuple_expected_ranks
from repro.engine import MaintainedTupleStore

SCORES = st.floats(min_value=1.0, max_value=1000.0, allow_nan=False)
PROBABILITIES = st.floats(
    min_value=0.01, max_value=1.0, allow_nan=False
)


class StoreMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.store = MaintainedTupleStore()
        self.model: dict[str, tuple[float, float]] = {}
        self.counter = 0

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------
    @rule(score=SCORES, probability=PROBABILITIES)
    def insert(self, score, probability):
        tid = f"t{self.counter}"
        self.counter += 1
        self.store.insert(tid, score=score, probability=probability)
        self.model[tid] = (score, probability)

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete(self, data):
        tid = data.draw(st.sampled_from(sorted(self.model)))
        self.store.delete(tid)
        del self.model[tid]

    @precondition(lambda self: self.model)
    @rule(data=st.data(), probability=PROBABILITIES)
    def update_probability(self, data, probability):
        tid = data.draw(st.sampled_from(sorted(self.model)))
        self.store.update_probability(tid, probability)
        score, _ = self.model[tid]
        self.model[tid] = (score, probability)

    @precondition(lambda self: self.model)
    @rule(data=st.data(), score=SCORES)
    def update_score(self, data, score):
        tid = data.draw(st.sampled_from(sorted(self.model)))
        self.store.update_score(tid, score)
        _, probability = self.model[tid]
        self.model[tid] = (score, probability)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    @invariant()
    def expected_world_size_matches_model(self):
        expected = math.fsum(
            probability for _, probability in self.model.values()
        )
        assert abs(
            self.store.expected_world_size() - expected
        ) < 1e-6

    @invariant()
    def internal_audit_passes(self):
        self.store.validate()

    @invariant()
    def score_order_is_sorted(self):
        order = self.store.score_order()
        scores = [self.model[tid][0] for tid in order]
        assert scores == sorted(scores, reverse=True)

    @invariant()
    def snapshot_ranks_like_fresh_relation(self):
        if not self.model:
            return
        snapshot = self.store.snapshot()
        direct = tuple_expected_ranks(snapshot)
        queried = self.store.topk(min(2, len(snapshot)))
        for item in queried:
            assert abs(item.statistic - direct[item.tid]) < 1e-9


StoreMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestMaintainedStoreStateMachine = StoreMachine.TestCase
