"""Tests for the GF engine's mass-conservation guard.

The columnar generating-function sweep must conserve probability mass
per tuple (|sum pmf - 1| <= MASS_TOLERANCE).  When it does not — a
numerically distressed instance — the kernels must detect it, fall
back to the legacy dynamic program, count ``kernel.gf_fallback``, and
flag the result's metadata so the capture log records the fallback.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import attr_mq_rank, tuple_mq_rank
from repro.core.columnar import MASS_TOLERANCE, mass_violation
from repro.obs import MetricsRegistry, set_registry


@pytest.fixture
def registry():
    fresh = MetricsRegistry(enabled=True)
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


def corrupt(matrix: np.ndarray) -> np.ndarray:
    """Leak mass from the first tuple's pmf, beyond the tolerance."""
    damaged = np.array(matrix, copy=True)
    damaged[0] *= 1.0 - 1e-3
    return damaged


class TestMassViolation:
    def test_clean_matrix_passes(self):
        matrix = np.array([[0.25, 0.75], [1.0, 0.0]])
        assert mass_violation(matrix) is None

    def test_empty_matrix_passes(self):
        assert mass_violation(np.zeros((0, 3))) is None

    def test_deviation_is_reported(self):
        matrix = np.array([[0.5, 0.5 - 2e-6]])
        deviation = mass_violation(matrix)
        assert deviation == pytest.approx(2e-6)

    def test_tolerance_boundary(self):
        matrix = np.array([[1.0 - MASS_TOLERANCE / 2.0]])
        assert mass_violation(matrix) is None


class TestAttributeFallback:
    def test_distressed_sweep_falls_back_to_dp(
        self, fig2, registry, monkeypatch
    ):
        honest = attr_mq_rank.attribute_rank_pmf_matrix
        monkeypatch.setattr(
            attr_mq_rank,
            "attribute_rank_pmf_matrix",
            lambda relation, **kw: corrupt(honest(relation, **kw)),
        )
        result = attr_mq_rank.a_mqrank(fig2, 2)
        assert result.metadata["gf_fallback"] is True
        # The DP answer is the reference answer.
        reference = attr_mq_rank.a_mqrank(fig2, 2)
        monkeypatch.undo()
        clean = attr_mq_rank.a_mqrank(fig2, 2)
        assert result.tids() == clean.tids()
        assert reference.statistics == clean.statistics
        counters = registry.snapshot()["counters"]
        assert counters["kernel.gf_fallback"] == 2

    def test_distributions_fall_back_and_stay_exact(
        self, fig2, registry, monkeypatch
    ):
        honest = attr_mq_rank.attribute_rank_pmf_matrix
        monkeypatch.setattr(
            attr_mq_rank,
            "attribute_rank_pmf_matrix",
            lambda relation, **kw: corrupt(honest(relation, **kw)),
        )
        guarded = attr_mq_rank.attribute_rank_distributions(fig2)
        reference = attr_mq_rank.attribute_rank_distributions_dp(fig2)
        for tid, dist in reference.items():
            np.testing.assert_allclose(
                guarded[tid].pmf, dist.pmf, atol=1e-12
            )
        counters = registry.snapshot()["counters"]
        assert counters["kernel.gf_fallback"] == 1

    def test_clean_sweep_never_counts_a_fallback(self, fig2, registry):
        result = attr_mq_rank.a_mqrank(fig2, 2)
        assert result.metadata["gf_fallback"] is False
        counters = registry.snapshot()["counters"]
        assert "kernel.gf_fallback" not in counters


class TestTupleFallback:
    def test_distressed_sweep_falls_back_to_dp(
        self, fig4, registry, monkeypatch
    ):
        honest = tuple_mq_rank.tuple_rank_pmf_matrix
        monkeypatch.setattr(
            tuple_mq_rank,
            "tuple_rank_pmf_matrix",
            lambda relation, **kw: corrupt(honest(relation, **kw)),
        )
        result = tuple_mq_rank.t_mqrank(fig4, 2)
        assert result.metadata["gf_fallback"] is True
        monkeypatch.undo()
        clean = tuple_mq_rank.t_mqrank(fig4, 2)
        assert result.tids() == clean.tids()
        assert result.statistics == clean.statistics
        counters = registry.snapshot()["counters"]
        assert counters["kernel.gf_fallback"] == 1

    def test_distributions_fall_back_and_stay_exact(
        self, fig4, monkeypatch
    ):
        honest = tuple_mq_rank.tuple_rank_pmf_matrix
        monkeypatch.setattr(
            tuple_mq_rank,
            "tuple_rank_pmf_matrix",
            lambda relation, **kw: corrupt(honest(relation, **kw)),
        )
        guarded = tuple_mq_rank.tuple_rank_distributions(fig4)
        reference = tuple_mq_rank.tuple_rank_distributions_dp(fig4)
        for tid, dist in reference.items():
            np.testing.assert_allclose(
                guarded[tid].pmf, dist.pmf, atol=1e-12
            )


class TestCaptureAnnotation:
    def test_capture_record_carries_the_fallback_flag(
        self, fig2, tmp_path, monkeypatch
    ):
        import json

        from repro.obs.capture import CaptureLog, set_capture

        honest = attr_mq_rank.attribute_rank_pmf_matrix
        monkeypatch.setattr(
            attr_mq_rank,
            "attribute_rank_pmf_matrix",
            lambda relation, **kw: corrupt(honest(relation, **kw)),
        )
        path = tmp_path / "capture.jsonl"
        log = CaptureLog(path)
        previous = set_capture(log)
        try:
            result = attr_mq_rank.a_mqrank(fig2, 2)
            log.record_query(
                fig2, result, k=2, method="median_rank", options={}
            )
        finally:
            set_capture(previous)
            log.close()
        record = json.loads(path.read_text().splitlines()[0])
        assert record["gf_fallback"] is True
