"""Unit tests for the tie-aware beat probabilities."""

from __future__ import annotations

import pytest

from repro.core.beats import beat_probability, value_beat_probability
from repro.models import DiscretePDF


class TestValueBeatProbability:
    def test_strictly_greater_under_shared_ties(self):
        challenger = DiscretePDF([1, 5, 9], [0.2, 0.3, 0.5])
        assert value_beat_probability(
            challenger, 5, challenger_is_earlier=True, ties="shared"
        ) == pytest.approx(0.5)

    def test_by_index_earlier_counts_equality(self):
        challenger = DiscretePDF([1, 5, 9], [0.2, 0.3, 0.5])
        assert value_beat_probability(
            challenger, 5, challenger_is_earlier=True, ties="by_index"
        ) == pytest.approx(0.8)

    def test_by_index_later_does_not_count_equality(self):
        challenger = DiscretePDF([1, 5, 9], [0.2, 0.3, 0.5])
        assert value_beat_probability(
            challenger,
            5,
            challenger_is_earlier=False,
            ties="by_index",
        ) == pytest.approx(0.5)

    def test_bad_tie_rule(self):
        with pytest.raises(ValueError):
            value_beat_probability(
                DiscretePDF.point(1),
                1,
                challenger_is_earlier=True,
                ties="sometimes",  # type: ignore[arg-type]
            )


class TestBeatProbability:
    def test_independent_pair(self):
        first = DiscretePDF([1, 3], [0.5, 0.5])
        second = DiscretePDF([2], [1.0])
        assert beat_probability(
            first, second, challenger_is_earlier=True
        ) == pytest.approx(0.5)
        assert beat_probability(
            second, first, challenger_is_earlier=True
        ) == pytest.approx(0.5)

    def test_complementarity_without_ties(self):
        """Pr[A beats B] + Pr[B beats A] = 1 when ties are impossible."""
        first = DiscretePDF([1, 3], [0.4, 0.6])
        second = DiscretePDF([2, 4], [0.7, 0.3])
        forward = beat_probability(
            first, second, challenger_is_earlier=True
        )
        backward = beat_probability(
            second, first, challenger_is_earlier=False
        )
        assert forward + backward == pytest.approx(1.0)

    def test_complementarity_with_ties_by_index(self):
        """Under the index rule exactly one of a pair beats the other
        in every world, so the probabilities always sum to one."""
        first = DiscretePDF([1, 2], [0.5, 0.5])
        second = DiscretePDF([2, 3], [0.5, 0.5])
        forward = beat_probability(
            first, second, challenger_is_earlier=True, ties="by_index"
        )
        backward = beat_probability(
            second, first, challenger_is_earlier=False, ties="by_index"
        )
        assert forward + backward == pytest.approx(1.0)

    def test_shared_ties_leave_a_gap(self):
        """Under Definition 6 a tie beats neither way, so the pair
        probabilities sum to 1 - Pr[tie]."""
        first = DiscretePDF([1, 2], [0.5, 0.5])
        second = DiscretePDF([2, 3], [0.5, 0.5])
        forward = beat_probability(
            first, second, challenger_is_earlier=True, ties="shared"
        )
        backward = beat_probability(
            second, first, challenger_is_earlier=False, ties="shared"
        )
        tie_probability = 0.5 * 0.5  # both at 2
        assert forward + backward == pytest.approx(
            1.0 - tie_probability
        )

    def test_self_comparison_shared(self):
        pdf = DiscretePDF([1, 2], [0.5, 0.5])
        # Independent copies: Pr[X > Y] for iid two-point = 0.25.
        assert beat_probability(
            pdf, pdf, challenger_is_earlier=True
        ) == pytest.approx(0.25)
