"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import load_relation, main
from repro.engine.io import save_attribute_csv, save_json, save_tuple_csv
from repro.exceptions import SchemaError
from repro.models import TupleLevelRelation


@pytest.fixture
def attribute_csv(fig2, tmp_path):
    path = tmp_path / "attr.csv"
    save_attribute_csv(fig2, path)
    return path


@pytest.fixture
def tuple_csv(fig4, tmp_path):
    path = tmp_path / "tup.csv"
    save_tuple_csv(fig4, path)
    return path


class TestLoadRelation:
    def test_sniffs_attribute_csv(self, attribute_csv):
        relation = load_relation(attribute_csv)
        assert relation.size == 3

    def test_sniffs_tuple_csv(self, tuple_csv):
        relation = load_relation(tuple_csv)
        assert isinstance(relation, TupleLevelRelation)
        assert relation.rule_of("t2").tids == ("t2", "t4")

    def test_loads_json(self, fig2, tmp_path):
        path = tmp_path / "rel.json"
        save_json(fig2, path)
        assert load_relation(path).size == 3

    def test_rejects_unknown_header(self, tmp_path):
        path = tmp_path / "odd.csv"
        path.write_text("alpha,beta\n1,2\n")
        with pytest.raises(SchemaError):
            load_relation(path)


class TestTopkCommand:
    def test_expected_rank_output(self, attribute_csv, capsys):
        code = main(["topk", str(attribute_csv), "-k", "3"])
        output = capsys.readouterr().out
        assert code == 0
        assert "expected_rank top-3" in output
        assert output.splitlines()[-3].startswith("1\tt2")

    def test_pt_k_requires_threshold_flag(self, tuple_csv, capsys):
        code = main(
            [
                "topk",
                str(tuple_csv),
                "-k",
                "2",
                "--method",
                "pt_k",
                "--threshold",
                "0.4",
            ]
        )
        assert code == 0
        assert "pt_k" in capsys.readouterr().out

    def test_quantile_phi_flag(self, tuple_csv, capsys):
        code = main(
            [
                "topk",
                str(tuple_csv),
                "--method",
                "quantile_rank",
                "--phi",
                "0.75",
            ]
        )
        assert code == 0
        assert "quantile_rank[0.75]" in capsys.readouterr().out

    def test_error_reported_not_raised(self, attribute_csv, capsys):
        code = main(
            [
                "topk",
                str(attribute_csv),
                "--method",
                "probability_only",
            ]
        )
        # UnsupportedModelError is a RankingError: family exit code 5.
        assert code == 5
        assert "error:" in capsys.readouterr().err

    def test_missing_file(self, tmp_path, capsys):
        code = main(["topk", str(tmp_path / "ghost.csv")])
        # OSError family (missing file): exit code 10.
        assert code == 10
        assert "error:" in capsys.readouterr().err

    def test_json_output(self, attribute_csv, capsys):
        import json

        code = main(["topk", str(attribute_csv), "-k", "2", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["method"] == "expected_rank"
        assert [item["tid"] for item in payload["items"]] == [
            "t2",
            "t3",
        ]
        assert payload["metadata"]["exact"] is True


class TestDescribeCommand:
    def test_attribute(self, attribute_csv, capsys):
        assert main(["describe", str(attribute_csv)]) == 0
        output = capsys.readouterr().out
        assert "attribute-level" in output
        assert "possible worlds: 4" in output

    def test_tuple(self, tuple_csv, capsys):
        assert main(["describe", str(tuple_csv)]) == 0
        output = capsys.readouterr().out
        assert "x-relation" in output
        assert "expected world size: 2.4" in output


class TestDistributionCommand:
    def test_attribute(self, attribute_csv, capsys):
        assert main(["distribution", str(attribute_csv), "t1"]) == 0
        output = capsys.readouterr().out
        assert "Pr[rank = 0] = 0.4" in output
        assert "median rank: 2" in output

    def test_tuple(self, tuple_csv, capsys):
        assert main(["distribution", str(tuple_csv), "t4"]) == 0
        output = capsys.readouterr().out
        assert "Pr[rank = 2] = 0.5" in output

    def test_unknown_tid(self, tuple_csv, capsys):
        # ModelError family: exit code 4.
        assert main(["distribution", str(tuple_csv), "zzz"]) == 4


class TestExplainCommand:
    def test_explains_valid_pair(self, tuple_csv, capsys):
        code = main(["explain", str(tuple_csv), "t3", "t4"])
        assert code == 0
        output = capsys.readouterr().out
        assert "outranks" in output and "gap" in output

    def test_wrong_direction_reports_error(self, tuple_csv, capsys):
        code = main(["explain", str(tuple_csv), "t4", "t3"])
        assert code == 5
        assert "swap" in capsys.readouterr().err

    def test_unknown_tuple(self, tuple_csv, capsys):
        assert main(["explain", str(tuple_csv), "t3", "zzz"]) == 4

    def test_single_tuple_id_is_usage_error(self, tuple_csv, capsys):
        code = main(["explain", str(tuple_csv), "t3"])
        assert code == 2
        assert "two tuple ids" in capsys.readouterr().err

    def test_query_mode_prints_report(self, tuple_csv, capsys):
        code = main(["explain", str(tuple_csv), "-k", "2"])
        assert code == 0
        output = capsys.readouterr().out
        assert "EXPLAIN" in output
        assert "trace_id=" in output
        assert "plan" in output

    def test_query_mode_json_satisfies_schema(self, tuple_csv, capsys):
        from repro.obs import validate_report

        code = main(["explain", str(tuple_csv), "-k", "2", "--json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        validate_report(report)
        assert report["query"]["k"] == 2
        assert report["plan"]["method"]
        assert report["execution"]["tuples_accessed"] is not None
        assert len(report["execution"]["answer"]) == 2

    def test_query_mode_dry_run(self, tuple_csv, capsys):
        code = main(
            ["explain", str(tuple_csv), "-k", "2", "--dry-run"]
        )
        assert code == 0
        assert "dry run" in capsys.readouterr().out

    def test_cheap_access_changes_the_plan(self, tuple_csv, capsys):
        main(["explain", str(tuple_csv), "-k", "2", "--json"])
        pruned = json.loads(capsys.readouterr().out)
        main(
            [
                "explain",
                str(tuple_csv),
                "-k",
                "2",
                "--json",
                "--cheap-access",
            ]
        )
        cheap = json.loads(capsys.readouterr().out)
        assert pruned["plan"]["method"] == "expected_rank_prune"
        assert cheap["plan"]["method"] == "expected_rank"

    def test_query_mode_with_resilience_flags(self, tuple_csv, capsys):
        code = main(
            [
                "explain",
                str(tuple_csv),
                "-k",
                "2",
                "--json",
                "--inject-faults",
                "0.7",
                "--fault-seed",
                "6",
                "--max-retries",
                "2",
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        # Seeded chaos: this (rate, seed) pair deterministically lets
        # the load through, exhausts the exact rung's retries, and
        # answers from a fallback rung.
        assert report["execution"]["degraded"] is True
        names = [event["name"] for event in report["events"]]
        assert "robust.degrade" in names
        assert "robust.fallback" in names


class TestChurnCommand:
    def test_profile_printed(self, tuple_csv, capsys):
        code = main(
            [
                "churn",
                str(tuple_csv),
                "-k",
                "2",
                "--noise",
                "0.05",
                "0.2",
                "--trials",
                "5",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "±5%" in output and "±20%" in output
        assert "stable core" in output

    def test_method_flag(self, tuple_csv, capsys):
        code = main(
            [
                "churn",
                str(tuple_csv),
                "-k",
                "2",
                "--noise",
                "0.1",
                "--trials",
                "3",
                "--method",
                "median_rank",
            ]
        )
        assert code == 0
        assert "median_rank" in capsys.readouterr().out


class TestAuditCommand:
    def test_audit_fixture(self, attribute_csv, capsys):
        code = main(
            [
                "audit",
                str(attribute_csv),
                "--methods",
                "expected_rank,u_topk",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "expected_rank" in output
        # U-Topk's containment violation shows as an N plus a
        # counterexample line.
        assert "u_topk / containment" in output

    def test_audit_unknown_method(self, attribute_csv, capsys):
        code = main(
            ["audit", str(attribute_csv), "--methods", "bogus"]
        )
        # UnknownMethodError → RankingError family exit code, and the
        # message must name the valid alternatives.
        assert code == 5
        err = capsys.readouterr().err
        assert "unknown ranking method 'bogus'" in err
        assert "available:" in err
        assert "expected_rank" in err

    def test_audit_includes_pt_k_with_threshold(
        self, tuple_csv, capsys
    ):
        code = main(
            [
                "audit",
                str(tuple_csv),
                "--methods",
                "pt_k",
                "--threshold",
                "0.4",
                "--max-k",
                "2",
            ]
        )
        assert code == 0
        assert "pt_k" in capsys.readouterr().out


class TestGenerateCommand:
    def test_generate_attribute_csv(self, tmp_path, capsys):
        out = tmp_path / "gen.csv"
        assert main(
            ["generate", "attribute", str(out), "-n", "25"]
        ) == 0
        relation = load_relation(out)
        assert relation.size == 25

    def test_generate_tuple_json(self, tmp_path):
        out = tmp_path / "gen.json"
        assert main(
            [
                "generate",
                "tuple",
                str(out),
                "-n",
                "30",
                "--workload",
                "cor",
                "--seed",
                "3",
            ]
        ) == 0
        relation = load_relation(out)
        assert isinstance(relation, TupleLevelRelation)
        assert relation.size == 30

    def test_bad_workload_reports_error(self, tmp_path, capsys):
        out = tmp_path / "gen.csv"
        # WorkloadError family: exit code 8.
        assert main(
            ["generate", "tuple", str(out), "--workload", "bogus"]
        ) == 8
        assert "error:" in capsys.readouterr().err

    def test_generated_file_is_rankable_via_cli(self, tmp_path, capsys):
        out = tmp_path / "gen.csv"
        main(["generate", "tuple", str(out), "-n", "40"])
        capsys.readouterr()
        assert main(["topk", str(out), "-k", "5"]) == 0
        assert "top-5" in capsys.readouterr().out


class TestMetricsOut:
    def test_topk_writes_spans_and_snapshot(
        self, attribute_csv, tmp_path, capsys
    ):
        out = tmp_path / "metrics.jsonl"
        code = main(
            [
                "--metrics-out",
                str(out),
                "topk",
                str(attribute_csv),
                "-k",
                "2",
            ]
        )
        assert code == 0
        assert "top-2" in capsys.readouterr().out
        lines = [
            json.loads(line) for line in out.read_text().splitlines()
        ]
        # Spans stream first; the registry snapshot closes the file.
        assert lines[-1]["type"] == "metrics"
        span_names = [
            line["name"] for line in lines if line["type"] == "span"
        ]
        assert "cli.topk" in span_names
        counters = lines[-1]["counters"]
        assert counters["a_erank.calls"] == 1
        # Figure 2 relation: the exact pass reads all three tuples.
        assert counters["a_erank.tuples_accessed"] == 3
        assert "a_erank.seconds" in lines[-1]["histograms"]

    def test_main_restores_ambient_observability(
        self, attribute_csv, tmp_path, capsys
    ):
        from repro.obs import get_registry, get_sink

        before_registry = get_registry()
        before_sink = get_sink()
        main(
            [
                "--metrics-out",
                str(tmp_path / "m.jsonl"),
                "topk",
                str(attribute_csv),
                "-k",
                "1",
            ]
        )
        capsys.readouterr()
        assert get_registry() is before_registry
        assert get_sink() is before_sink

    def test_without_flag_no_file_and_registry_untouched(
        self, attribute_csv, tmp_path, capsys
    ):
        from repro.obs import get_registry

        main(["topk", str(attribute_csv), "-k", "1"])
        capsys.readouterr()
        assert not list(tmp_path.glob("*.jsonl"))
        assert not get_registry().snapshot()["counters"]


class TestMetricsFormat:
    def test_prom_output_parses_back(
        self, attribute_csv, tmp_path, capsys
    ):
        from repro.obs import parse_prometheus

        out = tmp_path / "metrics.prom"
        code = main(
            [
                "--metrics-out",
                str(out),
                "--metrics-format",
                "prom",
                "topk",
                str(attribute_csv),
                "-k",
                "2",
            ]
        )
        assert code == 0
        capsys.readouterr()
        families = parse_prometheus(out.read_text())
        assert "repro_a_erank_calls_total" in families
        assert "repro_a_erank_seconds" in families
        assert families["repro_a_erank_seconds"]["type"] == "histogram"

    def test_prom_without_metrics_out_is_usage_error(
        self, attribute_csv, capsys
    ):
        code = main(
            [
                "--metrics-format",
                "prom",
                "topk",
                str(attribute_csv),
                "-k",
                "1",
            ]
        )
        assert code == 2
        assert "--metrics-out" in capsys.readouterr().err

    def test_json_stays_the_default_stream(
        self, attribute_csv, tmp_path, capsys
    ):
        out = tmp_path / "metrics.jsonl"
        main(
            [
                "--metrics-out",
                str(out),
                "topk",
                str(attribute_csv),
                "-k",
                "1",
            ]
        )
        capsys.readouterr()
        lines = [
            json.loads(line) for line in out.read_text().splitlines()
        ]
        assert lines[-1]["type"] == "metrics"

    def test_prom_restores_ambient_registry(
        self, attribute_csv, tmp_path, capsys
    ):
        from repro.obs import get_registry

        before = get_registry()
        main(
            [
                "--metrics-out",
                str(tmp_path / "m.prom"),
                "--metrics-format",
                "prom",
                "topk",
                str(attribute_csv),
                "-k",
                "1",
            ]
        )
        capsys.readouterr()
        assert get_registry() is before


class TestVersionFlag:
    def test_version_prints_package_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        output = capsys.readouterr().out
        assert output.startswith("repro ")
        assert repro.__version__ in output


class TestLintCommand:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("VALUE = 1\n")
        assert main(["lint", str(target)]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("import random\nrandom.random()\n")
        assert main(["lint", str(target)]) == 1
        output = capsys.readouterr().out
        assert "RPR001" in output

    def test_repo_is_clean_under_baseline(self, capsys):
        code = main(
            ["lint", "src", "--baseline", "analysis_baseline.json"]
        )
        assert code == 0
        capsys.readouterr()

    def test_internal_error_exits_thirteen(
        self, tmp_path, capsys, monkeypatch
    ):
        import repro.analysis.cli as analysis_cli

        def boom(*args, **kwargs):
            raise RuntimeError("rule crashed")

        monkeypatch.setattr(analysis_cli, "analyze_paths", boom)
        target = tmp_path / "any.py"
        target.write_text("VALUE = 1\n")
        assert main(["lint", str(target)]) == 13
        assert "internal analyzer error" in capsys.readouterr().err

    def test_list_rules_catalogue(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        output = capsys.readouterr().out
        for code in (
            "RPR001",
            "RPR002",
            "RPR003",
            "RPR004",
            "RPR005",
            "RPR006",
            "RPR007",
            "RPR008",
        ):
            assert code in output


class TestCalibrateCommand:
    def history_file(self, tmp_path, kernel="a_erank"):
        import math

        n = 2000
        path = tmp_path / "history.jsonl"
        path.write_text(
            json.dumps(
                {
                    "commit": "abc1234",
                    "suite": "smoke",
                    "metrics": {
                        f"{kernel}/uu/n={n}/seconds": (
                            n * math.log2(n) * 1e-6
                        )
                    },
                }
            )
            + "\n"
        )
        return path

    def test_requires_a_source(self, capsys):
        assert main(["calibrate"]) == 2
        assert "--history or" in capsys.readouterr().err

    def test_fits_and_writes_a_versioned_model(
        self, tmp_path, capsys
    ):
        out = tmp_path / "model.json"
        code = main(
            [
                "calibrate",
                "--history",
                str(self.history_file(tmp_path)),
                "--out",
                str(out),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "cost model v1" in captured.out
        assert "a_erank: seconds_per_unit=" in captured.out
        document = json.loads(out.read_text())
        assert document["kind"] == "repro-cost-model"
        assert document["schema"] == 1
        assert "a_erank" in document["kernels"]

    def test_json_output_is_the_document(self, tmp_path, capsys):
        code = main(
            [
                "calibrate",
                "--history",
                str(self.history_file(tmp_path)),
                "--json",
            ]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["kind"] == "repro-cost-model"

    def test_no_calibratable_samples_exits_one(
        self, tmp_path, capsys
    ):
        code = main(
            [
                "calibrate",
                "--history",
                str(
                    self.history_file(
                        tmp_path, kernel="mystery_kernel"
                    )
                ),
            ]
        )
        assert code == 1
        assert "no calibratable samples" in capsys.readouterr().err


class TestCostModelFlag:
    def model_file(self, tmp_path):
        from repro.obs.costmodel import CostModel

        path = tmp_path / "model.json"
        CostModel(
            {
                "a_erank": {"seconds_per_unit": 1e-6},
                "a_erank_prune": {"prefix_ratio": 1.0},
            }
        ).save(path)
        return path

    def test_topk_prints_the_prediction(
        self, attribute_csv, tmp_path, capsys
    ):
        code = main(
            [
                "topk",
                str(attribute_csv),
                "-k",
                "2",
                "--cost-model",
                str(self.model_file(tmp_path)),
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "predicted: " in output
        assert "via a_erank" in output

    def test_explain_reports_candidates_and_actuals(
        self, attribute_csv, tmp_path, capsys
    ):
        code = main(
            [
                "explain",
                str(attribute_csv),
                "-k",
                "2",
                "--cost-model",
                str(self.model_file(tmp_path)),
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "candidate" in output
        assert "predicted" in output
        assert "vs actual" in output

    def test_invalid_model_file_is_a_schema_error(
        self, attribute_csv, tmp_path, capsys
    ):
        bad = tmp_path / "bad.json"
        bad.write_text('{"kind": "something-else", "schema": 1}')
        code = main(
            [
                "topk",
                str(attribute_csv),
                "-k",
                "2",
                "--cost-model",
                str(bad),
            ]
        )
        assert code != 0
        assert "error:" in capsys.readouterr().err


class TestProfileCommand:
    def test_requires_out_or_json(self, attribute_csv, capsys):
        code = main(["profile", str(attribute_csv), "-k", "2"])
        assert code == 2
        assert "--out PATH or --json" in capsys.readouterr().err

    def test_rejects_non_positive_seconds(
        self, attribute_csv, tmp_path, capsys
    ):
        code = main(
            [
                "profile",
                str(attribute_csv),
                "-k",
                "2",
                "--seconds",
                "0",
                "--out",
                str(tmp_path / "p.json"),
            ]
        )
        assert code == 2
        assert "--seconds" in capsys.readouterr().err

    def test_writes_a_valid_speedscope_dump(
        self, attribute_csv, tmp_path, capsys
    ):
        from repro.obs.profiler import validate_speedscope

        out = tmp_path / "profile.speedscope.json"
        code = main(
            [
                "profile",
                str(attribute_csv),
                "-k",
                "2",
                "--seconds",
                "0.2",
                "--out",
                str(out),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "profiled" in captured.err
        validate_speedscope(json.loads(out.read_text()))

    def test_topk_profile_out_rides_along(
        self, attribute_csv, tmp_path, capsys
    ):
        from repro.obs.profiler import validate_speedscope

        out = tmp_path / "topk.speedscope.json"
        code = main(
            [
                "topk",
                str(attribute_csv),
                "-k",
                "2",
                "--profile-out",
                str(out),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "profile:" in captured.err
        validate_speedscope(json.loads(out.read_text()))


class TestBenchTrendCommand:
    def history_file(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text(
            "\n".join(
                json.dumps(
                    {
                        "commit": commit,
                        "suite": "smoke",
                        "metrics": {
                            "a_erank/uu/n=2000/seconds": value
                        },
                    }
                )
                for commit, value in (
                    ("aaa1234", 1.0),
                    ("bbb5678", 1.5),
                )
            )
            + "\n"
        )
        return path

    def test_renders_the_delta_table(self, tmp_path, capsys):
        code = main(
            [
                "bench",
                "trend",
                "--history",
                str(self.history_file(tmp_path)),
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "a_erank/uu/n=2000/seconds" in output
        assert "+50.0%" in output
        assert output.rstrip().endswith("1 metrics over 2 runs")

    def test_json_output(self, tmp_path, capsys):
        code = main(
            [
                "bench",
                "trend",
                "--history",
                str(self.history_file(tmp_path)),
                "--json",
            ]
        )
        assert code == 0
        table = json.loads(capsys.readouterr().out)
        assert table["commits"] == ["aaa1234", "bbb5678"]

    def test_metric_glob_filters(self, tmp_path, capsys):
        code = main(
            [
                "bench",
                "trend",
                "--history",
                str(self.history_file(tmp_path)),
                "--filter",
                "*/tuples_accessed",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "0 metrics over 2 runs" in output
