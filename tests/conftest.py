"""Shared fixtures: the paper's worked examples and random instances."""

from __future__ import annotations

import pytest

from repro.models import (
    AttributeLevelRelation,
    AttributeTuple,
    DiscretePDF,
    ExclusionRule,
    TupleLevelRelation,
    TupleLevelTuple,
)


@pytest.fixture
def fig2() -> AttributeLevelRelation:
    """The attribute-level example of the paper's Figure 2."""
    return AttributeLevelRelation(
        [
            AttributeTuple("t1", DiscretePDF([100, 70], [0.4, 0.6])),
            AttributeTuple("t2", DiscretePDF([92, 80], [0.6, 0.4])),
            AttributeTuple("t3", DiscretePDF([85], [1.0])),
        ]
    )


@pytest.fixture
def fig4() -> TupleLevelRelation:
    """The tuple-level example of the paper's Figure 4.

    Probabilities are recovered from the listed world probabilities:
    p(t1) = 0.4, p(t2) = 0.5, p(t3) = 1.0, p(t4) = 0.5, with the rule
    tau2 = {t2, t4}.
    """
    return TupleLevelRelation(
        [
            TupleLevelTuple("t1", 100, 0.4),
            TupleLevelTuple("t2", 92, 0.5),
            TupleLevelTuple("t3", 85, 1.0),
            TupleLevelTuple("t4", 80, 0.5),
        ],
        rules=[ExclusionRule("tau2", ["t2", "t4"])],
    )


@pytest.fixture
def certain_attribute() -> AttributeLevelRelation:
    """A deterministic relation lifted into the attribute-level model."""
    return AttributeLevelRelation(
        [
            AttributeTuple("a", DiscretePDF.point(30.0)),
            AttributeTuple("b", DiscretePDF.point(20.0)),
            AttributeTuple("c", DiscretePDF.point(10.0)),
        ]
    )


@pytest.fixture
def certain_tuple() -> TupleLevelRelation:
    """A deterministic relation lifted into the tuple-level model."""
    return TupleLevelRelation(
        [
            TupleLevelTuple("a", 30.0, 1.0),
            TupleLevelTuple("b", 20.0, 1.0),
            TupleLevelTuple("c", 10.0, 1.0),
        ]
    )
