"""Shared fixtures: the paper's worked examples and random instances.

Also provides a minimal stand-in for the ``timeout`` marker when the
``pytest-timeout`` plugin is not installed: chaos tests cap their
wall-clock via ``@pytest.mark.timeout(seconds)`` so a hung retry loop
fails fast instead of wedging the suite, and the SIGALRM fallback keeps
that guarantee in environments without the plugin.
"""

from __future__ import annotations

import importlib.util
import math
import signal

import pytest

from repro.models import (
    AttributeLevelRelation,
    AttributeTuple,
    DiscretePDF,
    ExclusionRule,
    TupleLevelRelation,
    TupleLevelTuple,
)


_HAS_TIMEOUT_PLUGIN = (
    importlib.util.find_spec("pytest_timeout") is not None
)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """SIGALRM fallback for ``@pytest.mark.timeout`` without the plugin.

    When pytest-timeout is installed (as in CI) it owns the marker and
    this wrapper stays out of the way; locally the alarm gives the same
    hung-test protection, minus the fancy reporting.
    """
    marker = item.get_closest_marker("timeout")
    if (
        _HAS_TIMEOUT_PLUGIN
        or marker is None
        or not hasattr(signal, "SIGALRM")
    ):
        yield
        return
    seconds = marker.args[0] if marker.args else marker.kwargs["timeout"]
    seconds = max(1, math.ceil(seconds))

    def _expired(signum, frame):
        pytest.fail(
            f"test exceeded {seconds}s timeout (SIGALRM fallback)"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def fig2() -> AttributeLevelRelation:
    """The attribute-level example of the paper's Figure 2."""
    return AttributeLevelRelation(
        [
            AttributeTuple("t1", DiscretePDF([100, 70], [0.4, 0.6])),
            AttributeTuple("t2", DiscretePDF([92, 80], [0.6, 0.4])),
            AttributeTuple("t3", DiscretePDF([85], [1.0])),
        ]
    )


@pytest.fixture
def fig4() -> TupleLevelRelation:
    """The tuple-level example of the paper's Figure 4.

    Probabilities are recovered from the listed world probabilities:
    p(t1) = 0.4, p(t2) = 0.5, p(t3) = 1.0, p(t4) = 0.5, with the rule
    tau2 = {t2, t4}.
    """
    return TupleLevelRelation(
        [
            TupleLevelTuple("t1", 100, 0.4),
            TupleLevelTuple("t2", 92, 0.5),
            TupleLevelTuple("t3", 85, 1.0),
            TupleLevelTuple("t4", 80, 0.5),
        ],
        rules=[ExclusionRule("tau2", ["t2", "t4"])],
    )


@pytest.fixture
def certain_attribute() -> AttributeLevelRelation:
    """A deterministic relation lifted into the attribute-level model."""
    return AttributeLevelRelation(
        [
            AttributeTuple("a", DiscretePDF.point(30.0)),
            AttributeTuple("b", DiscretePDF.point(20.0)),
            AttributeTuple("c", DiscretePDF.point(10.0)),
        ]
    )


@pytest.fixture
def certain_tuple() -> TupleLevelRelation:
    """A deterministic relation lifted into the tuple-level model."""
    return TupleLevelRelation(
        [
            TupleLevelTuple("a", 30.0, 1.0),
            TupleLevelTuple("b", 20.0, 1.0),
            TupleLevelTuple("c", 10.0, 1.0),
        ]
    )
