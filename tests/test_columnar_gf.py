"""Parity and property tests for the columnar GF kernel engine.

The generating-function sweeps in :mod:`repro.core.columnar` replace
the Section 7 dynamic programs on the hot path.  Everything here pins
them to the two references that must keep agreeing to ``1e-9``:

* the legacy DPs (``engine="dp"``), still the paper-faithful O(N^3)
  and O(N M^2) implementations, and
* the possible-worlds oracles in :mod:`repro.baselines.brute_force`.

Plus the polynomial kernels themselves (convolve/deconvolve round
trips, the tree product, the scipy-free fallback), the quantile
statistics behind A-MQRank/T-MQRank for several ``phi``, and a golden
capture replay guarding the answer digests across the engine swap.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.baselines import (
    brute_force_rank_distributions,
    brute_force_rank_position_probabilities,
)
from repro.bench.workloads import attribute_workload, tuple_workload
from repro.core import (
    RankDistribution,
    a_mqrank,
    attribute_rank_distributions,
    attribute_rank_distributions_dp,
    rank_position_probability_matrix,
    rank_quantiles,
    t_mqrank,
    tuple_rank_distributions,
    tuple_rank_distributions_dp,
)
from repro.core import columnar
from repro.core.columnar import (
    convolve_bernoulli,
    deconvolve_bernoulli,
    product_polynomial,
)
from repro.exceptions import RankingError
from repro.models.attribute import AttributeLevelRelation, AttributeTuple
from repro.models.pdf import DiscretePDF
from repro.models.rules import ExclusionRule
from repro.models.tuple_level import TupleLevelRelation, TupleLevelTuple

PARITY_ATOL = 1e-9
PHIS = (0.25, 0.5, 0.75)
EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def assert_distributions_match(left, right, *, atol=PARITY_ATOL):
    assert set(left) == set(right)
    for tid in left:
        assert left[tid].allclose(right[tid], atol=atol), tid


def tied_attribute_relation(count: int, seed: int = 11):
    """Integer-valued pdfs drawing from a tiny universe: many ties."""
    rng = np.random.default_rng(seed)
    rows = []
    for i in range(count):
        size = int(rng.integers(1, 4))
        values = sorted(
            rng.choice(np.arange(1.0, 7.0), size=size, replace=False)
        )
        probs = rng.dirichlet(np.ones(size))
        rows.append(
            AttributeTuple(f"t{i}", DiscretePDF(values, probs.tolist()))
        )
    return AttributeLevelRelation(rows)


def small_tuple_relation():
    """Six tuples, two multi-member rules, score ties across rules."""
    rows = [
        TupleLevelTuple("a", 9.0, 0.6),
        TupleLevelTuple("b", 8.0, 0.3),
        TupleLevelTuple("c", 8.0, 0.35),
        TupleLevelTuple("d", 6.0, 1.0),
        TupleLevelTuple("e", 5.0, 0.25),
        TupleLevelTuple("f", 4.0, 0.45),
    ]
    rules = [
        ExclusionRule("tau1", ["a", "c"]),
        ExclusionRule("tau2", ["b", "e", "f"]),
    ]
    return TupleLevelRelation(rows, rules=rules)


def near_certain_rule_relation():
    """Rule mass within 1e-9 of one: the theta ~ 1e9 division corner.

    Found by hypothesis: a rule whose complement probability is a few
    ulps amplifies any off-by-one in the deconvolution splice by
    ``p / (1 - p)``.  Kept as a fixed regression fixture.
    """
    half = (1.0 - 1e-9) / 2.0
    rows = [
        TupleLevelTuple("u", 7.0, half),
        TupleLevelTuple("v", 6.0, half),
        TupleLevelTuple("w", 5.0, 0.5),
        TupleLevelTuple("x", 3.0, 0.9),
    ]
    return TupleLevelRelation(
        rows, rules=[ExclusionRule("tau", ["u", "v"])]
    )


# ----------------------------------------------------------------------
# Polynomial kernels
# ----------------------------------------------------------------------
class TestPolynomialKernels:
    def test_convolve_deconvolve_round_trip(self):
        rng = np.random.default_rng(3)
        probs = rng.uniform(0.01, 0.99, size=24)
        poly = product_polynomial(probs)
        for p in probs:
            grown = convolve_bernoulli(poly, float(p))
            back = deconvolve_bernoulli(grown, float(p))
            np.testing.assert_allclose(back, poly, atol=1e-12)

    def test_deconvolve_recovers_leave_one_out(self):
        rng = np.random.default_rng(5)
        probs = rng.uniform(0.05, 0.95, size=12)
        poly = product_polynomial(probs)
        for i, p in enumerate(probs):
            rest = product_polynomial(np.delete(probs, i))
            left = deconvolve_bernoulli(poly, float(p))
            np.testing.assert_allclose(left, rest, atol=1e-12)

    def test_deconvolve_edge_probabilities(self):
        poly = product_polynomial(np.array([0.3, 0.7, 0.5]))
        for p in (0.0, 1e-15):
            out = deconvolve_bernoulli(convolve_bernoulli(poly, p), p)
            np.testing.assert_allclose(out, poly, atol=1e-12)
        for p in (1.0, 1.0 - 1e-15):
            out = deconvolve_bernoulli(convolve_bernoulli(poly, p), p)
            np.testing.assert_allclose(out, poly, atol=1e-12)

    def test_deconvolve_extreme_ratio(self):
        # One factor within a few ulps of certainty: the residual
        # splice must not take a forward step past it (each wrong step
        # costs a factor p / (1 - p) ~ 1e9).
        probs = np.array([1.0 - 1e-9, 0.5, 0.25, 0.8, 0.6])
        poly = product_polynomial(probs)
        rest = product_polynomial(probs[1:])
        left = deconvolve_bernoulli(poly, float(probs[0]))
        np.testing.assert_allclose(left, rest, atol=1e-12)

    @pytest.mark.parametrize("count", [0, 1, 2, 3, 17, 257])
    def test_product_polynomial_matches_sequential(self, count):
        rng = np.random.default_rng(count)
        probs = rng.uniform(0.0, 1.0, size=count)
        sequential = np.array([1.0])
        for p in probs:
            sequential = convolve_bernoulli(sequential, float(p))
        tree = product_polynomial(probs)
        assert tree.shape == (count + 1,)
        np.testing.assert_allclose(tree, sequential, atol=1e-12)
        assert tree.sum() == pytest.approx(1.0, abs=1e-9)

    def test_numpy_fallback_matches_default_path(self, monkeypatch):
        relation = attribute_workload("uu", 40, pdf_size=3)
        expected = attribute_rank_distributions(relation, engine="gf")
        monkeypatch.setattr(columnar, "_lfilter", None)
        fallback = attribute_rank_distributions(relation, engine="gf")
        assert_distributions_match(fallback, expected, atol=1e-11)

    def test_rank_quantiles_matches_rank_distribution(self):
        rng = np.random.default_rng(9)
        matrix = rng.uniform(0.0, 1.0, size=(20, 13))
        matrix /= matrix.sum(axis=1, keepdims=True)
        for phi in PHIS + (1.0,):
            fast = rank_quantiles(matrix, phi)
            slow = [
                RankDistribution(row).quantile(phi) for row in matrix
            ]
            assert fast.tolist() == slow

    def test_rank_quantiles_rejects_bad_phi(self):
        matrix = np.full((2, 2), 0.5)
        for phi in (0.0, -0.5, 1.5):
            with pytest.raises(RankingError):
                rank_quantiles(matrix, phi)


# ----------------------------------------------------------------------
# Attribute-level parity: GF vs DP vs possible-worlds oracle
# ----------------------------------------------------------------------
class TestAttributeParity:
    @pytest.mark.parametrize("code", ["uu", "zipf"])
    @pytest.mark.parametrize("ties", ["by_index", "shared"])
    def test_gf_matches_dp_on_workloads(self, code, ties):
        relation = attribute_workload(code, 48, pdf_size=3)
        gf = attribute_rank_distributions(
            relation, ties=ties, engine="gf"
        )
        dp = attribute_rank_distributions_dp(relation, ties=ties)
        assert_distributions_match(gf, dp)

    @pytest.mark.parametrize("ties", ["by_index", "shared"])
    def test_gf_matches_oracle_small(self, ties):
        relation = attribute_workload("uu", 5, pdf_size=2, seed=13)
        gf = attribute_rank_distributions(
            relation, ties=ties, engine="gf"
        )
        oracle = brute_force_rank_distributions(relation, ties=ties)
        assert_distributions_match(gf, oracle)

    @pytest.mark.parametrize("ties", ["by_index", "shared"])
    def test_tie_heavy_relation(self, ties):
        small = tied_attribute_relation(6)
        gf = attribute_rank_distributions(small, ties=ties, engine="gf")
        oracle = brute_force_rank_distributions(small, ties=ties)
        assert_distributions_match(gf, oracle)

        larger = tied_attribute_relation(64, seed=23)
        gf = attribute_rank_distributions(
            larger, ties=ties, engine="gf"
        )
        dp = attribute_rank_distributions_dp(larger, ties=ties)
        assert_distributions_match(gf, dp)

    @pytest.mark.parametrize("phi", PHIS)
    def test_quantile_statistics_match_dp(self, phi):
        relation = attribute_workload("zipf", 48, pdf_size=3)
        dp = attribute_rank_distributions_dp(relation)
        result = a_mqrank(relation, 10, phi=phi)
        assert len(result.items) == 10
        for item in result.items:
            assert item.statistic == dp[item.tid].quantile(phi)

    def test_single_tuple_and_empty(self):
        single = AttributeLevelRelation(
            [AttributeTuple("only", DiscretePDF([1.0, 2.0], [0.4, 0.6]))]
        )
        dists = attribute_rank_distributions(single, engine="gf")
        assert dists["only"].quantile(0.5) == 0
        assert dists["only"].allclose(
            attribute_rank_distributions_dp(single)["only"]
        )
        empty = AttributeLevelRelation([])
        assert attribute_rank_distributions(empty, engine="gf") == {}


# ----------------------------------------------------------------------
# Tuple-level parity: GF vs DP vs possible-worlds oracle
# ----------------------------------------------------------------------
class TestTupleParity:
    @pytest.mark.parametrize("code", ["uu", "zipf", "cor", "anti"])
    @pytest.mark.parametrize("ties", ["by_index", "shared"])
    def test_gf_matches_dp_on_workloads(self, code, ties):
        relation = tuple_workload(code, 48)
        gf = tuple_rank_distributions(relation, ties=ties, engine="gf")
        dp = tuple_rank_distributions_dp(relation, ties=ties)
        assert_distributions_match(gf, dp)

    @pytest.mark.parametrize("ties", ["by_index", "shared"])
    def test_gf_matches_oracle_small(self, ties):
        relation = small_tuple_relation()
        gf = tuple_rank_distributions(relation, ties=ties, engine="gf")
        oracle = brute_force_rank_distributions(relation, ties=ties)
        assert_distributions_match(gf, oracle)

    @pytest.mark.parametrize("ties", ["by_index", "shared"])
    def test_near_certain_rule_mass_regression(self, ties):
        relation = near_certain_rule_relation()
        gf = tuple_rank_distributions(relation, ties=ties, engine="gf")
        dp = tuple_rank_distributions_dp(relation, ties=ties)
        assert_distributions_match(gf, dp)
        oracle = brute_force_rank_distributions(relation, ties=ties)
        assert_distributions_match(gf, oracle)

    def test_certain_and_impossible_tuples(self):
        rows = [
            TupleLevelTuple("sure", 9.0, 1.0),
            TupleLevelTuple("maybe", 8.0, 0.5),
            TupleLevelTuple("never", 7.0, 0.0),
            TupleLevelTuple("low", 6.0, 0.2),
        ]
        relation = TupleLevelRelation(rows)
        gf = tuple_rank_distributions(relation, engine="gf")
        dp = tuple_rank_distributions_dp(relation)
        assert_distributions_match(gf, dp)
        # An absent tuple ranks behind every present one (Definition 7).
        assert gf["never"].quantile(1.0) >= 1

    @pytest.mark.parametrize("phi", PHIS)
    def test_quantile_statistics_match_dp(self, phi):
        relation = tuple_workload("cor", 48)
        dp = tuple_rank_distributions_dp(relation)
        result = t_mqrank(relation, 10, phi=phi)
        assert len(result.items) == 10
        for item in result.items:
            assert item.statistic == dp[item.tid].quantile(phi)


# ----------------------------------------------------------------------
# The shared positional table (PRF / U-kRanks / PT-k substrate)
# ----------------------------------------------------------------------
class TestPositionalTable:
    def test_matches_brute_force_attribute(self):
        relation = attribute_workload("uu", 5, pdf_size=2, seed=17)
        table = rank_position_probability_matrix(relation)
        oracle = brute_force_rank_position_probabilities(relation)
        for i, row in enumerate(relation):
            np.testing.assert_allclose(
                table[i], oracle[row.tid], atol=PARITY_ATOL
            )

    def test_matches_brute_force_tuple(self):
        relation = small_tuple_relation()
        table = rank_position_probability_matrix(relation)
        oracle = brute_force_rank_position_probabilities(relation)
        for i, row in enumerate(relation):
            np.testing.assert_allclose(
                table[i], oracle[row.tid], atol=PARITY_ATOL
            )
        # Tuple-level rows carry the membership mass, not 1.
        sums = table.sum(axis=1)
        probs = [row.probability for row in relation]
        np.testing.assert_allclose(sums, probs, atol=PARITY_ATOL)


# ----------------------------------------------------------------------
# Golden capture replay: answer digests across the engine swap
# ----------------------------------------------------------------------
class TestGoldenCaptureReplay:
    def test_sensor_capture_replays_clean(self):
        from repro.cli import load_relation
        from repro.obs.replay import replay_capture

        relation = load_relation(EXAMPLES / "sensor_readings.csv")
        report = replay_capture(
            EXAMPLES / "sensor_capture.jsonl", relation
        )
        assert not report.problems
        assert not report.regressions
        assert report.exit_code() == 0
