"""Tests for the expected-rank explanation module."""

from __future__ import annotations

import pytest

from repro.core import (
    attribute_expected_ranks,
    explain_pair,
    rank_contributions,
    tuple_expected_ranks,
)
from repro.datagen import (
    generate_attribute_relation,
    generate_tuple_relation,
)
from repro.exceptions import RankingError


class TestContributionsSumToRank:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("ties", ["shared", "by_index"])
    def test_attribute_level(self, seed, ties):
        relation = generate_attribute_relation(8, pdf_size=3, seed=seed)
        ranks = attribute_expected_ranks(relation, ties=ties)
        for tid in relation.tids():
            contributions = rank_contributions(
                relation, tid, ties=ties
            )
            assert sum(contributions.values()) == pytest.approx(
                ranks[tid], abs=1e-9
            )
            assert set(contributions) == set(relation.tids()) - {tid}

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("ties", ["shared", "by_index"])
    def test_tuple_level(self, seed, ties):
        relation = generate_tuple_relation(
            9, rule_fraction=0.6, seed=seed
        )
        ranks = tuple_expected_ranks(relation, ties=ties)
        for tid in relation.tids():
            contributions = rank_contributions(
                relation, tid, ties=ties
            )
            assert sum(contributions.values()) == pytest.approx(
                ranks[tid], abs=1e-9
            )

    def test_rule_mate_contributes_its_probability(self, fig4):
        contributions = rank_contributions(fig4, "t2")
        assert contributions["t4"] == pytest.approx(0.5)

    def test_figure4_t2_decomposition(self, fig4):
        """r(t2) = 1.4 = t1 term + t3 term + t4 (rule mate) term."""
        contributions = rank_contributions(fig4, "t2")
        # t1 beats t2 (100 > 92): p1 * (p2 * 1 + (1 - p2)) = 0.4.
        assert contributions["t1"] == pytest.approx(0.4)
        # t3 below t2: only the absence channel, p3 * (1 - p2) = 0.5.
        assert contributions["t3"] == pytest.approx(0.5)
        assert sum(contributions.values()) == pytest.approx(1.4)

    def test_unsupported_relation(self):
        with pytest.raises(RankingError):
            rank_contributions([1, 2], "x")  # type: ignore[arg-type]


class TestExplainPair:
    def test_gap_matches_rank_difference(self, fig4):
        explanation = explain_pair(fig4, "t3", "t4")
        ranks = tuple_expected_ranks(fig4)
        assert explanation.gap == pytest.approx(
            ranks["t4"] - ranks["t3"]
        )
        assert explanation.better_rank == pytest.approx(ranks["t3"])

    def test_deltas_plus_mutual_equal_gap(self, fig4):
        explanation = explain_pair(fig4, "t3", "t1")
        reconstructed = (
            sum(explanation.competitor_deltas.values())
            + explanation.mutual_delta
        )
        assert reconstructed == pytest.approx(explanation.gap)

    def test_wrong_direction_rejected(self, fig4):
        with pytest.raises(RankingError):
            explain_pair(fig4, "t4", "t3")  # t4 ranks below t3

    def test_self_comparison_rejected(self, fig4):
        with pytest.raises(RankingError):
            explain_pair(fig4, "t1", "t1")

    def test_top_factors_ordering(self):
        relation = generate_tuple_relation(12, seed=3)
        ranks = tuple_expected_ranks(relation)
        ordered = sorted(ranks, key=ranks.get)
        explanation = explain_pair(relation, ordered[0], ordered[-1])
        factors = explanation.top_factors(4)
        magnitudes = [abs(delta) for _, delta in factors]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_describe_mentions_both_tuples(self, fig4):
        text = explain_pair(fig4, "t3", "t4").describe()
        assert "t3" in text and "t4" in text and "gap" in text

    def test_attribute_level_pair(self, fig2):
        explanation = explain_pair(fig2, "t2", "t1")
        ranks = attribute_expected_ranks(fig2)
        assert explanation.gap == pytest.approx(
            ranks["t1"] - ranks["t2"]
        )
