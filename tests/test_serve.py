"""Tests for the multi-tenant serving core (:mod:`repro.serve`).

Unit layers (admission, coalescing, settings, wire schema) are
wall-clock-free via fake clocks; the integration layer drives a real
event loop against the paper's Figure 2 relation and asserts the
serving contract: every request resolves to exactly one typed
response, coalesced answers are digest-identical to direct engine
runs, and drain never orphans a request.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.engine.database import ProbabilisticDatabase
from repro.exceptions import (
    EngineError,
    OverloadedError,
    SchemaError,
)
from repro.obs import MetricsRegistry, answer_digest, set_registry
from repro.robust import FaultInjector, RetryPolicy
from repro.serve import (
    AdmissionController,
    ServeRequest,
    ServeSettings,
    ServingCore,
    TokenBucket,
    coalesce_key,
    handle_line,
    run_batch,
    serve_tcp,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def registry():
    fresh = MetricsRegistry(enabled=True)
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


@pytest.fixture
def db(fig2) -> ProbabilisticDatabase:
    database = ProbabilisticDatabase()
    database.create_relation("fig2", fig2)
    return database


def make_core(db, **overrides) -> ServingCore:
    settings = ServeSettings(**overrides)
    return ServingCore(
        db,
        settings=settings,
        retry=RetryPolicy(max_retries=1, base_delay=0.0),
    )


# ----------------------------------------------------------------------
# Units
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_starts_full_and_refills_from_elapsed_time(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        assert bucket.take()
        assert bucket.take()
        assert not bucket.take()
        clock.advance(0.5)  # 1 token back at 2/s
        assert bucket.take()
        assert not bucket.take()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=3.0, clock=clock)
        clock.advance(60.0)
        assert bucket.tokens == 3.0


class TestAdmission:
    def make(self, queue_limit=2, rate=100.0, burst=100.0):
        clock = FakeClock()
        controller = AdmissionController(
            queue_limit=queue_limit,
            quota_for=lambda tenant: (rate, burst),
            clock=clock,
        )
        return controller, clock

    def test_admit_release_pairing(self):
        controller, _ = self.make()
        controller.admit("a")
        controller.admit("a")
        assert controller.in_system == 2
        controller.release()
        assert controller.in_system == 1

    def test_queue_full_shed_is_typed(self):
        controller, _ = self.make(queue_limit=1)
        controller.admit("a")
        with pytest.raises(OverloadedError) as excinfo:
            controller.admit("b")
        assert excinfo.value.reason == "queue_full"
        assert excinfo.value.tenant == "b"

    def test_quota_shed_names_the_tenant(self):
        controller, _ = self.make(queue_limit=10, burst=1.0, rate=0.1)
        controller.admit("a")
        with pytest.raises(OverloadedError) as excinfo:
            controller.admit("a")
        assert excinfo.value.reason == "quota"
        assert "'a'" in str(excinfo.value)

    def test_quota_is_per_tenant(self):
        controller, _ = self.make(queue_limit=10, burst=1.0, rate=0.1)
        controller.admit("a")
        controller.admit("b")  # b has its own bucket

    def test_draining_refuses_everything_first(self):
        controller, _ = self.make()
        controller.start_draining()
        with pytest.raises(OverloadedError) as excinfo:
            controller.admit("a")
        assert excinfo.value.reason == "draining"

    def test_shed_decisions_are_counted(self, registry):
        controller, _ = self.make(queue_limit=1)
        controller.admit("a")
        with pytest.raises(OverloadedError):
            controller.admit("b")
        counters = registry.snapshot()["counters"]
        assert counters['serve.shed{reason="queue_full"}'] == 1
        assert registry.snapshot()["gauges"]["serve.queue_depth"] == 1


class TestSettings:
    def test_quota_override_beats_the_default(self):
        settings = ServeSettings(
            tenant_rate=10.0,
            tenant_burst=5.0,
            quotas={"vip": (100.0, 50.0)},
        )
        assert settings.quota_for("vip") == (100.0, 50.0)
        assert settings.quota_for("anyone") == (10.0, 5.0)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"queue_limit": 0},
            {"tenant_rate": 0.0},
            {"tenant_burst": 0.5},
            {"quotas": {"x": (0.0, 5.0)}},
            {"default_deadline_ms": -1.0},
            {"drain_deadline_ms": -1.0},
            {"max_workers": 0},
            {"max_retries": -1},
        ],
    )
    def test_bad_settings_fail_eagerly(self, overrides):
        with pytest.raises(EngineError):
            ServeSettings(**overrides)


class TestCoalesceKey:
    def test_option_order_never_splits_identical_queries(self):
        a = coalesce_key("d", 3, "m", {"phi": 0.5, "ties": "shared"})
        b = coalesce_key("d", 3, "m", {"ties": "shared", "phi": 0.5})
        assert a == b

    def test_distinct_queries_get_distinct_keys(self):
        base = coalesce_key("d", 3, "m", {})
        assert coalesce_key("d", 4, "m", {}) != base
        assert coalesce_key("e", 3, "m", {}) != base
        assert coalesce_key("d", 3, "n", {}) != base
        assert coalesce_key("d", 3, "m", {"phi": 0.5}) != base


class TestRequestSchema:
    def test_round_trip(self):
        request = ServeRequest.from_json(
            {
                "relation": "r",
                "k": 3,
                "method": "median_rank",
                "tenant": "t",
                "options": {"ties": "shared"},
                "deadline_ms": 250,
            }
        )
        assert request.k == 3
        assert request.deadline_ms == 250.0
        assert request.options == {"ties": "shared"}

    @pytest.mark.parametrize(
        "payload, fragment",
        [
            (["not", "an", "object"], "JSON object"),
            ({"relation": "r", "k": 1, "bogus": 1}, "unknown"),
            ({"k": 1}, "relation"),
            ({"relation": "r"}, "integer k"),
            ({"relation": "r", "k": True}, "integer k"),
            ({"relation": "r", "k": -1}, "integer k"),
            ({"relation": "r", "k": 1, "method": 7}, "method"),
            ({"relation": "r", "k": 1, "tenant": ""}, "tenant"),
            ({"relation": "r", "k": 1, "options": 3}, "options"),
            (
                {"relation": "r", "k": 1, "deadline_ms": -5},
                "deadline_ms",
            ),
        ],
    )
    def test_malformed_payloads_are_schema_errors(
        self, payload, fragment
    ):
        with pytest.raises(SchemaError) as excinfo:
            ServeRequest.from_json(payload)
        assert fragment in str(excinfo.value)


# ----------------------------------------------------------------------
# Integration: the serving contract on a live event loop
# ----------------------------------------------------------------------
class TestServingCore:
    def test_ok_answer_matches_direct_engine_run(self, db, fig2):
        core = make_core(db)

        async def scenario():
            response = await core.submit(
                ServeRequest(relation="fig2", k=2)
            )
            await core.drain()
            return response

        response = asyncio.run(scenario())
        assert response.status == "ok"
        direct = db.topk("fig2", 2)
        assert response.answer == direct.tids()
        assert response.answer_digest == answer_digest(direct)

    def test_identical_requests_coalesce_digest_identically(
        self, db, registry
    ):
        core = make_core(db)
        request = ServeRequest(relation="fig2", k=2)

        async def scenario():
            responses = await asyncio.gather(
                *(core.submit(request) for _ in range(6))
            )
            await core.drain()
            return responses

        responses = asyncio.run(scenario())
        assert all(r.status == "ok" for r in responses)
        digests = {r.answer_digest for r in responses}
        assert len(digests) == 1
        coalesced = [r for r in responses if r.coalesced]
        assert len(coalesced) == 5
        counters = registry.snapshot()["counters"]
        assert counters["serve.coalesced"] == 5
        assert counters["serve.coalesce.leaders"] == 1

    def test_coalescing_can_be_disabled(self, db, registry):
        core = make_core(db, coalesce=False)
        request = ServeRequest(relation="fig2", k=2)

        async def scenario():
            responses = await asyncio.gather(
                *(core.submit(request) for _ in range(3))
            )
            await core.drain()
            return responses

        responses = asyncio.run(scenario())
        assert all(r.status == "ok" for r in responses)
        assert not any(r.coalesced for r in responses)
        counters = registry.snapshot()["counters"]
        assert "serve.coalesced" not in counters

    def test_unknown_relation_is_a_typed_error(self, db):
        core = make_core(db)

        async def scenario():
            response = await core.submit(
                ServeRequest(relation="nope", k=2)
            )
            await core.drain()
            return response

        response = asyncio.run(scenario())
        assert response.status == "error"
        assert response.error_type == "RelationNotFoundError"

    def test_expired_deadline_is_a_typed_error(self, db):
        core = make_core(db)

        async def scenario():
            response = await core.submit(
                ServeRequest(relation="fig2", k=2, deadline_ms=0.0)
            )
            await core.drain()
            return response

        response = asyncio.run(scenario())
        assert response.status == "error"
        assert response.error_type == "DeadlineExceededError"

    def test_quota_exhaustion_sheds_with_reason(self, db):
        core = make_core(db, tenant_burst=1.0, tenant_rate=0.001)

        async def scenario():
            first = await core.submit(ServeRequest("fig2", 2))
            second = await core.submit(ServeRequest("fig2", 2))
            await core.drain()
            return first, second

        first, second = asyncio.run(scenario())
        assert first.status == "ok"
        assert second.status == "shed"
        assert second.shed_reason == "quota"

    def test_queue_limit_sheds_under_concurrency(
        self, db, monkeypatch
    ):
        core = make_core(db, queue_limit=1)
        original = ServingCore._run_query

        def slow_query(self, request, deadline):
            import time as _time

            _time.sleep(0.05)  # worker thread; the loop stays free
            return original(self, request, deadline)

        monkeypatch.setattr(ServingCore, "_run_query", slow_query)

        async def scenario():
            responses = await asyncio.gather(
                *(
                    core.submit(ServeRequest("fig2", 2))
                    for _ in range(3)
                )
            )
            await core.drain()
            return responses

        responses = asyncio.run(scenario())
        statuses = sorted(r.status for r in responses)
        assert statuses.count("ok") == 1
        assert statuses.count("shed") == 2
        assert {
            r.shed_reason for r in responses if r.status == "shed"
        } == {"queue_full"}

    def test_faults_degrade_but_still_answer(self, db):
        settings = ServeSettings(breaker_min_calls=2, breaker_window=4)
        core = ServingCore(
            db,
            settings=settings,
            injector=FaultInjector(error_rate=1.0, seed=3),
            retry=RetryPolicy(max_retries=0, base_delay=0.0),
        )

        async def scenario():
            responses = [
                await core.submit(ServeRequest("fig2", 2))
                for _ in range(4)
            ]
            await core.drain()
            return responses

        responses = asyncio.run(scenario())
        assert all(r.status == "ok" for r in responses)
        assert all(r.degraded for r in responses)
        # Persistent failures opened the rung breakers fleet-wide.
        assert "open" in core.breakers.states().values()

    def test_drain_sheds_new_requests_and_reports(self, db):
        core = make_core(db)

        async def scenario():
            report = await core.drain()
            late = await core.submit(ServeRequest("fig2", 2))
            return report, late

        report, late = asyncio.run(scenario())
        assert report["abandoned"] == 0
        assert late.status == "shed"
        assert late.shed_reason == "draining"

    def test_forced_drain_settles_every_request(
        self, db, monkeypatch
    ):
        core = make_core(db, drain_deadline_ms=10.0)
        original = ServingCore._run_query
        release = {"wait": 0.2}

        def slow_query(self, request, deadline):
            import time as _time

            _time.sleep(release["wait"])
            return original(self, request, deadline)

        monkeypatch.setattr(ServingCore, "_run_query", slow_query)

        async def scenario():
            request = ServeRequest("fig2", 2)
            pending = [
                asyncio.create_task(core.submit(request))
                for _ in range(3)
            ]
            await asyncio.sleep(0.02)  # leader on the pool, followers wait
            report = await core.drain()
            responses = await asyncio.gather(*pending)
            return report, responses

        report, responses = asyncio.run(scenario())
        assert core.inflight == 0
        # Exactly one typed outcome each; followers were abandoned.
        assert all(
            r.status in ("ok", "shed", "error") for r in responses
        )
        assert report["abandoned"] >= 1
        assert any(
            r.status == "shed" and r.shed_reason == "drained"
            for r in responses
        )


# ----------------------------------------------------------------------
# Transports
# ----------------------------------------------------------------------
class TestTransport:
    def test_handle_line_reports_bad_json_in_band(self, db):
        core = make_core(db)

        async def scenario():
            record = await handle_line(core, "{nope")
            await core.drain()
            return record

        record = asyncio.run(scenario())
        assert record["status"] == "error"
        assert record["error_type"] == "SchemaError"
        assert "invalid JSON" in record["error"]

    def test_run_batch_preserves_input_order_and_ids(self, db):
        core = make_core(db)
        lines = [
            '{"relation": "fig2", "k": 2, "id": "first"}',
            "",
            '{"relation": "fig2", "k": 1, "id": "second"}',
            '{"relation": "fig2", "k": 2, "bogus": true, "id": 3}',
        ]
        responses = asyncio.run(run_batch(core, lines))
        assert [r["id"] for r in responses] == ["first", "second", 3]
        assert responses[0]["status"] == "ok"
        assert responses[2]["status"] == "error"
        assert "unknown" in responses[2]["error"]

    def test_tcp_round_trip(self, db):
        core = make_core(db)

        async def scenario():
            server = await serve_tcp(core, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                b'{"relation": "fig2", "k": 2, "id": 7}\n'
                b'{"relation": "fig2", "k": 2, "id": 8}\n'
            )
            await writer.drain()
            writer.write_eof()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            server.close()
            await server.wait_closed()
            await core.drain()
            return [
                json.loads(line)
                for line in raw.decode().splitlines()
            ]

        records = asyncio.run(scenario())
        assert {record["id"] for record in records} == {7, 8}
        assert all(record["status"] == "ok" for record in records)
        digests = {record["answer_digest"] for record in records}
        assert len(digests) == 1


# ----------------------------------------------------------------------
# The repro serve CLI
# ----------------------------------------------------------------------
@pytest.fixture
def relation_csv(fig2, tmp_path):
    from repro.engine.io import save_attribute_csv

    path = tmp_path / "fig2.csv"
    save_attribute_csv(fig2, path)
    return path


class TestServeCLI:
    def run_cli(self, relation_csv, tmp_path, lines, *flags):
        from repro.cli import main

        workload = tmp_path / "workload.jsonl"
        workload.write_text("\n".join(lines) + "\n")
        return main(
            [
                "serve",
                str(relation_csv),
                "--workload",
                str(workload),
                *flags,
            ]
        )

    def test_batch_answers_and_exits_zero(
        self, relation_csv, tmp_path, capsys
    ):
        code = self.run_cli(
            relation_csv,
            tmp_path,
            [
                '{"relation": "fig2", "k": 2, "id": 1}',
                '{"relation": "fig2", "k": 2, "id": 2}',
            ],
        )
        assert code == 0
        captured = capsys.readouterr()
        records = [
            json.loads(line) for line in captured.out.splitlines()
        ]
        assert [r["status"] for r in records] == ["ok", "ok"]
        assert len({r["answer_digest"] for r in records}) == 1
        assert "2 ok, 0 shed" in captured.err

    def test_shed_requests_exit_with_code_11(
        self, relation_csv, tmp_path, capsys
    ):
        code = self.run_cli(
            relation_csv,
            tmp_path,
            [
                '{"relation": "fig2", "k": 2, "id": 1}',
                '{"relation": "fig2", "k": 3, "id": 2}',
            ],
            "--tenant-burst",
            "1",
            "--tenant-rate",
            "0.001",
        )
        assert code == 11
        records = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
        ]
        statuses = sorted(r["status"] for r in records)
        assert statuses == ["ok", "shed"]

    def test_capture_records_coalesced_followers(
        self, relation_csv, tmp_path, capsys
    ):
        capture = tmp_path / "capture.jsonl"
        code = self.run_cli(
            relation_csv,
            tmp_path,
            ['{"relation": "fig2", "k": 2}'] * 3,
            "--capture-out",
            str(capture),
        )
        assert code == 0
        records = [
            json.loads(line)
            for line in capture.read_text().splitlines()
            if line.strip()
        ]
        coalesced = [
            r
            for r in records
            if r.get("annotations", {}).get("coalesced")
        ]
        assert len(coalesced) == 2
        digests = {r["answer_digest"] for r in records}
        assert len(digests) == 1
