"""Tests for the circuit breaker and its board.

All wall-clock-free: a fake monotonic clock drives the cool-down, so
the open → half-open → closed cycle runs instantly and
deterministically (RPR004).
"""

from __future__ import annotations

import pytest

from repro.exceptions import CircuitOpenError, EngineError
from repro.obs import MetricsRegistry, set_registry
from repro.robust import BreakerBoard, CircuitBreaker


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def breaker(**overrides) -> tuple[CircuitBreaker, FakeClock]:
    clock = FakeClock()
    config = dict(
        window=8,
        failure_threshold=0.5,
        min_calls=4,
        reset_seconds=10.0,
        probes=1,
        clock=clock,
    )
    config.update(overrides)
    return CircuitBreaker("rung", **config), clock


def trip(cb: CircuitBreaker, failures: int = 4) -> None:
    for _ in range(failures):
        cb.allow()
        cb.record_failure()


class TestClosedState:
    def test_starts_closed_and_allows(self):
        cb, _ = breaker()
        assert cb.state == "closed"
        cb.allow()  # must not raise

    def test_failures_below_min_calls_never_trip(self):
        cb, _ = breaker(min_calls=4)
        trip(cb, failures=3)
        assert cb.state == "closed"

    def test_trips_open_at_threshold(self):
        cb, _ = breaker()
        trip(cb, failures=4)
        assert cb.state == "open"

    def test_successes_dilute_the_failure_rate(self):
        cb, _ = breaker(window=8, min_calls=4)
        for _ in range(5):
            cb.allow()
            cb.record_success()
        trip(cb, failures=3)  # 3/8 < 0.5: stays closed
        assert cb.state == "closed"

    def test_window_forgets_old_outcomes(self):
        cb, _ = breaker(window=4, min_calls=4)
        for _ in range(4):
            cb.allow()
            cb.record_failure()
        assert cb.state == "open"
        cb.reset()
        for _ in range(4):
            cb.allow()
            cb.record_success()
        # The four successes fill the window; older failures are gone.
        assert cb.failure_rate() == 0.0


class TestOpenState:
    def test_allow_raises_typed_error_with_retry_hint(self):
        cb, clock = breaker(reset_seconds=10.0)
        trip(cb)
        clock.advance(1.0)
        with pytest.raises(CircuitOpenError) as excinfo:
            cb.allow()
        message = str(excinfo.value)
        assert "open" in message
        assert "retry in" in message

    def test_cooldown_moves_to_half_open(self):
        cb, clock = breaker(reset_seconds=10.0)
        trip(cb)
        clock.advance(9.9)
        assert cb.state == "open"
        clock.advance(0.2)
        assert cb.state == "half_open"


class TestHalfOpenState:
    def test_probe_budget_is_enforced(self):
        cb, clock = breaker(probes=1)
        trip(cb)
        clock.advance(10.0)
        cb.allow()  # the single probe
        with pytest.raises(CircuitOpenError) as excinfo:
            cb.allow()
        assert "half-open" in str(excinfo.value)

    def test_probe_success_closes_and_clears_the_window(self):
        cb, clock = breaker()
        trip(cb)
        clock.advance(10.0)
        cb.allow()
        cb.record_success()
        assert cb.state == "closed"
        assert cb.failure_rate() == 0.0

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        cb, clock = breaker(reset_seconds=10.0)
        trip(cb)
        clock.advance(10.0)
        cb.allow()
        cb.record_failure()
        assert cb.state == "open"
        clock.advance(9.0)
        assert cb.state == "open"  # cool-down restarted at reopen
        clock.advance(1.0)
        assert cb.state == "half_open"

    def test_reset_forces_closed(self):
        cb, _ = breaker()
        trip(cb)
        cb.reset()
        assert cb.state == "closed"
        cb.allow()


class TestValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"window": 0},
            {"failure_threshold": 0.0},
            {"failure_threshold": 1.5},
            {"min_calls": 0},
            {"min_calls": 9},  # > window of 8
            {"reset_seconds": -1.0},
            {"probes": 0},
        ],
    )
    def test_bad_config_is_rejected_eagerly(self, overrides):
        with pytest.raises(EngineError):
            breaker(**overrides)


class TestBreakerBoard:
    def test_same_name_same_instance(self):
        board = BreakerBoard(clock=FakeClock())
        assert board.breaker("exact") is board.breaker("exact")
        assert board.breaker("exact") is not board.breaker("pruned")

    def test_states_and_reset(self):
        clock = FakeClock()
        board = BreakerBoard(min_calls=2, window=4, clock=clock)
        trip(board.breaker("exact"), failures=2)
        assert board.states() == {"exact": "open"}
        board.reset()
        assert board.states() == {"exact": "closed"}


class TestObservability:
    def test_transitions_hit_gauge_counters_and_events(self):
        registry = MetricsRegistry(enabled=True)
        previous = set_registry(registry)
        try:
            cb, clock = breaker()
            trip(cb)
            clock.advance(10.0)
            cb.allow()
            cb.record_success()
        finally:
            set_registry(previous)
        snapshot = registry.snapshot()
        counters = snapshot["counters"]
        assert counters["robust.breaker.rung.open"] == 1
        assert counters["robust.breaker.rung.half_open"] == 1
        assert counters["robust.breaker.rung.closed"] == 1
        # Final state is closed -> gauge encodes 0.
        assert snapshot["gauges"]["robust.breaker.rung.state"] == 0

    def test_open_breaker_counts_rejections(self):
        registry = MetricsRegistry(enabled=True)
        previous = set_registry(registry)
        try:
            cb, _ = breaker()
            trip(cb)
            with pytest.raises(CircuitOpenError):
                cb.allow()
        finally:
            set_registry(previous)
        counters = registry.snapshot()["counters"]
        assert counters["robust.breaker.rung.rejected"] == 1
