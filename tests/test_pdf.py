"""Unit tests for :mod:`repro.models.pdf`."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import InvalidDistributionError
from repro.models.pdf import PROBABILITY_TOLERANCE, DiscretePDF


class TestConstruction:
    def test_basic(self):
        pdf = DiscretePDF([100, 70], [0.4, 0.6])
        assert pdf.support_size == 2
        assert pdf.values == (70, 100)
        assert pdf.probabilities == (0.6, 0.4)

    def test_point_mass(self):
        pdf = DiscretePDF.point(85)
        assert pdf.values == (85,)
        assert pdf.expectation() == 85

    def test_uniform_over(self):
        pdf = DiscretePDF.uniform_over([1, 2, 3, 4])
        assert pdf.pr_equal(3) == pytest.approx(0.25)

    def test_from_pairs(self):
        pdf = DiscretePDF.from_pairs([(5, 0.5), (7, 0.5)])
        assert pdf.expectation() == pytest.approx(6.0)

    def test_duplicates_merged(self):
        pdf = DiscretePDF([5, 5, 7], [0.25, 0.25, 0.5])
        assert pdf.support_size == 2
        assert pdf.pr_equal(5) == pytest.approx(0.5)

    def test_zero_probability_values_dropped(self):
        pdf = DiscretePDF([1, 2, 3], [0.5, 0.0, 0.5])
        assert pdf.support_size == 2
        assert 2 not in pdf.values

    def test_normalize(self):
        pdf = DiscretePDF([1, 2], [3, 1], normalize=True)
        assert pdf.pr_equal(1) == pytest.approx(0.75)

    def test_rejects_bad_sum(self):
        with pytest.raises(InvalidDistributionError):
            DiscretePDF([1, 2], [0.5, 0.6])

    def test_rejects_negative_probability(self):
        with pytest.raises(InvalidDistributionError):
            DiscretePDF([1, 2], [-0.1, 1.1])

    def test_rejects_length_mismatch(self):
        with pytest.raises(InvalidDistributionError):
            DiscretePDF([1, 2, 3], [0.5, 0.5])

    def test_rejects_empty(self):
        with pytest.raises(InvalidDistributionError):
            DiscretePDF([], [])

    def test_rejects_non_finite_value(self):
        with pytest.raises(InvalidDistributionError):
            DiscretePDF([float("nan")], [1.0])

    def test_rejects_all_zero_normalize(self):
        with pytest.raises(InvalidDistributionError):
            DiscretePDF([1.0], [0.0], normalize=True)

    def test_tolerates_tiny_drift(self):
        DiscretePDF([1, 2], [0.5, 0.5 + PROBABILITY_TOLERANCE / 2])

    def test_equality_is_order_insensitive(self):
        first = DiscretePDF([1, 2], [0.3, 0.7])
        second = DiscretePDF([2, 1], [0.7, 0.3])
        assert first == second
        assert hash(first) == hash(second)

    def test_repr_round_readable(self):
        assert "DiscretePDF" in repr(DiscretePDF.point(1.0))


class TestMomentsAndTails:
    def test_expectation_figure2_t1(self):
        pdf = DiscretePDF([100, 70], [0.4, 0.6])
        assert pdf.expectation() == pytest.approx(82.0)

    def test_variance(self):
        pdf = DiscretePDF([0, 10], [0.5, 0.5])
        assert pdf.variance() == pytest.approx(25.0)

    def test_variance_of_point_is_zero(self):
        assert DiscretePDF.point(42).variance() == 0.0

    def test_pr_greater(self):
        pdf = DiscretePDF([1, 2, 3], [0.2, 0.3, 0.5])
        assert pdf.pr_greater(0) == pytest.approx(1.0)
        assert pdf.pr_greater(1) == pytest.approx(0.8)
        assert pdf.pr_greater(2) == pytest.approx(0.5)
        assert pdf.pr_greater(3) == pytest.approx(0.0)
        assert pdf.pr_greater(2.5) == pytest.approx(0.5)

    def test_pr_greater_equal(self):
        pdf = DiscretePDF([1, 2, 3], [0.2, 0.3, 0.5])
        assert pdf.pr_greater_equal(2) == pytest.approx(0.8)
        assert pdf.pr_greater_equal(2.5) == pytest.approx(0.5)

    def test_pr_less_and_cdf_complement(self):
        pdf = DiscretePDF([1, 2, 3], [0.2, 0.3, 0.5])
        for threshold in (0.5, 1, 1.5, 2, 2.5, 3, 3.5):
            assert pdf.pr_less(threshold) + pdf.pr_greater_equal(
                threshold
            ) == pytest.approx(1.0)
            assert pdf.cdf(threshold) + pdf.pr_greater(
                threshold
            ) == pytest.approx(1.0)

    def test_pr_equal_missing_value(self):
        assert DiscretePDF([1, 3], [0.5, 0.5]).pr_equal(2) == 0.0

    def test_quantiles(self):
        pdf = DiscretePDF([10, 20, 30], [0.25, 0.5, 0.25])
        assert pdf.quantile(0.1) == 10
        assert pdf.quantile(0.25) == 10
        assert pdf.quantile(0.5) == 20
        assert pdf.quantile(0.75) == 20
        assert pdf.quantile(0.76) == 30
        assert pdf.quantile(1.0) == 30

    def test_median(self):
        assert DiscretePDF([1, 100], [0.5, 0.5]).median() == 1

    def test_quantile_rejects_bad_phi(self):
        pdf = DiscretePDF.point(1)
        with pytest.raises(ValueError):
            pdf.quantile(0.0)
        with pytest.raises(ValueError):
            pdf.quantile(1.5)


class TestOrdersAndTransforms:
    def test_stochastic_dominance_by_shift(self):
        base = DiscretePDF([1, 2], [0.5, 0.5])
        better = base.shift(1.0)
        assert better.stochastically_dominates(base)
        assert not base.stochastically_dominates(better)

    def test_stochastic_dominance_reflexive(self):
        pdf = DiscretePDF([1, 5], [0.4, 0.6])
        assert pdf.stochastically_dominates(pdf)

    def test_incomparable_distributions(self):
        crossing_a = DiscretePDF([0, 10], [0.5, 0.5])
        crossing_b = DiscretePDF([4, 6], [0.5, 0.5])
        assert not crossing_a.stochastically_dominates(crossing_b)
        assert not crossing_b.stochastically_dominates(crossing_a)

    def test_probability_shift_dominates(self):
        base = DiscretePDF([1, 2], [0.5, 0.5])
        better = DiscretePDF([1, 2], [0.2, 0.8])
        assert better.stochastically_dominates(base)

    def test_shift_preserves_probabilities(self):
        pdf = DiscretePDF([1, 2], [0.3, 0.7]).shift(5)
        assert pdf.values == (6, 7)
        assert pdf.probabilities == (0.3, 0.7)

    def test_scale(self):
        pdf = DiscretePDF([1, 2], [0.3, 0.7]).scale(10)
        assert pdf.values == (10, 20)

    def test_scale_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            DiscretePDF.point(1).scale(0.0)

    def test_map_values_merges_collisions(self):
        pdf = DiscretePDF([-1, 1], [0.5, 0.5]).map_values(abs)
        assert pdf.values == (1,)
        assert pdf.pr_equal(1) == pytest.approx(1.0)

    def test_monotone_map_preserves_quantiles(self):
        pdf = DiscretePDF([1, 2, 3], [0.2, 0.3, 0.5])
        cubed = pdf.map_values(lambda value: value**3)
        assert cubed.median() == pdf.median() ** 3


class TestSampling:
    def test_sample_values_in_support(self):
        pdf = DiscretePDF([1, 2, 3], [0.2, 0.3, 0.5])
        rng = random.Random(1)
        draws = {pdf.sample(rng) for _ in range(200)}
        assert draws <= {1, 2, 3}

    def test_sample_frequencies_converge(self):
        pdf = DiscretePDF([0, 1], [0.25, 0.75])
        rng = random.Random(7)
        hits = sum(pdf.sample(rng) for _ in range(20_000))
        assert hits / 20_000 == pytest.approx(0.75, abs=0.02)

    def test_point_sample_deterministic(self):
        rng = random.Random(0)
        assert DiscretePDF.point(9).sample(rng) == 9
