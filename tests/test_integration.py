"""Cross-module integration tests: generator -> engine -> query -> checks."""

from __future__ import annotations

import pytest

from repro.baselines import brute_force_expected_ranks
from repro.bench import attribute_workload, tuple_workload
from repro.core import rank
from repro.datagen import iceberg_sightings, movie_ratings
from repro.engine import ProbabilisticDatabase, TopKPlanner
from repro.models.sampling import estimate_expected_ranks
from repro.stats import kendall_tau_coefficient, topk_recall


class TestEndToEndWorkflow:
    def test_generate_store_query_audit(self, tmp_path):
        """The full user journey from the README quickstart."""
        db = ProbabilisticDatabase()
        db.create_relation("movies", movie_ratings(40, seed=0))
        db.create_relation("sightings", iceberg_sightings(40, seed=0))

        top_movies = db.topk("movies", 5)
        assert len(top_movies) == 5

        top_sightings = db.topk(
            "sightings", 5, method="median_rank"
        )
        assert len(top_sightings) == 5

        db.save(tmp_path / "db")
        restored = ProbabilisticDatabase.load(tmp_path / "db")
        assert restored.topk("movies", 5).tids() == top_movies.tids()

    def test_planner_and_exact_agree_on_answers(self):
        relation = tuple_workload("uu", 500)
        exact = rank(relation, 10)
        planned = TopKPlanner(expensive_access=True).execute(
            relation, 10
        )
        assert planned.tids() == exact.tids()
        assert planned.metadata["tuples_accessed"] < relation.size

    def test_all_methods_run_on_both_models(self, fig2, fig4):
        per_model = {
            "attribute": (
                fig2,
                [
                    "expected_rank",
                    "expected_rank_prune",
                    "median_rank",
                    "u_topk",
                    "u_kranks",
                    "global_topk",
                    "expected_score",
                ],
            ),
            "tuple": (
                fig4,
                [
                    "expected_rank",
                    "expected_rank_prune",
                    "median_rank",
                    "u_topk",
                    "u_kranks",
                    "global_topk",
                    "expected_score",
                    "probability_only",
                ],
            ),
        }
        for model, (relation, methods) in per_model.items():
            for method in methods:
                result = rank(relation, 2, method=method)
                assert result.method, (model, method)

    def test_monte_carlo_agrees_with_exact(self):
        relation = tuple_workload("cor", 30)
        exact = brute_force_expected_ranks(relation, max_worlds=10**7) \
            if relation.size <= 20 else None
        estimates = estimate_expected_ranks(relation, 20_000, rng=1)
        from repro.core import tuple_expected_ranks

        closed_form = tuple_expected_ranks(relation)
        for tid, value in closed_form.items():
            assert estimates[tid] == pytest.approx(value, abs=0.25)
        assert exact is None or all(
            closed_form[tid] == pytest.approx(exact[tid])
            for tid in exact
        )

    def test_semantics_agreement_shape(self):
        """Expected and median ranks correlate strongly on clean data;
        probability-only ranking correlates much less — the qualitative
        claim behind experiment E12."""
        relation = tuple_workload("uu", 120)
        n = relation.size
        expected = rank(relation, n).tids()
        median = rank(relation, n, method="median_rank").tids()
        by_probability = rank(
            relation, n, method="probability_only"
        ).tids()
        close = kendall_tau_coefficient(list(expected), list(median))
        far = kendall_tau_coefficient(
            list(expected), list(by_probability)
        )
        # Median ranks are integers, so insertion-order tie-breaking
        # caps the correlation below 1; it must still clearly exceed
        # the score-blind baseline.
        assert close > 0.6
        assert close > far + 0.1

    def test_prune_recall_against_exact(self):
        """A-ERank-Prune's curtailed answer keeps high recall — the
        quality claim of experiment E6."""
        relation = attribute_workload("zipf", 800)
        exact = rank(relation, 20).tids()
        pruned = rank(relation, 20, method="expected_rank_prune")
        assert topk_recall(pruned.tids(), exact) >= 0.9

    def test_workload_codes_rank_consistently(self):
        for code in ("uu", "zipf", "cor", "anti"):
            relation = tuple_workload(code, 200)
            result = rank(relation, 10)
            assert len(result) == 10
            statistics = [item.statistic for item in result]
            assert statistics == sorted(statistics)
