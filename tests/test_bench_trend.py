"""Tests for bench-history trend rendering (``repro bench trend``).

The trend reader must survive the realities of an append-only CI log:
partial writes, runs that renamed kernels (missing metrics become
gaps, not errors), and histories of one entry where no delta exists
yet.  The checked-in ``BENCH_history.jsonl`` is loaded as the ground
truth that the convention round-trips.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.trend import load_history, render_trend, trend_table

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_HISTORY = (
    REPO_ROOT / "benchmarks" / "results" / "BENCH_history.jsonl"
)


def entry(commit: str, metrics: dict) -> dict:
    return {"commit": commit, "suite": "smoke", "metrics": metrics}


class TestLoadHistory:
    def test_reads_entries_and_reports_problems(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text(
            json.dumps(entry("aaa", {"m": 1.0}))
            + "\n"
            + "{broken json\n"
            + "\n"  # blank lines are fine
            + json.dumps({"commit": "bbb"})  # no metrics
            + "\n"
            + json.dumps(entry("ccc", {"m": 2.0}))
            + "\n"
        )
        entries, problems = load_history(path)
        assert [e["commit"] for e in entries] == ["aaa", "ccc"]
        assert len(problems) == 2
        assert problems[0].startswith("line 2:")
        assert "not a history entry" in problems[1]

    def test_missing_file_is_a_problem_not_a_crash(self, tmp_path):
        entries, problems = load_history(tmp_path / "absent.jsonl")
        assert entries == []
        assert len(problems) == 1

    def test_checked_in_history_loads_clean(self):
        entries, problems = load_history(BENCH_HISTORY)
        assert problems == []
        assert entries
        assert all("metrics" in e for e in entries)


class TestTrendTable:
    def test_values_align_with_commits_and_gap_is_none(self):
        table = trend_table(
            [
                entry("aaa", {"kept": 1.0, "renamed": 5.0}),
                entry("bbb", {"kept": 2.0}),
            ]
        )
        assert table["commits"] == ["aaa", "bbb"]
        assert table["metrics"]["kept"]["values"] == [1.0, 2.0]
        assert table["metrics"]["renamed"]["values"] == [5.0, None]

    def test_delta_is_first_to_last_relative_change(self):
        table = trend_table(
            [
                entry("aaa", {"m": 2.0}),
                entry("bbb", {"m": 1.0}),
                entry("ccc", {"m": 3.0}),
            ]
        )
        assert table["metrics"]["m"]["delta"] == 0.5

    def test_delta_none_for_single_run_or_zero_baseline(self):
        single = trend_table([entry("aaa", {"m": 1.0})])
        assert single["metrics"]["m"]["delta"] is None
        zero = trend_table(
            [entry("aaa", {"m": 0.0}), entry("bbb", {"m": 4.0})]
        )
        assert zero["metrics"]["m"]["delta"] is None

    def test_last_windows_the_newest_entries(self):
        entries = [
            entry(f"c{i}", {"m": float(i)}) for i in range(5)
        ]
        table = trend_table(entries, last=2)
        assert table["commits"] == ["c3", "c4"]
        assert table["metrics"]["m"]["delta"] == (4.0 - 3.0) / 3.0

    def test_pattern_filters_metric_names(self):
        table = trend_table(
            [
                entry(
                    "aaa",
                    {
                        "a_erank/uu/n=2000/seconds": 1.0,
                        "a_erank/uu/n=2000/tuples_accessed": 9.0,
                    },
                )
            ],
            pattern="*/seconds",
        )
        assert list(table["metrics"]) == [
            "a_erank/uu/n=2000/seconds"
        ]


class TestRenderTrend:
    def test_renders_gaps_deltas_and_summary_line(self):
        text = render_trend(
            trend_table(
                [
                    entry("aaa1234", {"m": 1.0, "gone": 2.0}),
                    entry("bbb5678", {"m": 1.5}),
                ]
            )
        )
        lines = text.splitlines()
        assert "aaa1234" in lines[0] and "delta" in lines[0]
        assert any("+50.0%" in line for line in lines)
        assert any(
            "gone" in line and "-" in line for line in lines
        )
        assert lines[-1] == "2 metrics over 2 runs"

    def test_empty_history_renders_a_message(self):
        assert render_trend(trend_table([])) == "no history entries"
