"""Every concrete number the paper states, as regression fixtures.

These tests pin the reproduction to the worked examples embedded in
Sections 3, 4.2, 4.3 and 7.1 of the paper (Figures 2 and 4 and the
surrounding prose).  If any of them fails, the library no longer
implements the paper.
"""

from __future__ import annotations


import pytest

from repro.baselines import (
    brute_force_topk_answer_probabilities,
    global_topk,
    pt_k,
    u_kranks,
    u_topk,
)
from repro.core import (
    a_erank,
    attribute_expected_ranks,
    attribute_rank_distributions,
    t_erank,
    tuple_expected_ranks,
    tuple_rank_distributions,
)
from repro.models import enumerate_attribute_worlds, enumerate_tuple_worlds


class TestFigure2Worlds:
    """Possible-worlds table of Figure 2."""

    def test_world_count(self, fig2):
        assert fig2.world_count() == 4

    def test_world_probabilities(self, fig2):
        worlds = list(enumerate_attribute_worlds(fig2))
        probabilities = sorted(world.probability for world in worlds)
        assert probabilities == pytest.approx([0.16, 0.24, 0.24, 0.36])

    def test_probabilities_sum_to_one(self, fig2):
        total = sum(
            world.probability
            for world in enumerate_attribute_worlds(fig2)
        )
        assert total == pytest.approx(1.0)

    def test_specific_world(self, fig2):
        """{t1=100, t2=92, t3=85} has probability 0.4 * 0.6 * 1 = 0.24."""
        for world in enumerate_attribute_worlds(fig2):
            if world.scores == {"t1": 100, "t2": 92, "t3": 85}:
                assert world.probability == pytest.approx(0.24)
                assert world.ranking() == ["t1", "t2", "t3"]
                break
        else:
            pytest.fail("expected world not enumerated")


class TestFigure4Worlds:
    """Possible-worlds table of Figure 4."""

    def test_world_probabilities(self, fig4):
        worlds = {
            frozenset(world.appearing): world.probability
            for world in enumerate_tuple_worlds(fig4)
        }
        assert worlds[frozenset({"t1", "t2", "t3"})] == pytest.approx(0.2)
        assert worlds[frozenset({"t1", "t3", "t4"})] == pytest.approx(0.2)
        assert worlds[frozenset({"t2", "t3"})] == pytest.approx(0.3)
        assert worlds[frozenset({"t3", "t4"})] == pytest.approx(0.3)
        assert len(worlds) == 4

    def test_expected_world_size(self, fig4):
        assert fig4.expected_world_size() == pytest.approx(2.4)

    def test_rule_constrains_t2_t4(self, fig4):
        assert fig4.exclusive_with("t2", "t4")
        assert not fig4.exclusive_with("t1", "t2")


class TestExpectedRanksFigure2:
    """Section 4.3: r(t1) = 1.2, r(t2) = 0.8, r(t3) = 1.0."""

    def test_values(self, fig2):
        ranks = attribute_expected_ranks(fig2)
        assert ranks["t1"] == pytest.approx(1.2)
        assert ranks["t2"] == pytest.approx(0.8)
        assert ranks["t3"] == pytest.approx(1.0)

    def test_final_ranking(self, fig2):
        assert a_erank(fig2, 3).tids() == ("t2", "t3", "t1")


class TestExpectedRanksFigure4:
    """Section 4.3: r = (1.2, 1.4, 0.9, 1.9) -> (t3, t1, t2, t4)."""

    def test_values(self, fig4):
        ranks = tuple_expected_ranks(fig4)
        assert ranks["t1"] == pytest.approx(1.2)
        assert ranks["t2"] == pytest.approx(1.4)
        assert ranks["t3"] == pytest.approx(0.9)
        assert ranks["t4"] == pytest.approx(1.9)

    def test_final_ranking(self, fig4):
        assert t_erank(fig4, 4).tids() == ("t3", "t1", "t2", "t4")


class TestMedianRanksSection71:
    """Section 7.1's median-rank walk-through."""

    def test_figure2_rank_distribution_t1(self, fig2):
        """rank(t1) = {(0, 0.4), (1, 0), (2, 0.6)}."""
        dist = attribute_rank_distributions(fig2)["t1"]
        assert dist.probability_of(0) == pytest.approx(0.4)
        assert dist.probability_of(1) == pytest.approx(0.0)
        assert dist.probability_of(2) == pytest.approx(0.6)

    def test_figure2_medians(self, fig2):
        dists = attribute_rank_distributions(fig2)
        assert dists["t1"].median() == 2
        assert dists["t2"].median() == 1
        assert dists["t3"].median() == 1

    def test_figure2_median_ranking_matches_expected_rank(self, fig2):
        """The paper notes the Figure 2 median ranking is (t2, t3, t1),
        identical to the expected-rank ordering."""
        dists = attribute_rank_distributions(fig2)
        ordering = sorted(
            dists, key=lambda tid: (dists[tid].median(), tid)
        )
        assert ordering == ["t2", "t3", "t1"]

    def test_figure4_rank_distribution_t4(self, fig4):
        """rank(t4) = {(0, 0), (1, 0.3), (2, 0.5), (3, 0.2)}."""
        dist = tuple_rank_distributions(fig4)["t4"]
        assert dist.probability_of(0) == pytest.approx(0.0)
        assert dist.probability_of(1) == pytest.approx(0.3)
        assert dist.probability_of(2) == pytest.approx(0.5)
        assert dist.probability_of(3) == pytest.approx(0.2)

    def test_figure4_medians(self, fig4):
        dists = tuple_rank_distributions(fig4)
        medians = {tid: dist.median() for tid, dist in dists.items()}
        assert medians == {"t1": 2, "t2": 1, "t3": 1, "t4": 2}

    def test_figure4_median_ranking_differs_from_expected(self, fig4):
        """Median ranking (t2, t3, t1, t4) vs expected (t3, t1, t2, t4)."""
        from repro.core import t_mqrank

        assert t_mqrank(fig4, 4).tids() == ("t2", "t3", "t1", "t4")
        assert t_erank(fig4, 4).tids() == ("t3", "t1", "t2", "t4")


class TestUTopkExamples:
    """Section 4.2's U-Topk containment violations."""

    def test_figure2_top1_is_t1(self, fig2):
        result = u_topk(fig2, 1)
        assert result.tids() == ("t1",)
        assert result.metadata["answer_probability"] == pytest.approx(0.4)

    def test_figure2_top2_is_t2_t3(self, fig2):
        """The paper: top-2 is (t2, t3) with probability 0.36 — the
        ordered answer, distinct from (t3, t2) at 0.24."""
        result = u_topk(fig2, 2)
        assert result.tids() == ("t2", "t3")
        assert result.metadata["answer_probability"] == pytest.approx(0.36)

    def test_figure2_top2_disjoint_from_top1(self, fig2):
        assert u_topk(fig2, 1).tid_set().isdisjoint(
            u_topk(fig2, 2).tid_set()
        )

    def test_figure4_top1_is_t1(self, fig4):
        assert u_topk(fig4, 1).tids() == ("t1",)

    def test_figure4_top2_disjoint_from_top1(self, fig4):
        """Top-2 is (t2, t3) or (t3, t4) — disjoint from {t1} either way."""
        top2 = u_topk(fig4, 2).tid_set()
        assert top2 in ({"t2", "t3"}, {"t3", "t4"})
        assert "t1" not in top2

    def test_figure4_top2_support_values(self, fig4):
        support = brute_force_topk_answer_probabilities(fig4, 2)
        assert support[("t2", "t3")] == pytest.approx(0.3)
        assert support[("t3", "t4")] == pytest.approx(0.3)
        assert support[("t1", "t2")] == pytest.approx(0.2)
        assert support[("t1", "t3")] == pytest.approx(0.2)
        assert sum(support.values()) == pytest.approx(1.0)


class TestUkRanksExamples:
    """Section 4.2: U-kRanks repeats t1 and never reports t2."""

    def test_figure2_top3(self, fig2):
        assert u_kranks(fig2, 3).tids() == ("t1", "t3", "t1")

    def test_figure2_t2_never_reported(self, fig2):
        assert "t2" not in u_kranks(fig2, 3).tid_set()


class TestPTkExamples:
    """Section 4.2: PT-k with p = 0.4 on Figure 2."""

    def test_top1(self, fig2):
        assert pt_k(fig2, 1, threshold=0.4).tid_set() == {"t1"}

    def test_top2_and_top3_identical_sets(self, fig2):
        top2 = pt_k(fig2, 2, threshold=0.4).tid_set()
        top3 = pt_k(fig2, 3, threshold=0.4).tid_set()
        assert top2 == top3 == {"t1", "t2", "t3"}

    def test_exact_k_violated(self, fig2):
        assert len(pt_k(fig2, 2, threshold=0.4)) != 2


class TestGlobalTopkExamples:
    """Section 4.2: Global-Topk top-1 vs top-2 on both figures."""

    def test_figure2(self, fig2):
        assert global_topk(fig2, 1).tids() == ("t1",)
        assert global_topk(fig2, 2).tid_set() == {"t2", "t3"}

    def test_figure4(self, fig4):
        assert global_topk(fig4, 1).tids() == ("t1",)
        assert global_topk(fig4, 2).tids() == ("t3", "t2")


class TestExpectedRankMatchesDefinition:
    """Equations (1)/(2): expectation over enumerated worlds."""

    def test_figure2_from_worlds(self, fig2):
        ranks = attribute_expected_ranks(fig2)
        direct = {tid: 0.0 for tid in fig2.tids()}
        for world in enumerate_attribute_worlds(fig2):
            for tid in direct:
                direct[tid] += world.probability * world.rank_of(tid)
        for tid in direct:
            assert ranks[tid] == pytest.approx(direct[tid])

    def test_figure4_from_worlds(self, fig4):
        ranks = tuple_expected_ranks(fig4)
        direct = {tid: 0.0 for tid in fig4.tids()}
        for world in enumerate_tuple_worlds(fig4):
            for tid in direct:
                direct[tid] += world.probability * world.rank_of(tid)
        for tid in direct:
            assert ranks[tid] == pytest.approx(direct[tid])

    def test_figure4_t2_absent_rank_contributions(self, fig4):
        """The paper notes t2's ranks in the worlds where it is absent
        are 3 and 2 (it follows all appearing tuples)."""
        absent_ranks = sorted(
            world.rank_of("t2")
            for world in enumerate_tuple_worlds(fig4)
            if "t2" not in world
        )
        assert absent_ranks == [2, 3]
