"""Tests for A-ERank / T-ERank and their pruning variants (Sections 5-6)."""

from __future__ import annotations

import pytest

from repro.baselines import brute_force_expected_ranks
from repro.core import (
    a_erank,
    a_erank_prune,
    a_erank_prune_lazy,
    attribute_expected_ranks,
    attribute_expected_ranks_quadratic,
    attribute_expected_ranks_vectorized,
    t_erank,
    t_erank_prune,
    tuple_expected_ranks,
    tuple_expected_ranks_quadratic,
    tuple_expected_ranks_vectorized,
)
from repro.datagen import (
    generate_attribute_relation,
    generate_tuple_relation,
)
from repro.exceptions import PruningBoundError, RankingError
from repro.models import (
    AttributeLevelRelation,
    AttributeTuple,
    DiscretePDF,
    ExclusionRule,
    TupleLevelRelation,
    TupleLevelTuple,
)


class TestAttributeExactAgainstOracle:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("ties", ["shared", "by_index"])
    def test_random_instances(self, seed, ties):
        relation = generate_attribute_relation(5, pdf_size=3, seed=seed)
        fast = attribute_expected_ranks(relation, ties=ties)
        slow = brute_force_expected_ranks(relation, ties=ties)
        for tid in fast:
            assert fast[tid] == pytest.approx(slow[tid], abs=1e-9)

    def test_tied_scores_shared(self):
        relation = AttributeLevelRelation(
            [
                AttributeTuple("a", DiscretePDF.point(5)),
                AttributeTuple("b", DiscretePDF.point(5)),
            ]
        )
        ranks = attribute_expected_ranks(relation, ties="shared")
        assert ranks == {"a": 0.0, "b": 0.0}

    def test_tied_scores_by_index(self):
        relation = AttributeLevelRelation(
            [
                AttributeTuple("a", DiscretePDF.point(5)),
                AttributeTuple("b", DiscretePDF.point(5)),
            ]
        )
        ranks = attribute_expected_ranks(relation, ties="by_index")
        assert ranks == {"a": 0.0, "b": 1.0}

    def test_partial_tie_mixture(self):
        relation = AttributeLevelRelation(
            [
                AttributeTuple("a", DiscretePDF([5, 9], [0.5, 0.5])),
                AttributeTuple("b", DiscretePDF.point(5)),
            ]
        )
        shared = attribute_expected_ranks(relation, ties="shared")
        # b beaten only when a draws 9.
        assert shared["b"] == pytest.approx(0.5)
        assert shared["a"] == pytest.approx(0.0)
        by_index = attribute_expected_ranks(relation, ties="by_index")
        # Under index ties, a (earlier) also beats b at a tie at 5.
        assert by_index["b"] == pytest.approx(1.0)

    def test_single_tuple(self):
        relation = AttributeLevelRelation(
            [AttributeTuple("only", DiscretePDF.point(1))]
        )
        assert attribute_expected_ranks(relation) == {"only": 0.0}


class TestQuadraticBaselines:
    """The O(N^2) BFS baselines agree with the O(N log N) algorithms."""

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("ties", ["shared", "by_index"])
    def test_attribute_agreement(self, seed, ties):
        relation = generate_attribute_relation(30, pdf_size=3, seed=seed)
        fast = attribute_expected_ranks(relation, ties=ties)
        slow = attribute_expected_ranks_quadratic(relation, ties=ties)
        for tid in fast:
            assert fast[tid] == pytest.approx(slow[tid], abs=1e-9)

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("ties", ["shared", "by_index"])
    def test_tuple_agreement(self, seed, ties):
        relation = generate_tuple_relation(
            40, rule_fraction=0.5, seed=seed
        )
        fast = tuple_expected_ranks(relation, ties=ties)
        slow = tuple_expected_ranks_quadratic(relation, ties=ties)
        for tid in fast:
            assert fast[tid] == pytest.approx(slow[tid], abs=1e-9)


class TestVectorizedFastPath:
    """The numpy batch evaluation agrees with the scalar reference."""

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("ties", ["shared", "by_index"])
    def test_agreement_on_random_data(self, seed, ties):
        relation = generate_attribute_relation(40, pdf_size=4, seed=seed)
        reference = attribute_expected_ranks(relation, ties=ties)
        vectorized = attribute_expected_ranks_vectorized(
            relation, ties=ties
        )
        for tid in reference:
            assert vectorized[tid] == pytest.approx(
                reference[tid], abs=1e-9
            )

    @pytest.mark.parametrize("ties", ["shared", "by_index"])
    def test_agreement_with_heavy_ties(self, ties):
        """Integer-valued pdfs generate many cross-tuple ties."""
        relation = AttributeLevelRelation(
            AttributeTuple(
                f"t{i}",
                DiscretePDF(
                    [float(1 + (i % 3)), float(3 + (i % 2))],
                    [0.5, 0.5],
                ),
            )
            for i in range(12)
        )
        reference = attribute_expected_ranks(relation, ties=ties)
        vectorized = attribute_expected_ranks_vectorized(
            relation, ties=ties
        )
        for tid in reference:
            assert vectorized[tid] == pytest.approx(
                reference[tid], abs=1e-9
            )

    def test_single_tuple(self):
        relation = AttributeLevelRelation(
            [AttributeTuple("only", DiscretePDF([1, 2], [0.5, 0.5]))]
        )
        assert attribute_expected_ranks_vectorized(relation) == {
            "only": 0.0
        }

    def test_paper_example(self, fig2):
        vectorized = attribute_expected_ranks_vectorized(fig2)
        assert vectorized["t1"] == pytest.approx(1.2)
        assert vectorized["t2"] == pytest.approx(0.8)
        assert vectorized["t3"] == pytest.approx(1.0)


class TestAErankResult:
    def test_orders_by_rank(self, fig2):
        result = a_erank(fig2, 3)
        statistics = [item.statistic for item in result]
        assert statistics == sorted(statistics)

    def test_k_larger_than_n(self, fig2):
        assert len(a_erank(fig2, 10)) == 3

    def test_k_zero(self, fig2):
        assert len(a_erank(fig2, 0)) == 0

    def test_negative_k_rejected(self, fig2):
        with pytest.raises(RankingError):
            a_erank(fig2, -1)

    def test_statistics_cover_all_tuples(self, fig2):
        result = a_erank(fig2, 1)
        assert set(result.statistics) == set(fig2.tids())

    def test_deterministic_tie_break_by_insertion(self):
        relation = AttributeLevelRelation(
            [
                AttributeTuple("late", DiscretePDF.point(5)),
                AttributeTuple("early", DiscretePDF.point(5)),
            ]
        )
        # Equal expected ranks (shared ties): insertion order wins.
        assert a_erank(relation, 2).tids() == ("late", "early")


class TestAErankPrune:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_exact_topk(self, seed):
        relation = generate_attribute_relation(
            300, pdf_size=4, seed=seed
        )
        exact = a_erank(relation, 10)
        pruned = a_erank_prune(relation, 10)
        assert pruned.tids() == exact.tids()

    def test_accesses_fewer_tuples(self):
        relation = generate_attribute_relation(
            1000, pdf_size=4, score_distribution="zipf", seed=1
        )
        pruned = a_erank_prune(relation, 5)
        assert pruned.metadata["tuples_accessed"] < relation.size
        assert pruned.metadata["halted_early"]

    def test_rejects_nonpositive_scores(self):
        relation = AttributeLevelRelation(
            [
                AttributeTuple("a", DiscretePDF([-1, 5], [0.5, 0.5])),
                AttributeTuple("b", DiscretePDF.point(3)),
            ]
        )
        with pytest.raises(PruningBoundError):
            a_erank_prune(relation, 1)

    def test_k_zero_accesses_nothing(self, fig2):
        result = a_erank_prune(fig2, 0)
        assert len(result) == 0
        assert result.metadata["tuples_accessed"] == 0

    def test_exhaustive_scan_is_exact(self, fig2):
        """On a tiny relation the scan sees everything and must agree."""
        pruned = a_erank_prune(fig2, 2)
        assert pruned.tids() == a_erank(fig2, 2).tids()

    def test_upper_bounds_are_sound(self):
        """Every pruned statistic (computed on the curtailed db) must be
        dominated by the paper's r+ bound — indirectly validated by
        checking the reported top-k answers carry correct curtailed
        statistics against a full recomputation."""
        relation = generate_attribute_relation(200, pdf_size=3, seed=9)
        pruned = a_erank_prune(relation, 8)
        exact = attribute_expected_ranks(relation)
        # Curtailed ranks underestimate: fewer competitors can only
        # lower the count of better tuples.
        for item in pruned:
            assert item.statistic <= exact[item.tid] + 1e-9


class TestAErankPruneLazy:
    """The batched universe-based variant (paper Section 5.2's closing
    optimisation) agrees with the incremental scan."""

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_exact_topk(self, seed):
        relation = generate_attribute_relation(
            300, pdf_size=4, seed=seed
        )
        exact = a_erank(relation, 10)
        lazy = a_erank_prune_lazy(relation, 10)
        assert lazy.tids() == exact.tids()

    def test_access_overshoot_bounded(self):
        relation = generate_attribute_relation(
            800, pdf_size=4, score_distribution="zipf", seed=1
        )
        incremental = a_erank_prune(relation, 5)
        lazy = a_erank_prune_lazy(relation, 5, check_every=16)
        assert (
            lazy.metadata["tuples_accessed"]
            < incremental.metadata["tuples_accessed"] + 16
        )
        assert lazy.metadata["halted_early"]

    def test_rejects_nonpositive_scores(self):
        relation = AttributeLevelRelation(
            [
                AttributeTuple("a", DiscretePDF([0.0], [1.0])),
                AttributeTuple("b", DiscretePDF.point(3)),
            ]
        )
        with pytest.raises(PruningBoundError):
            a_erank_prune_lazy(relation, 1)

    def test_parameter_validation(self, fig2):
        with pytest.raises(RankingError):
            a_erank_prune_lazy(fig2, -1)
        with pytest.raises(RankingError):
            a_erank_prune_lazy(fig2, 1, check_every=0)

    def test_k_zero(self, fig2):
        result = a_erank_prune_lazy(fig2, 0)
        assert len(result) == 0
        assert result.metadata["tuples_accessed"] == 0


class TestTupleExactAgainstOracle:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("ties", ["shared", "by_index"])
    def test_random_instances(self, seed, ties):
        relation = generate_tuple_relation(
            7, rule_fraction=0.6, rule_size=2, seed=seed
        )
        fast = tuple_expected_ranks(relation, ties=ties)
        slow = brute_force_expected_ranks(relation, ties=ties)
        for tid in fast:
            assert fast[tid] == pytest.approx(slow[tid], abs=1e-9)

    @pytest.mark.parametrize("seed", range(4))
    def test_three_member_rules(self, seed):
        relation = generate_tuple_relation(
            9, rule_fraction=1.0, rule_size=3, seed=seed
        )
        fast = tuple_expected_ranks(relation)
        slow = brute_force_expected_ranks(relation)
        for tid in fast:
            assert fast[tid] == pytest.approx(slow[tid], abs=1e-9)

    def test_tied_scores_against_oracle(self):
        relation = TupleLevelRelation(
            [
                TupleLevelTuple("a", 5.0, 0.6),
                TupleLevelTuple("b", 5.0, 0.7),
                TupleLevelTuple("c", 3.0, 0.5),
            ]
        )
        for ties in ("shared", "by_index"):
            fast = tuple_expected_ranks(relation, ties=ties)
            slow = brute_force_expected_ranks(relation, ties=ties)
            for tid in fast:
                assert fast[tid] == pytest.approx(slow[tid], abs=1e-9)

    def test_certain_relation_is_positional(self, certain_tuple):
        assert tuple_expected_ranks(certain_tuple) == {
            "a": 0.0,
            "b": 1.0,
            "c": 2.0,
        }

    def test_zero_probability_tuple(self):
        relation = TupleLevelRelation(
            [
                TupleLevelTuple("never", 10.0, 0.0),
                TupleLevelTuple("always", 5.0, 1.0),
            ]
        )
        ranks = tuple_expected_ranks(relation)
        # "never" is always absent: its rank is always |W| = 1.
        assert ranks["never"] == pytest.approx(1.0)
        assert ranks["always"] == pytest.approx(0.0)


class TestTupleVectorizedFastPath:
    """The numpy batch pass agrees with the scalar T-ERank reference."""

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("ties", ["shared", "by_index"])
    def test_agreement_on_random_data(self, seed, ties):
        relation = generate_tuple_relation(
            60, rule_fraction=0.6, seed=seed
        )
        reference = tuple_expected_ranks(relation, ties=ties)
        vectorized = tuple_expected_ranks_vectorized(
            relation, ties=ties
        )
        for tid in reference:
            assert vectorized[tid] == pytest.approx(
                reference[tid], abs=1e-9
            )

    @pytest.mark.parametrize("ties", ["shared", "by_index"])
    def test_agreement_with_ties_and_rules(self, ties):
        relation = TupleLevelRelation(
            [
                TupleLevelTuple("a", 5.0, 0.6),
                TupleLevelTuple("b", 5.0, 0.7),
                TupleLevelTuple("c", 3.0, 0.2),
                TupleLevelTuple("d", 3.0, 0.8),
            ],
            rules=[ExclusionRule("r", ["c", "d"])],
        )
        reference = tuple_expected_ranks(relation, ties=ties)
        vectorized = tuple_expected_ranks_vectorized(
            relation, ties=ties
        )
        for tid in reference:
            assert vectorized[tid] == pytest.approx(reference[tid])

    def test_paper_example(self, fig4):
        vectorized = tuple_expected_ranks_vectorized(fig4)
        assert vectorized["t1"] == pytest.approx(1.2)
        assert vectorized["t2"] == pytest.approx(1.4)
        assert vectorized["t3"] == pytest.approx(0.9)
        assert vectorized["t4"] == pytest.approx(1.9)

    def test_empty_relation(self):
        assert tuple_expected_ranks_vectorized(
            TupleLevelRelation([])
        ) == {}


class TestTErankPrune:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_exact_topk(self, seed):
        relation = generate_tuple_relation(
            400, rule_fraction=0.4, seed=seed
        )
        exact = t_erank(relation, 10)
        pruned = t_erank_prune(relation, 10)
        assert pruned.tids() == exact.tids()
        for item in pruned:
            assert item.statistic == pytest.approx(
                exact.statistics[item.tid]
            )

    def test_prunes_aggressively(self):
        relation = generate_tuple_relation(2000, seed=3)
        pruned = t_erank_prune(relation, 10)
        assert pruned.metadata["tuples_accessed"] < relation.size // 2
        assert pruned.metadata["halted_early"]

    def test_seen_ranks_are_exact(self):
        relation = generate_tuple_relation(
            100, rule_fraction=0.5, seed=4
        )
        pruned = t_erank_prune(relation, 5)
        exact = tuple_expected_ranks(relation)
        for tid, value in pruned.statistics.items():
            assert value == pytest.approx(exact[tid])

    def test_unseen_bound_soundness(self):
        """Every unseen tuple's exact rank is >= every reported rank."""
        relation = generate_tuple_relation(500, seed=8)
        pruned = t_erank_prune(relation, 10)
        exact = tuple_expected_ranks(relation)
        seen = set(pruned.statistics)
        worst_reported = max(item.statistic for item in pruned)
        for tid, value in exact.items():
            if tid not in seen:
                assert value >= worst_reported - 1e-9

    def test_k_zero(self, fig4):
        assert len(t_erank_prune(fig4, 0)) == 0

    def test_paper_example(self, fig4):
        assert t_erank_prune(fig4, 2).tids() == t_erank(fig4, 2).tids()
