"""Tests for the mini probabilistic database engine."""

from __future__ import annotations

import pytest

from repro.engine import (
    AccessCounter,
    ProbabilisticDatabase,
    SortedAccessCursor,
    TopKPlanner,
    expected_score_cursor,
    load_attribute_csv,
    load_json,
    load_tuple_csv,
    save_attribute_csv,
    save_json,
    save_tuple_csv,
    score_cursor,
)
from repro.exceptions import (
    EngineError,
    RelationNotFoundError,
    SchemaError,
)
from repro.models import (
    AttributeLevelRelation,
    AttributeTuple,
    DiscretePDF,
    TupleLevelRelation,
    TupleLevelTuple,
)


class TestDatabaseCatalog:
    def test_create_and_query(self, fig2, fig4):
        db = ProbabilisticDatabase()
        db.create_relation("attr", fig2)
        db.create_relation("tup", fig4)
        assert set(db.relation_names()) == {"attr", "tup"}
        assert "attr" in db
        assert len(db) == 2
        assert db.topk("attr", 2).tids() == ("t2", "t3")
        assert db.topk("tup", 1, method="u_topk").tids() == ("t1",)

    def test_duplicate_name_rejected(self, fig2):
        db = ProbabilisticDatabase()
        db.create_relation("r", fig2)
        with pytest.raises(EngineError):
            db.create_relation("r", fig2)

    def test_empty_name_rejected(self, fig2):
        with pytest.raises(EngineError):
            ProbabilisticDatabase().create_relation("", fig2)

    def test_missing_relation(self):
        db = ProbabilisticDatabase()
        with pytest.raises(RelationNotFoundError):
            db.relation("ghost")
        with pytest.raises(RelationNotFoundError):
            db.drop_relation("ghost")

    def test_replace_and_drop(self, fig2, fig4):
        db = ProbabilisticDatabase()
        db.create_relation("r", fig2)
        db.replace_relation("r", fig4)
        assert db.describe("r")["model"] == "tuple"
        db.drop_relation("r")
        assert "r" not in db

    def test_describe(self, fig2, fig4):
        db = ProbabilisticDatabase()
        db.create_relation("attr", fig2)
        db.create_relation("tup", fig4)
        attr = db.describe("attr")
        assert attr["possible_worlds"] == 4
        tup = db.describe("tup")
        assert tup["expected_world_size"] == pytest.approx(2.4)
        assert tup["rules"] == 3

    def test_query_log(self, fig2):
        db = ProbabilisticDatabase()
        db.create_relation("r", fig2)
        db.topk("r", 2)
        db.topk("r", 1, method="u_topk")
        log = db.query_log
        assert len(log) == 2
        assert log[0].method == "expected_rank"
        assert log[0].answer == ("t2", "t3")
        assert log[1].method == "u_topk"
        db.clear_query_log()
        assert db.query_log == ()

    def test_save_and_load_round_trip(self, fig2, fig4, tmp_path):
        db = ProbabilisticDatabase()
        db.create_relation("attr", fig2)
        db.create_relation("tup", fig4)
        db.save(tmp_path / "catalog")
        loaded = ProbabilisticDatabase.load(tmp_path / "catalog")
        assert set(loaded.relation_names()) == {"attr", "tup"}
        assert loaded.topk("attr", 3).tids() == db.topk("attr", 3).tids()
        assert loaded.topk("tup", 4).tids() == db.topk("tup", 4).tids()

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(EngineError):
            ProbabilisticDatabase.load(tmp_path / "nope")


class TestSerialization:
    def test_attribute_csv_round_trip(self, fig2, tmp_path):
        path = tmp_path / "attr.csv"
        save_attribute_csv(fig2, path)
        loaded = load_attribute_csv(path)
        assert loaded.tids() == fig2.tids()
        for tid in fig2.tids():
            assert loaded.tuple_by_id(tid).score == fig2.tuple_by_id(
                tid
            ).score

    def test_tuple_csv_round_trip(self, fig4, tmp_path):
        path = tmp_path / "tup.csv"
        save_tuple_csv(fig4, path)
        loaded = load_tuple_csv(path)
        assert loaded.tids() == fig4.tids()
        assert loaded.rule_of("t2").tids == ("t2", "t4")
        assert loaded.tuple_by_id("t1").probability == pytest.approx(0.4)

    def test_json_round_trip_preserves_attributes(self, tmp_path):
        relation = TupleLevelRelation(
            [TupleLevelTuple("x", 5.0, 0.5, {"source": "radar"})]
        )
        path = tmp_path / "rel.json"
        save_json(relation, path)
        loaded = load_json(path)
        assert loaded.tuple_by_id("x").attributes == {"source": "radar"}

    def test_attribute_json_round_trip(self, fig2, tmp_path):
        path = tmp_path / "rel.json"
        save_json(fig2, path)
        loaded = load_json(path)
        assert isinstance(loaded, AttributeLevelRelation)
        assert loaded.tuple_by_id("t1").score == fig2.tuple_by_id(
            "t1"
        ).score

    def test_csv_missing_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("tid,value\na,1\n")
        with pytest.raises(SchemaError):
            load_attribute_csv(path)

    def test_csv_bad_numeric(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("tid,value,probability\na,oops,1.0\n")
        with pytest.raises(SchemaError):
            load_attribute_csv(path)

    def test_json_unknown_model(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"model": "martian", "tuples": []}')
        with pytest.raises(SchemaError):
            load_json(path)


class TestAccessInstrumentation:
    def test_cursor_counts(self, fig2):
        counter = AccessCounter()
        cursor = expected_score_cursor(fig2, counter)
        first = next(cursor)
        assert first.tid == "t2"  # highest expected score
        assert counter.count == 1
        assert cursor.remaining() == 2
        list(cursor)
        assert counter.count == 3
        assert cursor.exhausted

    def test_score_cursor_order(self, fig4):
        cursor = score_cursor(fig4)
        tids = [row.tid for row in cursor]
        assert tids == ["t1", "t2", "t3", "t4"]

    def test_counter_reset(self):
        counter = AccessCounter()
        counter.charge()
        counter.reset()
        assert counter.count == 0

    def test_negative_latency_rejected(self):
        with pytest.raises(EngineError):
            AccessCounter(latency_seconds=-1.0)

    def test_cursor_stops(self):
        cursor = SortedAccessCursor([1, 2])
        assert list(cursor) == [1, 2]
        with pytest.raises(StopIteration):
            next(cursor)


class TestPlanner:
    def test_cheap_access_stays_exact(self, fig2):
        plan = TopKPlanner().plan(fig2, 2)
        assert plan.method == "expected_rank"
        assert "cheap" in plan.reason

    def test_expensive_access_prefers_prune(self, fig2):
        plan = TopKPlanner(expensive_access=True).plan(fig2, 2)
        assert plan.method == "expected_rank_prune"

    def test_nonpositive_scores_block_attribute_pruning(self):
        relation = AttributeLevelRelation(
            [AttributeTuple("a", DiscretePDF([-5.0], [1.0]))]
        )
        plan = TopKPlanner(expensive_access=True).plan(relation, 1)
        assert plan.method == "expected_rank"
        assert "Markov" in plan.reason

    def test_unprunable_method_stays_exact(self, fig4):
        plan = TopKPlanner(expensive_access=True).plan(
            fig4, 2, method="u_topk"
        )
        assert plan.method == "u_topk"

    def test_median_gets_quantile_prune(self, fig4):
        plan = TopKPlanner(expensive_access=True).plan(
            fig4, 2, method="median_rank"
        )
        assert plan.method == "quantile_rank_prune"
        assert plan.options["phi"] == 0.5

    def test_boundary_phi_blocks_pruning(self, fig4):
        plan = TopKPlanner(expensive_access=True).plan(
            fig4, 2, method="quantile_rank", phi=1.0
        )
        assert plan.method == "quantile_rank"

    def test_execute_matches_exact_answer(self, fig4):
        planner = TopKPlanner(expensive_access=True)
        result = planner.execute(fig4, 2)
        assert result.tids() == ("t3", "t1")

    def test_negative_k(self, fig4):
        with pytest.raises(EngineError):
            TopKPlanner().plan(fig4, -1)
