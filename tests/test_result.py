"""Unit tests for :class:`repro.core.TopKResult`."""

from __future__ import annotations

import pytest

from repro.core.result import RankedItem, TopKResult
from repro.exceptions import RankingError


def make_result(tids, method="demo", statistics=None):
    items = tuple(
        RankedItem(tid=tid, position=index, statistic=float(index))
        for index, tid in enumerate(tids)
    )
    return TopKResult(
        method=method,
        k=len(tids),
        items=items,
        statistics=statistics or {},
    )


class TestTopKResult:
    def test_sequence_protocol(self):
        result = make_result(["a", "b"])
        assert len(result) == 2
        assert [item.tid for item in result] == ["a", "b"]
        assert result[1].tid == "b"

    def test_tids_and_tid_set(self):
        result = make_result(["a", "b", "a"])
        assert result.tids() == ("a", "b", "a")
        assert result.tid_set() == {"a", "b"}

    def test_positions_must_be_sequential(self):
        with pytest.raises(RankingError):
            TopKResult(
                method="demo",
                k=1,
                items=(RankedItem(tid="a", position=5),),
            )

    def test_statistic_of(self):
        result = make_result(["a"], statistics={"a": 1.5, "b": 2.5})
        assert result.statistic_of("b") == 2.5
        with pytest.raises(RankingError):
            result.statistic_of("zzz")

    def test_prefix(self):
        result = make_result(["a", "b", "c"])
        prefix = result.prefix(2)
        assert prefix.tids() == ("a", "b")
        assert prefix.k == 2
        with pytest.raises(RankingError):
            result.prefix(-1)

    def test_describe_with_and_without_statistics(self):
        with_stats = make_result(["a"])
        assert "a(0)" in with_stats.describe()
        bare = TopKResult(
            method="demo",
            k=1,
            items=(RankedItem(tid="a", position=0),),
        )
        assert "a" in bare.describe()
