"""Tests for the resilience primitives in :mod:`repro.robust`.

Everything runs with injected clocks and sleeps: no test here waits on
real time, which keeps the retry/deadline logic exhaustively checkable
in milliseconds.
"""

from __future__ import annotations

import random

import pytest

from repro.engine.access import ResilientCursor
from repro.exceptions import (
    DeadlineExceededError,
    EngineError,
    TransientAccessError,
)
from repro.robust import (
    CORRUPTION_TOKEN,
    Deadline,
    FaultInjector,
    FaultyCursor,
    RetryPolicy,
    call_with_retry,
    fault_seed_from_env,
)


class FakeClock:
    """A monotonic clock advanced by hand (or per ``sleep``)."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.now += seconds


class TestRetryPolicy:
    def test_rejects_bad_parameters(self):
        with pytest.raises(EngineError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(EngineError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(EngineError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(EngineError):
            RetryPolicy(attempt_timeout=0.0)

    def test_backoff_envelope_without_jitter(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=False
        )
        rng = random.Random(0)
        assert policy.backoff(1, rng) == pytest.approx(0.1)
        assert policy.backoff(2, rng) == pytest.approx(0.2)
        assert policy.backoff(3, rng) == pytest.approx(0.4)
        # Capped by max_delay from here on.
        assert policy.backoff(4, rng) == pytest.approx(0.5)
        assert policy.backoff(10, rng) == pytest.approx(0.5)

    def test_jittered_backoff_stays_inside_envelope(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=True
        )
        rng = random.Random(42)
        for retry_number in range(1, 20):
            envelope = min(0.1 * 2.0 ** (retry_number - 1), 0.5)
            for _ in range(50):
                assert 0.0 <= policy.backoff(retry_number, rng) <= envelope

    def test_backoff_rejects_retry_zero(self):
        with pytest.raises(EngineError):
            RetryPolicy().backoff(0, random.Random(0))


class TestDeadline:
    def test_unbounded(self):
        deadline = Deadline(None)
        assert deadline.unbounded
        assert deadline.remaining() == float("inf")
        assert not deadline.expired()
        deadline.check("anything")  # never raises

    def test_counts_down_on_injected_clock(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        assert deadline.remaining() == pytest.approx(1.0)
        clock.now = 0.6
        assert deadline.remaining() == pytest.approx(0.4)
        assert not deadline.expired()
        clock.now = 1.2
        assert deadline.remaining() == 0.0
        assert deadline.expired()
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.check("the query")
        assert "the query" in str(excinfo.value)

    def test_from_ms(self):
        clock = FakeClock()
        deadline = Deadline.from_ms(250.0, clock=clock)
        assert deadline.budget_seconds == pytest.approx(0.25)
        assert Deadline.from_ms(None).unbounded

    def test_rejects_negative_budget(self):
        with pytest.raises(EngineError):
            Deadline(-1.0)


class Flaky:
    """A callable that fails ``failures`` times, then returns."""

    def __init__(self, failures, error=TransientAccessError("boom")):
        self.failures = failures
        self.error = error
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error
        return "ok"


class TestCallWithRetry:
    def test_success_first_attempt(self):
        result, stats = call_with_retry(
            "op", lambda: 7, sleep=lambda _: None
        )
        assert result == 7
        assert stats.attempts == 1
        assert stats.faults_survived == 0
        assert stats.backoff_seconds == 0.0

    def test_survives_transient_failures(self):
        flaky = Flaky(2)
        result, stats = call_with_retry(
            "op",
            flaky,
            policy=RetryPolicy(max_retries=3, base_delay=0.0),
            sleep=lambda _: None,
        )
        assert result == "ok"
        assert stats.attempts == 3
        assert stats.faults_survived == 2
        assert len(stats.errors) == 2

    def test_retries_raw_oserror(self):
        flaky = Flaky(1, error=OSError("disk hiccup"))
        result, stats = call_with_retry(
            "op",
            flaky,
            policy=RetryPolicy(max_retries=1, base_delay=0.0),
            sleep=lambda _: None,
        )
        assert result == "ok"
        assert stats.faults_survived == 1

    def test_exhaustion_reraises_last_error(self):
        flaky = Flaky(10)
        with pytest.raises(TransientAccessError):
            call_with_retry(
                "op",
                flaky,
                policy=RetryPolicy(max_retries=2, base_delay=0.0),
                sleep=lambda _: None,
            )
        assert flaky.calls == 3  # 1 try + 2 retries

    def test_non_retriable_error_propagates_immediately(self):
        calls = []

        def bad():
            calls.append(1)
            raise ValueError("genuine bug")

        with pytest.raises(ValueError):
            call_with_retry("op", bad, sleep=lambda _: None)
        assert len(calls) == 1

    def test_backoff_exceeding_deadline_fails_fast(self):
        clock = FakeClock()
        deadline = Deadline(0.1, clock=clock)
        policy = RetryPolicy(
            max_retries=5, base_delay=1.0, jitter=False
        )
        with pytest.raises(DeadlineExceededError):
            call_with_retry(
                "op",
                Flaky(10),
                policy=policy,
                deadline=deadline,
                sleep=clock.sleep,
            )
        # The 1 s backoff was never slept: it would blow the budget.
        assert clock.now == 0.0

    def test_expired_deadline_blocks_any_attempt(self):
        clock = FakeClock()
        deadline = Deadline(0.05, clock=clock)
        clock.now = 1.0
        flaky = Flaky(0)
        with pytest.raises(DeadlineExceededError):
            call_with_retry(
                "op", flaky, deadline=deadline, sleep=clock.sleep
            )
        assert flaky.calls == 0

    def test_backoff_accumulates_in_stats(self):
        clock = FakeClock()
        policy = RetryPolicy(
            max_retries=2, base_delay=0.1, jitter=False
        )
        result, stats = call_with_retry(
            "op",
            Flaky(2),
            policy=policy,
            sleep=clock.sleep,
        )
        assert result == "ok"
        assert stats.backoff_seconds == pytest.approx(0.1 + 0.2)
        assert clock.now == pytest.approx(0.3)

    @pytest.mark.timeout(20)
    def test_attempt_timeout_is_retried(self):
        import time as real_time

        calls = []

        def slow_then_fast():
            calls.append(1)
            if len(calls) == 1:
                real_time.sleep(0.5)
            return "done"

        policy = RetryPolicy(
            max_retries=1, base_delay=0.0, attempt_timeout=0.05
        )
        result, stats = call_with_retry(
            "op", slow_then_fast, policy=policy, sleep=lambda _: None
        )
        assert result == "done"
        assert stats.timeouts == 1
        assert stats.attempts == 2


class TestFaultInjector:
    def test_rejects_bad_rates(self):
        with pytest.raises(EngineError):
            FaultInjector(error_rate=1.5)
        with pytest.raises(EngineError):
            FaultInjector(drop_rate=-0.1)
        with pytest.raises(EngineError):
            FaultInjector(latency_seconds=-1.0)
        with pytest.raises(EngineError):
            FaultInjector(fault_budget=-1)

    def test_zero_rates_inject_nothing(self):
        injector = FaultInjector(seed=3)
        for _ in range(100):
            injector.pulse()
        assert injector.total_injected == 0

    def test_certain_error_rate_always_raises(self):
        injector = FaultInjector(error_rate=1.0, seed=0)
        for _ in range(5):
            with pytest.raises(TransientAccessError):
                injector.pulse("reading")
        assert injector.injected["error"] == 5

    def test_same_seed_same_fault_sequence(self):
        def trace(injector):
            outcomes = []
            for _ in range(200):
                try:
                    injector.pulse()
                    outcomes.append("ok")
                except TransientAccessError:
                    outcomes.append("err")
            return outcomes

        first = trace(FaultInjector(error_rate=0.3, seed=11))
        second = trace(FaultInjector(error_rate=0.3, seed=11))
        different = trace(FaultInjector(error_rate=0.3, seed=12))
        assert first == second
        assert first != different
        assert "err" in first and "ok" in first

    def test_budget_silences_injector(self):
        injector = FaultInjector(
            error_rate=1.0, seed=0, fault_budget=2
        )
        for _ in range(2):
            with pytest.raises(TransientAccessError):
                injector.pulse()
        assert injector.exhausted
        injector.pulse()  # budget spent: no more faults
        assert injector.total_injected == 2

    def test_latency_counts_and_sleeps(self):
        slept = []
        injector = FaultInjector(
            latency_rate=1.0,
            latency_seconds=0.25,
            seed=0,
            sleep=slept.append,
        )
        injector.pulse()
        injector.latency_pulse()
        assert slept == [0.25, 0.25]
        assert injector.injected["latency"] == 2
        assert injector.injected["error"] == 0

    def test_mangle_row_drops_and_corrupts(self):
        dropper = FaultInjector(drop_rate=1.0, seed=0)
        assert dropper.mangle_row({"tid": "t1"}) is None

        corrupter = FaultInjector(corrupt_rate=1.0, seed=0)
        row = {"tid": "t1", "score": "10"}
        mangled = corrupter.mangle_row(row)
        assert mangled is not None
        assert CORRUPTION_TOKEN in mangled.values()
        # The original row is never mutated in place.
        assert CORRUPTION_TOKEN not in row.values()

    def test_reset_replays_from_seed(self):
        injector = FaultInjector(error_rate=0.5, seed=9)
        first = [injector._fire("error", 0.5) for _ in range(50)]
        injector.reset()
        assert injector.total_injected == 0
        second = [injector._fire("error", 0.5) for _ in range(50)]
        assert first == second

    def test_seed_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_SEED", raising=False)
        assert fault_seed_from_env(5) == 5
        monkeypatch.setenv("REPRO_FAULT_SEED", "123")
        assert fault_seed_from_env() == 123
        monkeypatch.setenv("REPRO_FAULT_SEED", "noise")
        with pytest.raises(EngineError):
            fault_seed_from_env()


class TestFaultyCursor:
    def test_failed_access_does_not_consume_the_row(self):
        injector = FaultInjector(error_rate=0.5, seed=1)
        cursor = FaultyCursor(iter([1, 2, 3]), injector)
        collected = []
        while True:
            try:
                collected.append(next(cursor))
            except TransientAccessError:
                continue  # a bare retry must see the same row
            except StopIteration:
                break
        assert collected == [1, 2, 3]

    def test_clean_iteration_when_quiet(self):
        injector = FaultInjector(seed=0)
        assert list(FaultyCursor(iter("abc"), injector)) == list("abc")


class TestResilientCursor:
    def test_recovers_every_row_through_faults(self):
        injector = FaultInjector(error_rate=0.4, seed=7)
        flaky = FaultyCursor(iter(range(20)), injector)
        cursor = ResilientCursor(
            flaky,
            policy=RetryPolicy(max_retries=10, base_delay=0.0),
            sleep=lambda _: None,
        )
        assert list(cursor) == list(range(20))
        assert cursor.faults_survived == injector.injected["error"]
        assert cursor.faults_survived > 0
        assert cursor.attempts == 20 + cursor.faults_survived

    def test_exhausted_retries_surface_the_fault(self):
        injector = FaultInjector(error_rate=1.0, seed=0)
        cursor = ResilientCursor(
            FaultyCursor(iter([1]), injector),
            policy=RetryPolicy(max_retries=2, base_delay=0.0),
            sleep=lambda _: None,
        )
        with pytest.raises(TransientAccessError):
            next(cursor)

    def test_deadline_expiry_stops_iteration(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.now = 2.0
        cursor = ResilientCursor(
            iter([1, 2]), deadline=deadline, sleep=clock.sleep
        )
        with pytest.raises(DeadlineExceededError):
            next(cursor)
