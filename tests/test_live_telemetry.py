"""Tests for the live-telemetry layer (ISSUE 8).

Covers the four new surfaces and the hardened export, each on fake
clocks or in-memory streams so nothing here reads the wall clock or
opens a port except the admin round-trip tests (loopback, port 0):

* export hardening — label/help escaping round-trips, exemplar
  emission and parsing, the per-metric label-cardinality cap;
* structured logging — envelope fields, trace-id/tenant correlation,
  threshold filtering, free-while-unconfigured;
* the flight recorder — ring wraparound, per-trace eviction,
  trigger-on-root-close (complete span tree), typed anomaly hooks,
  rate limiting, dump determinism under PYTHONHASHSEED;
* the SLO engine — burn-rate window math, state transitions, gauge
  export, spec parsing and validation;
* the admin plane — every endpoint end-to-end over a real socket.
"""

from __future__ import annotations

import asyncio
import io
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.engine.database import ProbabilisticDatabase
from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceededError,
    EngineError,
    OverloadedError,
)
from repro.obs import (
    FlightRecorder,
    MetricsRegistry,
    configure_logging,
    emit_event,
    get_flight_recorder,
    get_registry,
    notify_anomaly,
    parse_prometheus,
    set_flight_recorder,
    set_registry,
    to_openmetrics,
    to_prometheus,
    trace,
)
from repro.obs.logging import bind_tenant, get_logger
from repro.obs.slo import SLOEngine, SLOSpec, parse_slo_specs
from repro.obs.costs import CostLedger, set_cost_ledger
from repro.obs.profiler import validate_speedscope
from repro.serve import ServeRequest, ServingCore, serve_admin
from repro.serve.admin import (
    handle_admin_request,
    handle_profile_request,
)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def registry():
    fresh = MetricsRegistry(enabled=True)
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


@pytest.fixture
def log_stream():
    stream = io.StringIO()
    configure_logging(stream, level="debug", clock=lambda: 1000.0)
    yield stream
    configure_logging(None)


def log_records(stream: io.StringIO) -> list[dict]:
    return [
        json.loads(line)
        for line in stream.getvalue().splitlines()
    ]


# ----------------------------------------------------------------------
# Export hardening
# ----------------------------------------------------------------------


class TestExportHardening:
    def test_label_values_escape_and_round_trip(self, registry):
        hostile = 'quo"ta\nback\\slash'
        registry.counter("serve.shed", {"reason": hostile}).inc(3)
        text = to_prometheus(registry)
        assert '\\"' in text and "\\n" in text and "\\\\" in text
        families = parse_prometheus(text)
        sample = families["repro_serve_shed_total"]["samples"][0]
        assert sample["labels"]["reason"] == hostile
        assert sample["value"] == 3.0

    def test_help_strings_escape_and_round_trip(self, registry):
        registry.describe("serve.shed", 'line\nbreak \\ "quote"')
        registry.counter("serve.shed").inc()
        families = parse_prometheus(to_prometheus(registry))
        assert (
            families["repro_serve_shed_total"]["help"]
            == 'line\nbreak \\ "quote"'
        )

    def test_exemplars_render_and_parse(self, registry):
        registry.histogram(
            "serve.latency", {"tenant": "acme"}
        ).observe(0.01, exemplar={"trace_id": "abc123"})
        openmetrics = to_openmetrics(registry)
        assert openmetrics.rstrip().endswith("# EOF")
        families = parse_prometheus(openmetrics)
        bearing = [
            sample
            for sample in families["repro_serve_latency"]["samples"]
            if "exemplar" in sample
        ]
        assert len(bearing) == 1
        assert (
            bearing[0]["exemplar"]["labels"]["trace_id"] == "abc123"
        )
        assert bearing[0]["exemplar"]["value"] == 0.01
        # The classic 0.0.4 exposition must NOT carry exemplars.
        assert " # {" not in to_prometheus(registry)

    def test_cardinality_cap_drops_and_counts(self):
        registry = MetricsRegistry(enabled=True, label_cardinality=3)
        previous = set_registry(registry)
        try:
            for index in range(10):
                registry.counter(
                    "serve.requests", {"tenant": f"t{index}"}
                ).inc()
            snapshot = registry.snapshot()["counters"]
            kept = [
                key
                for key in snapshot
                if key.startswith("serve.requests{")
            ]
            assert len(kept) == 3
            assert snapshot["obs.dropped_labels"] == 7
            text = to_prometheus(registry)
            assert "repro_obs_dropped_labels_total 7" in text
        finally:
            set_registry(previous)

    def test_unlabelled_names_are_not_capped(self):
        registry = MetricsRegistry(enabled=True, label_cardinality=2)
        for index in range(10):
            registry.counter(f"metric.{index}").inc()
        assert len(registry.snapshot()["counters"]) == 10


# ----------------------------------------------------------------------
# Structured logging
# ----------------------------------------------------------------------


class TestStructuredLogging:
    def test_record_envelope_and_field_merge(self, log_stream):
        get_logger("repro.test").warning(
            "serve.shed", reason="quota", depth=3
        )
        (record,) = log_records(log_stream)
        assert record == {
            "event": "serve.shed",
            "level": "warning",
            "logger": "repro.test",
            "reason": "quota",
            "depth": 3,
            "tenant": None,
            "trace_id": None,
            "ts": 1000.0,
        }

    def test_trace_and_tenant_correlation(self, registry, log_stream):
        with bind_tenant("acme"), trace("outer") as span:
            get_logger("repro.test").info("inside")
        (record,) = log_records(log_stream)
        assert record["tenant"] == "acme"
        assert record["trace_id"] == span.trace_id

    def test_envelope_wins_field_collisions(self, log_stream):
        get_logger("repro.test").info(
            "real.event", trace_id="spoofed", tenant="spoofed"
        )
        (record,) = log_records(log_stream)
        assert record["trace_id"] is None
        assert record["tenant"] is None

    def test_threshold_filters(self, log_stream):
        configure_logging(log_stream, level="warning")
        logger = get_logger("repro.test")
        logger.debug("dropped")
        logger.info("dropped")
        logger.error("kept")
        assert [r["event"] for r in log_records(log_stream)] == [
            "kept"
        ]

    def test_unconfigured_logging_is_silent(self):
        configure_logging(None)
        get_logger("repro.test").error("nowhere")  # must not raise

    def test_unknown_level_raises(self, log_stream):
        with pytest.raises(ValueError, match="unknown log level"):
            get_logger("repro.test").log("shout", "event")
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging(io.StringIO(), level="shout")


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------


def ring_events(recorder: FlightRecorder, trace_id: str) -> list[str]:
    return [
        record.get("name", "")
        for record in recorder.records_for(trace_id)
    ]


class TestFlightRecorderRing:
    def test_wraparound_keeps_newest(self, registry):
        recorder = FlightRecorder(capacity=4)
        with recorder:
            for index in range(10):
                emit_event(f"event.{index}")
        assert len(recorder) == 4
        names = [record["name"] for record in recorder.last_records()]
        assert names == [
            "event.6",
            "event.7",
            "event.8",
            "event.9",
        ]

    def test_per_trace_eviction(self, registry):
        recorder = FlightRecorder(capacity=2)
        with recorder:
            with trace("first"):
                emit_event("first.event")
            with trace("second"):
                emit_event("second.event")
        # 4 records flowed (event + span per trace); capacity 2
        # keeps only the second trace's pair, so the first trace's
        # id has vanished from the index with its records.
        assert len(recorder.traces) == 1
        (survivor,) = recorder.traces
        assert [
            record["name"]
            for record in recorder.records_for(survivor)
        ] == ["second.event", "second"]

    def test_tee_forwards_to_wrapped_sink(self, registry):
        received = []

        class Collect:
            def emit(self, record):
                received.append(record)

        from repro.obs import set_sink

        previous = set_sink(Collect())
        try:
            with FlightRecorder(capacity=4):
                emit_event("tee.check")
        finally:
            set_sink(previous)
        assert [r["name"] for r in received] == ["tee.check"]

    def test_disarm_is_idempotent(self, registry):
        recorder = FlightRecorder(capacity=4)
        recorder.arm()
        recorder.arm()
        recorder.disarm()
        recorder.disarm()
        emit_event("after.disarm")
        assert len(recorder) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError, match="max_dumps"):
            FlightRecorder(max_dumps=0)


class TestFlightRecorderDumps:
    def test_trigger_event_dumps_complete_span_tree(
        self, registry, tmp_path
    ):
        recorder = FlightRecorder(capacity=64, dump_dir=tmp_path)
        with recorder:
            with trace("serve.request") as span:
                with trace("engine.query"):
                    emit_event("kernel.gf_fallback", reason="mass")
        assert recorder.snapshot()["dumps_written"] == 1
        path = recorder.dump_paths[0]
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        header, records = lines[0], lines[1:]
        assert header["reason"] == "kernel.gf_fallback"
        assert header["trace_id"] == span.trace_id
        tree = [
            (record["type"], record.get("name"))
            for record in records
            if record.get("trace_id") == span.trace_id
        ]
        assert ("event", "kernel.gf_fallback") in tree
        assert ("span", "engine.query") in tree
        assert ("span", "serve.request") in tree
        chrome = json.loads(
            path.with_name(
                path.name.replace(".jsonl", ".chrome.json")
            ).read_text()
        )
        assert chrome["traceEvents"]

    def test_typed_anomaly_hooks(self, registry, tmp_path):
        recorder = FlightRecorder(dump_dir=tmp_path)
        set_flight_recorder(recorder)
        try:
            notify_anomaly(
                OverloadedError("full", reason="queue_full"),
                trace_id="t1",
            )
            notify_anomaly(CircuitOpenError("open"), trace_id="t2")
            notify_anomaly(
                DeadlineExceededError("late"), trace_id="t3"
            )
            # Untyped errors are ignored: not an anomaly contract.
            notify_anomaly(EngineError("bug"), trace_id="t4")
        finally:
            set_flight_recorder(None)
        snapshot = recorder.snapshot()
        assert snapshot["dumps_written"] == 3
        reasons = [
            json.loads(path.read_text().splitlines()[0])["reason"]
            for path in recorder.dump_paths
        ]
        assert reasons == [
            "overloaded.queue_full",
            "circuit_open",
            "deadline_exceeded",
        ]

    def test_notify_without_recorder_is_free(self):
        assert get_flight_recorder() is None
        notify_anomaly(OverloadedError("x"))  # must not raise

    def test_rate_limit_suppresses_dump_storm(self, registry):
        clock = FakeClock()
        recorder = FlightRecorder(
            min_interval_seconds=10.0, clock=clock
        )
        assert recorder.trigger("storm") is None  # no dump_dir
        assert recorder.snapshot()["dumps_written"] == 1
        for _ in range(5):
            recorder.trigger("storm")
        assert recorder.snapshot()["dumps_written"] == 1
        assert recorder.snapshot()["dumps_suppressed"] == 5
        clock.advance(11.0)
        recorder.trigger("storm")
        assert recorder.snapshot()["dumps_written"] == 2

    def test_max_dumps_is_a_hard_cap(self, registry):
        recorder = FlightRecorder(max_dumps=2)
        for _ in range(5):
            recorder.trigger("anomaly", force=True)
        assert recorder.snapshot()["dumps_written"] == 2

    def test_dump_bytes_are_hashseed_deterministic(self, tmp_path):
        """The dump's *shape* must not depend on PYTHONHASHSEED.

        Trace ids, span ids, and timings vary per process, so the
        probe nulls those volatile fields and hashes what remains:
        key order (``sort_keys``), record order, names, attributes.
        Any hash-seed-dependent iteration in the dump path shows up
        as differing digests.
        """
        script = tmp_path / "dump_digest.py"
        script.write_text(
            "import hashlib, json, tempfile\n"
            "from pathlib import Path\n"
            "from repro.obs import (FlightRecorder, MetricsRegistry,\n"
            "    set_registry, emit_event, trace)\n"
            "set_registry(MetricsRegistry(enabled=True))\n"
            "out = Path(tempfile.mkdtemp())\n"
            "rec = FlightRecorder(capacity=32, dump_dir=out)\n"
            "with rec:\n"
            "    with trace('serve.request', zeta=1, alpha=2):\n"
            "        with trace('engine.query', gamma=3, beta=4):\n"
            "            emit_event('kernel.gf_fallback', b=1, a=2)\n"
            "VOLATILE = {'trace_id', 'span_id', 'parent_id',\n"
            "    'start_seconds', 'duration_seconds', 'metrics'}\n"
            "canon = []\n"
            "for line in rec.dump_paths[0].read_text().splitlines():\n"
            "    record = json.loads(line)\n"
            "    for key in VOLATILE:\n"
            "        record.pop(key, None)\n"
            "    canon.append(json.dumps(record, sort_keys=True))\n"
            "digest = hashlib.sha256(\n"
            "    '\\n'.join(canon).encode()).hexdigest()\n"
            "print(digest)\n"
        )
        digests = set()
        for seed in ("0", "1", "42"):
            result = subprocess.run(
                [sys.executable, str(script)],
                capture_output=True,
                text=True,
                check=True,
                env={
                    "PYTHONHASHSEED": seed,
                    "PYTHONPATH": str(
                        Path(__file__).resolve().parents[1] / "src"
                    ),
                    "PATH": "/usr/bin:/bin",
                },
            )
            digests.add(result.stdout.strip())
        assert len(digests) == 1, digests


# ----------------------------------------------------------------------
# SLO engine
# ----------------------------------------------------------------------


def availability_spec(**overrides) -> SLOSpec:
    fields = dict(
        name="avail",
        tenant="acme",
        objective="availability",
        target=0.99,
    )
    fields.update(overrides)
    return SLOSpec(**fields)


class TestSLOEngine:
    def test_burn_rate_math(self, registry):
        clock = FakeClock(1000.0)
        engine = SLOEngine([availability_spec()], clock=clock)
        for _ in range(95):
            engine.observe("acme", ok=True)
        for _ in range(5):
            engine.observe("acme", ok=False)
        (status,) = engine.evaluate()
        # bad fraction 0.05 over budget 0.01 → burning 5× the budget.
        assert status.fast_burn == pytest.approx(5.0)
        assert status.slow_burn == pytest.approx(5.0)

    def test_multi_window_states(self, registry):
        clock = FakeClock(1000.0)
        engine = SLOEngine([availability_spec()], clock=clock)
        for _ in range(50):
            engine.observe("acme", ok=True)
            engine.observe("acme", ok=False)
        (status,) = engine.evaluate()
        assert status.state == "breach"  # both windows hot
        clock.advance(400.0)  # past the fast window
        (status,) = engine.evaluate()
        assert status.state == "warn"  # only the slow window hot
        clock.advance(4000.0)  # past the slow window
        (status,) = engine.evaluate()
        assert status.state == "ok"
        assert status.good == 0 and status.bad == 0

    def test_latency_objective_skips_failures(self, registry):
        clock = FakeClock()
        spec = availability_spec(
            name="lat",
            objective="latency_p99",
            latency_threshold_ms=50.0,
        )
        engine = SLOEngine([spec], clock=clock)
        engine.observe("acme", ok=True, latency_seconds=0.01)
        engine.observe("acme", ok=True, latency_seconds=0.2)
        engine.observe("acme", ok=False, latency_seconds=9.9)
        (status,) = engine.evaluate()
        assert status.good == 1 and status.bad == 1

    def test_degradation_objective(self, registry):
        clock = FakeClock()
        spec = availability_spec(
            name="deg", objective="degradation_rate", target=0.5
        )
        engine = SLOEngine([spec], clock=clock)
        engine.observe("acme", ok=True, degraded=True)
        (status,) = engine.evaluate()
        assert status.bad == 1

    def test_wildcard_tenant_aggregates(self, registry):
        clock = FakeClock()
        engine = SLOEngine(
            [availability_spec(tenant="*")], clock=clock
        )
        engine.observe("a", ok=False)
        engine.observe("b", ok=False)
        (status,) = engine.evaluate()
        assert status.bad == 2

    def test_states_export_as_gauges(self, registry):
        clock = FakeClock()
        engine = SLOEngine([availability_spec()], clock=clock)
        engine.observe("acme", ok=False)
        engine.evaluate()
        text = to_prometheus(get_registry())
        assert 'repro_slo_state{slo="avail",tenant="acme"} 2' in text
        assert "repro_slo_fast_burn" in text

    def test_idle_tenant_is_ok_not_unknown(self, registry):
        engine = SLOEngine([availability_spec()], clock=FakeClock())
        (status,) = engine.evaluate()
        assert status.state == "ok"
        assert status.fast_burn == 0.0

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="objective"):
            availability_spec(objective="vibes")
        with pytest.raises(ValueError, match="target"):
            availability_spec(target=1.0)
        with pytest.raises(ValueError, match="latency_threshold_ms"):
            availability_spec(objective="latency_p99")
        with pytest.raises(ValueError, match="windows"):
            availability_spec(
                fast_window_seconds=100.0, slow_window_seconds=50.0
            )

    def test_parse_specs_from_json_text(self):
        specs = parse_slo_specs(
            '[{"name": "a", "objective": "availability",'
            ' "target": 0.999, "tenant": "acme"}]'
        )
        assert specs[0].error_budget == pytest.approx(0.001)

    def test_parse_specs_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown keys"):
            parse_slo_specs(
                '[{"name": "a", "objective": "availability",'
                ' "target": 0.9, "latency_treshold_ms": 5}]'
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SLOEngine(
                [availability_spec(), availability_spec()],
                clock=FakeClock(),
            )


# ----------------------------------------------------------------------
# Admin plane
# ----------------------------------------------------------------------


def parse_http(raw: bytes) -> tuple[int, dict, str]:
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode().split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        key, _, value = line.partition(":")
        headers[key.strip().lower()] = value.strip()
    return status, headers, body.decode()


async def admin_get(port: int, path: str) -> tuple[int, dict, str]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        f"GET {path} HTTP/1.0\r\nHost: test\r\n\r\n".encode()
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    return parse_http(raw)


@pytest.fixture
def db(fig2) -> ProbabilisticDatabase:
    database = ProbabilisticDatabase()
    database.create_relation("fig2", fig2)
    return database


class TestAdminPlane:
    def test_endpoints_end_to_end(self, db, registry):
        clock = FakeClock()
        slo = SLOEngine([availability_spec()], clock=clock)
        core = ServingCore(db, slo=slo)

        async def scenario():
            admin = await serve_admin(core, port=0, slo=slo)
            port = admin.sockets[0].getsockname()[1]
            for _ in range(3):
                response = await core.submit(
                    ServeRequest(relation="fig2", k=2, tenant="acme")
                )
                assert response.status == "ok"

            status, headers, body = await admin_get(port, "/metrics")
            assert status == 200
            assert headers["content-type"].startswith(
                "application/openmetrics-text"
            )
            families = parse_prometheus(body)
            latency = families["repro_serve_latency"]["samples"]
            exemplars = [s for s in latency if "exemplar" in s]
            assert exemplars, "scrape must carry exemplars"
            assert (
                exemplars[0]["exemplar"]["labels"]["trace_id"]
            )
            depth = families["repro_serve_queue_depth"]["samples"]
            assert depth[0]["value"] == 0.0  # fresh between requests

            status, _, body = await admin_get(port, "/healthz")
            assert (status, body) == (200, "ok\n")
            status, _, _ = await admin_get(port, "/readyz")
            assert status == 200
            status, _, body = await admin_get(port, "/slo")
            assert status == 200
            assert json.loads(body)[0]["state"] == "ok"
            status, _, body = await admin_get(port, "/debug/flight")
            assert json.loads(body) == {"armed": False}
            status, _, _ = await admin_get(port, "/missing")
            assert status == 404

            await core.drain()
            status, _, body = await admin_get(port, "/readyz")
            assert (status, body) == (503, "draining\n")

            admin.close()
            await admin.wait_closed()

        asyncio.run(scenario())

    def test_non_get_rejected(self, db, registry):
        core = ServingCore(db)

        async def scenario():
            admin = await serve_admin(core, port=0)
            port = admin.sockets[0].getsockname()[1]
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            writer.write(b"DELETE /metrics HTTP/1.0\r\n\r\n")
            await writer.drain()
            status, _, _ = parse_http(await reader.read())
            writer.close()
            await writer.wait_closed()
            admin.close()
            await admin.wait_closed()
            return status

        assert asyncio.run(scenario()) == 405

    def test_debug_flight_forced_dump(self, db, registry):
        core = ServingCore(db)
        recorder = FlightRecorder(capacity=16)
        recorder.arm()
        set_flight_recorder(recorder)
        try:
            emit_event("warm.up")
            status, _, body = parse_admin_response(
                handle_admin_request("/debug/flight?dump=1", core)
            )
            assert status == 200
            document = json.loads(body)
            assert document["dumps_written"] == 1
            assert document["last_dump"]["header"]["reason"] == (
                "manual"
            )
        finally:
            recorder.disarm()
            set_flight_recorder(None)

    def test_metrics_endpoint_refreshes_slo_gauges(
        self, db, registry
    ):
        clock = FakeClock()
        slo = SLOEngine([availability_spec()], clock=clock)
        core = ServingCore(db, slo=slo)
        slo.observe("acme", ok=False)
        status, _, body = parse_admin_response(
            handle_admin_request("/metrics", core)
        )
        assert status == 200
        assert 'repro_slo_state{slo="avail",tenant="acme"} 2' in body


def parse_admin_response(raw: bytes) -> tuple[int, dict, str]:
    return parse_http(raw)


# ----------------------------------------------------------------------
# /costs and /debug/profile
# ----------------------------------------------------------------------


class TestCostsEndpoint:
    def test_reports_disabled_without_a_ledger(self, db, registry):
        core = ServingCore(db)
        status, _, body = parse_admin_response(
            handle_admin_request("/costs", core)
        )
        assert status == 200
        assert json.loads(body) == {"enabled": False}

    def test_serves_per_tenant_ledger_summary(self, db, registry):
        ledger = CostLedger()
        core = ServingCore(db, ledger=ledger)

        async def scenario():
            for tenant in ("acme", "acme", "globex"):
                response = await core.submit(
                    ServeRequest(
                        relation="fig2", k=2, tenant=tenant
                    )
                )
                assert response.status == "ok"
            return parse_admin_response(
                handle_admin_request("/costs", core)
            )

        status, headers, body = asyncio.run(scenario())
        assert status == 200
        assert headers["content-type"].startswith("application/json")
        document = json.loads(body)
        assert document["enabled"] is True
        assert document["queries"] == 3
        acme = document["tenants"]["acme"]["expected_rank"]
        assert acme["queries"] == 2
        assert acme["wall_seconds"] > 0.0
        assert (
            document["tenants"]["globex"]["expected_rank"]["queries"]
            == 1
        )

    def test_falls_back_to_the_ambient_ledger(self, db, registry):
        core = ServingCore(db)
        ledger = CostLedger()
        previous = set_cost_ledger(ledger)
        try:
            status, _, body = parse_admin_response(
                handle_admin_request("/costs", core)
            )
        finally:
            set_cost_ledger(previous)
        assert status == 200
        assert json.loads(body)["enabled"] is True

    def test_draining_core_returns_503(self, db, registry):
        core = ServingCore(db, ledger=CostLedger())

        async def scenario():
            await core.drain()
            return parse_admin_response(
                handle_admin_request("/costs", core)
            )

        status, _, body = asyncio.run(scenario())
        assert status == 503
        assert json.loads(body) == {"error": "draining"}


class TestProfileEndpoint:
    def run_profile(self, path: str):
        async def scenario():
            return parse_admin_response(
                await handle_profile_request(path)
            )

        return asyncio.run(scenario())

    def test_returns_a_valid_speedscope_capture(self):
        status, headers, body = self.run_profile(
            "/debug/profile?seconds=0.05&hz=200"
        )
        assert status == 200
        assert headers["content-type"].startswith("application/json")
        document = json.loads(body)
        validate_speedscope(document)
        assert document["profiles"][0]["name"] == "repro-admin"

    @pytest.mark.parametrize(
        "path",
        [
            "/debug/profile?seconds=0",
            "/debug/profile?seconds=-1",
            "/debug/profile?seconds=31",
            "/debug/profile?seconds=soon",
            "/debug/profile?hz=0",
            "/debug/profile?seconds=0.05&hz=lots",
        ],
    )
    def test_bad_parameters_are_400(self, path):
        status, _, body = self.run_profile(path)
        assert status == 400
        assert "error" in json.loads(body)

    def test_overlapping_captures_are_rejected(self):
        async def scenario():
            first = asyncio.ensure_future(
                handle_profile_request("/debug/profile?seconds=0.3")
            )
            await asyncio.sleep(0.05)  # first capture is in flight
            second = parse_admin_response(
                await handle_profile_request(
                    "/debug/profile?seconds=0.05"
                )
            )
            return second, parse_admin_response(await first)

        (second_status, _, second_body), (first_status, _, _) = (
            asyncio.run(scenario())
        )
        assert second_status == 503
        assert "already running" in json.loads(second_body)["error"]
        assert first_status == 200  # the in-flight capture completes

    def test_profile_served_over_the_admin_socket(self, db, registry):
        core = ServingCore(db)

        async def scenario():
            admin = await serve_admin(core, port=0)
            port = admin.sockets[0].getsockname()[1]
            status, _, body = await admin_get(
                port, "/debug/profile?seconds=0.05"
            )
            admin.close()
            await admin.wait_closed()
            return status, body

        status, body = asyncio.run(scenario())
        assert status == 200
        validate_speedscope(json.loads(body))
