#!/usr/bin/env python3
"""Quickstart: ranking uncertain data with expected ranks.

Builds the two worked examples from the paper (Figures 2 and 4), runs
the paper's expected-rank definition next to the prior-work baselines,
and shows why the baselines misbehave — all through the public API.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AttributeLevelRelation,
    AttributeTuple,
    DiscretePDF,
    ExclusionRule,
    TupleLevelRelation,
    TupleLevelTuple,
    rank,
)


def attribute_level_demo() -> None:
    """The paper's Figure 2: three tuples with uncertain scores."""
    print("=" * 64)
    print("Attribute-level uncertainty (paper Figure 2)")
    print("=" * 64)

    relation = AttributeLevelRelation(
        [
            AttributeTuple("t1", DiscretePDF([100, 70], [0.4, 0.6])),
            AttributeTuple("t2", DiscretePDF([92, 80], [0.6, 0.4])),
            AttributeTuple("t3", DiscretePDF([85], [1.0])),
        ]
    )
    for row in relation:
        print(f"  {row.tid}: {row.score}")
    print()

    expected = rank(relation, 3)
    print("Expected rank   :", expected.describe())
    print("  (statistics are expected ranks; smaller is better)")

    median = rank(relation, 3, method="median_rank")
    print("Median rank     :", median.describe())

    # Baselines on the same data — note the containment violation.
    top1 = rank(relation, 1, method="u_topk")
    top2 = rank(relation, 2, method="u_topk")
    print("U-Topk top-1    :", top1.tids(),
          f"(answer probability {top1.metadata['answer_probability']:.2f})")
    print("U-Topk top-2    :", top2.tids(),
          "<- completely disjoint from the top-1!")

    kranks = rank(relation, 3, method="u_kranks")
    print("U-kRanks top-3  :", kranks.tids(),
          "<- t1 appears twice, t2 never")
    print()


def tuple_level_demo() -> None:
    """The paper's Figure 4: an x-relation with an exclusion rule."""
    print("=" * 64)
    print("Tuple-level uncertainty (paper Figure 4)")
    print("=" * 64)

    relation = TupleLevelRelation(
        [
            TupleLevelTuple("t1", 100, 0.4),
            TupleLevelTuple("t2", 92, 0.5),
            TupleLevelTuple("t3", 85, 1.0),
            TupleLevelTuple("t4", 80, 0.5),
        ],
        rules=[ExclusionRule("tau2", ["t2", "t4"])],
    )
    for row in relation:
        rule = relation.rule_of(row.tid)
        mates = [tid for tid in rule if tid != row.tid]
        note = f" (excludes {', '.join(mates)})" if mates else ""
        print(
            f"  {row.tid}: score={row.score:g} "
            f"p={row.probability:g}{note}"
        )
    print(f"  expected world size E[|W|] = "
          f"{relation.expected_world_size():g}")
    print()

    print("Expected rank   :", rank(relation, 4).describe())
    print("Median rank     :", rank(relation, 4,
                                     method="median_rank").describe())
    print("  (the two statistics legitimately disagree here — the")
    print("   median is robust to t2's heavy tail of bad ranks)")
    print()

    pruned = rank(relation, 2, method="expected_rank_prune")
    print(
        "Pruned top-2    :",
        pruned.tids(),
        f"touched {pruned.metadata['tuples_accessed']} of "
        f"{relation.size} tuples",
    )
    print()


def full_ranking_comparison() -> None:
    """One table: every registered definition on the Figure 4 data."""
    print("=" * 64)
    print("All semantics, side by side (Figure 4 relation, k = 2)")
    print("=" * 64)

    relation = TupleLevelRelation(
        [
            TupleLevelTuple("t1", 100, 0.4),
            TupleLevelTuple("t2", 92, 0.5),
            TupleLevelTuple("t3", 85, 1.0),
            TupleLevelTuple("t4", 80, 0.5),
        ],
        rules=[ExclusionRule("tau2", ["t2", "t4"])],
    )
    methods = [
        ("expected_rank", {}),
        ("median_rank", {}),
        ("quantile_rank", {"phi": 0.75}),
        ("u_topk", {}),
        ("u_kranks", {}),
        ("pt_k", {"threshold": 0.4}),
        ("global_topk", {}),
        ("expected_score", {}),
        ("probability_only", {}),
    ]
    for method, options in methods:
        result = rank(relation, 2, method=method, **options)
        label = method + (f"{options}" if options else "")
        print(f"  {label:35s} -> {result.tids()}")
    print()


if __name__ == "__main__":
    attribute_level_demo()
    tuple_level_demo()
    full_ranking_comparison()
