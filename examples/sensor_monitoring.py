#!/usr/bin/env python3
"""Sensor monitoring: attribute-level ranking with expensive access.

The motivating scenario of the paper's attribute-level model ([13],
[27]): a fleet of sensors reports noisy measurements, each represented
as a small discrete pdf around the (unknown) true value.  An operator
wants the k hottest sites — but fetching a sensor's full pdf is
expensive (imagine a radio round-trip), so the engine should touch as
few sensors as possible.

The demo runs the exact A-ERank pass and the A-ERank-Prune scan over
the same fleet, shows that the answers agree, and reports how much of
the fleet the pruned scan left untouched.  It then lets the query
planner make the exact/pruned choice from a declared access cost.

Run:  python examples/sensor_monitoring.py
"""

from __future__ import annotations

from repro.core import a_erank, a_erank_prune, attribute_rank_distribution
from repro.datagen import sensor_readings
from repro.engine import ProbabilisticDatabase, TopKPlanner

FLEET_SIZE = 500
K = 8


def main() -> None:
    fleet = sensor_readings(FLEET_SIZE, alternatives=5, seed=2024)
    print(f"Fleet of {fleet.size} sensors; each reading is a "
          f"{fleet.max_pdf_size()}-point pdf.")
    sample = fleet[0]
    print(f"e.g. {sample.tid} at {sample.attributes['location']}: "
          f"{sample.score}")
    print()

    exact = a_erank(fleet, K)
    print(f"Exact A-ERank top-{K} (touches all {fleet.size} sensors):")
    for item in exact:
        row = fleet.tuple_by_id(item.tid)
        print(f"  #{item.position + 1} {item.tid:10s} "
              f"E[reading]={row.expected_score():6.2f}  "
              f"expected rank={item.statistic:.2f}")
    print()

    pruned = a_erank_prune(fleet, K)
    touched = pruned.metadata["tuples_accessed"]
    print(f"A-ERank-Prune top-{K}: touched {touched} sensors "
          f"({100 * touched / fleet.size:.0f}% of the fleet, "
          f"halted_early={pruned.metadata['halted_early']})")
    agreement = pruned.tids() == exact.tids()
    print(f"Answers identical to the exact pass: {agreement}")
    print()

    leader = exact[0].tid
    distribution = attribute_rank_distribution(fleet, leader)
    print(f"Rank distribution of the leader {leader}:")
    print(f"  Pr[rank 0] = {distribution.probability_of(0):.3f}, "
          f"median rank = {distribution.median()}, "
          f"90th-percentile rank = {distribution.quantile(0.9)}")
    print()

    # The engine route: declare the access cost, let the planner pick.
    db = ProbabilisticDatabase()
    db.create_relation("fleet", fleet)
    planner = TopKPlanner(expensive_access=True)
    plan = planner.plan(db.relation("fleet"), K)
    print(f"Planner decision: {plan.method} ({plan.reason})")
    result = plan.execute(db.relation("fleet"), K)
    print(f"Planned answer matches exact: "
          f"{result.tids() == exact.tids()}")


if __name__ == "__main__":
    main()
