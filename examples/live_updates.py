#!/usr/bin/env python3
"""Live updates: a maintained store under churn, plus robustness.

Tuple-level stores rarely sit still — new candidate records arrive,
stale ones retire, confidences get recalibrated.  Section 6.2 of the
paper notes the only global the pruned ranking needs, ``E[|W|]``, is
maintainable in O(1) under such updates.  This walkthrough

1. streams inserts / deletes / probability updates through
   :class:`MaintainedTupleStore`, re-querying as it goes,
2. shows ``E[|W|]`` tracking the stream without recomputation, and
3. finishes with a sensitivity profile: how much the current top-k
   would churn if every confidence wobbled by 1-20%.

Run:  python examples/live_updates.py
"""

from __future__ import annotations

import random

from repro.core import stability_profile
from repro.engine import MaintainedTupleStore

K = 5
STREAM_STEPS = 400


def main() -> None:
    rng = random.Random(7)
    store = MaintainedTupleStore()
    store.bulk_insert(
        (f"seed{i}", rng.uniform(10, 100), rng.uniform(0.2, 1.0))
        for i in range(50)
    )
    print(
        f"Seeded {len(store)} tuples; "
        f"E[|W|] = {store.expected_world_size():.2f}"
    )
    print(f"initial top-{K}: {store.topk(K).tids()}")
    print()

    alive = list(store.score_order())
    inserts = deletes = updates = 0
    counter = 0
    for step in range(STREAM_STEPS):
        action = rng.random()
        if action < 0.45:
            tid = f"live{counter}"
            counter += 1
            store.insert(
                tid,
                score=rng.uniform(10, 100),
                probability=rng.uniform(0.2, 1.0),
            )
            alive.append(tid)
            inserts += 1
        elif action < 0.7 and len(alive) > 10:
            tid = alive.pop(rng.randrange(len(alive)))
            store.delete(tid)
            deletes += 1
        else:
            store.update_probability(
                rng.choice(alive), rng.uniform(0.2, 1.0)
            )
            updates += 1
        if step % 100 == 99:
            answer = store.topk(K)
            print(
                f"after {step + 1:3d} ops: N={len(store):3d} "
                f"E[|W|]={store.expected_world_size():6.2f} "
                f"top-{K}={answer.tids()}"
            )
    print()
    print(
        f"stream totals: {inserts} inserts, {deletes} deletes, "
        f"{updates} probability updates — E[|W|] maintained in O(1) "
        "throughout (store.validate() audits it)"
    )
    store.validate()
    print()

    snapshot = store.snapshot()
    print("Robustness of the final top-5 to confidence noise:")
    for report in stability_profile(
        snapshot, K, noises=(0.01, 0.05, 0.1, 0.2), trials=25, rng=1
    ):
        core = sorted(report.stable_core())
        print(
            f"  noise ±{report.noise:4.0%}: mean churn "
            f"{report.mean_churn:5.1%}, stable core "
            f"{len(core)}/{K} {core}"
        )


if __name__ == "__main__":
    main()
