#!/usr/bin/env python3
"""Entity resolution: scoring functions, operators, and ranking.

The paper's opening motivation — data integration produces candidate
matches with confidences, contradictory candidates are mutually
exclusive, and analysts want the best matches overall.  This example
drives the full front end:

1. a synthetic integration workload (similarity features + confidences
   + per-entity exclusion rules),
2. a user-defined weighted-sum scoring function,
3. relational operators (filter by source) before ranking,
4. expected-rank top-k with the early-stop scan,
5. per-answer drill-down into the rank distribution.

Run:  python examples/entity_resolution.py
"""

from __future__ import annotations

from repro.core import rank, t_erank_prune, tuple_rank_distribution
from repro.datagen import MATCH_WEIGHTS, integration_matches
from repro.engine import select

ENTITIES = 150
K = 8


def main() -> None:
    matches = integration_matches(ENTITIES, seed=42)
    multi = [r for r in matches.rules if not r.is_singleton]
    print(
        f"{matches.size} candidate matches for {ENTITIES} entities; "
        f"{len(multi)} entities have contradictory candidates."
    )
    print(f"scoring function: weighted sum {MATCH_WEIGHTS}")
    print()

    best = rank(matches, K)
    print(f"Top-{K} matches by expected rank:")
    for item in best:
        row = matches.tuple_by_id(item.tid)
        print(
            f"  #{item.position + 1} {item.tid:12s} "
            f"{row.attributes['entity']:10s} "
            f"score={row.score:6.1f} conf={row.probability:.2f} "
            f"src={row.attributes['source']:12s} "
            f"r={item.statistic:6.2f}"
        )
    print()

    pruned = t_erank_prune(matches, K)
    print(
        f"Early-stop scan touched {pruned.metadata['tuples_accessed']} "
        f"of {matches.size} candidates; same answer: "
        f"{pruned.tids() == best.tids()}"
    )
    print()

    # Analysts often restrict to a trusted source before ranking.
    trusted = select(
        matches,
        lambda tid, attributes: attributes["source"] != "crawl",
    )
    trusted_best = rank(trusted, K)
    print(
        f"Excluding the 'crawl' source leaves {trusted.size} "
        f"candidates; top-{K} overlap with the unfiltered answer: "
        f"{len(set(trusted_best.tids()) & set(best.tids()))}/{K}"
    )
    print()

    champion = best[0].tid
    distribution = tuple_rank_distribution(matches, champion)
    print(
        f"Champion {champion}: Pr[rank 0] = "
        f"{distribution.probability_of(0):.3f}, median rank "
        f"{distribution.median()}, Pr[top-{K}] = "
        f"{distribution.cdf(K - 1):.3f}"
    )
    print()

    # Why does the champion beat the runner-up?  Expected ranks
    # decompose exactly into per-competitor contributions.
    from repro.core import explain_pair

    runner_up = best[1].tid
    print(explain_pair(matches, champion, runner_up).describe())


if __name__ == "__main__":
    main()
