#!/usr/bin/env python3
"""Movie night: aggregated-ratings ranking, end to end.

The paper's running motivation for attribute-level uncertainty is
aggregated user ratings (the MystiQ movie data): a movie's "score" is
a distribution over the rating scale, not a number.  This walkthrough

1. generates a synthetic catalogue of movies with rating pdfs,
2. stores it in the mini engine and persists it to disk,
3. ranks it under expected / median / conservative-quantile semantics,
4. draws ASCII rank-distribution sparklines for the contenders, and
5. round-trips the whole thing through the CSV format + CLI loader.

Run:  python examples/movie_night.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.cli import load_relation
from repro.core import attribute_rank_distribution, rank
from repro.datagen import movie_ratings
from repro.engine import ProbabilisticDatabase, save_attribute_csv

CATALOGUE = 120
K = 5
BARS = " .:-=+*#%@"


def sparkline(masses, cap=0.6) -> str:
    """Map probabilities to ASCII intensity characters."""
    cells = []
    for mass in masses:
        level = min(int(mass / cap * (len(BARS) - 1)), len(BARS) - 1)
        cells.append(BARS[level])
    return "".join(cells)


def main() -> None:
    catalogue = movie_ratings(CATALOGUE, rating_levels=10, seed=11)
    db = ProbabilisticDatabase()
    db.create_relation("catalogue", catalogue)
    print(
        f"{CATALOGUE} movies; ratings are pdfs over 1..10 "
        f"({db.describe('catalogue')['possible_worlds']:.3g} possible "
        "worlds)."
    )
    print()

    expected = db.topk("catalogue", K)
    median = db.topk("catalogue", K, method="median_rank")
    cautious = db.topk(
        "catalogue", K, method="quantile_rank", phi=0.9
    )
    print(f"Top-{K} by expected rank :", ", ".join(expected.tids()))
    print(f"Top-{K} by median rank   :", ", ".join(median.tids()))
    print(f"Top-{K} by 0.9-quantile  :", ", ".join(cautious.tids()))
    print()

    print("Rank-distribution sparklines of the expected-rank winners")
    print("(columns = ranks 0..14; darker = more probable; Definition-6")
    print(" shared ties, matching the expected-rank statistics):")
    for item in expected:
        dist = attribute_rank_distribution(
            catalogue, item.tid, ties="shared"
        )
        masses = [dist.probability_of(r) for r in range(15)]
        title = catalogue.tuple_by_id(item.tid).attributes["title"]
        print(
            f"  {item.tid:9s} |{sparkline(masses)}| "
            f"E[rank]={dist.expectation():5.2f} "
            f"median={dist.median():2d}  {title}"
        )
    print()

    with tempfile.TemporaryDirectory() as tmp:
        csv_path = Path(tmp) / "catalogue.csv"
        save_attribute_csv(catalogue, csv_path)
        reloaded = load_relation(csv_path)
        again = rank(reloaded, K)
        print(
            "CSV round-trip preserves the ranking:",
            again.tids() == expected.tids(),
        )
        print(
            f"(equivalent CLI: python -m repro topk {csv_path.name} "
            f"-k {K})"
        )


if __name__ == "__main__":
    main()
