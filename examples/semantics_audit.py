#!/usr/bin/env python3
"""Regenerate the paper's Figure 5: the ranking-property matrix.

Audits every registered ranking definition against the five properties
of Section 4.1 (exact-k, containment, unique ranking, value
invariance, stability) on the paper's own worked examples plus a batch
of randomized relations, then prints the matrix with the violating
counterexamples.

Run:  python examples/semantics_audit.py
"""

from __future__ import annotations

import functools

from repro.bench import Table
from repro.core import rank
from repro.core.properties import PROPERTY_NAMES, property_matrix
from repro.datagen import generate_tuple_relation
from repro.models import (
    AttributeLevelRelation,
    AttributeTuple,
    DiscretePDF,
    ExclusionRule,
    TupleLevelRelation,
    TupleLevelTuple,
)


def paper_fixtures():
    figure2 = AttributeLevelRelation(
        [
            AttributeTuple("t1", DiscretePDF([100, 70], [0.4, 0.6])),
            AttributeTuple("t2", DiscretePDF([92, 80], [0.6, 0.4])),
            AttributeTuple("t3", DiscretePDF([85], [1.0])),
        ]
    )
    figure4 = TupleLevelRelation(
        [
            TupleLevelTuple("t1", 100, 0.4),
            TupleLevelTuple("t2", 92, 0.5),
            TupleLevelTuple("t3", 85, 1.0),
            TupleLevelTuple("t4", 80, 0.5),
        ],
        rules=[ExclusionRule("tau2", ["t2", "t4"])],
    )
    return [figure2, figure4]


def main() -> None:
    relations = paper_fixtures()
    # A few randomized relations widen the net for counterexamples —
    # seed 125 is the known U-kRanks stability violation instance.
    for seed in (7, 125):
        relations.append(
            generate_tuple_relation(
                5,
                rule_fraction=0.4,
                seed=seed,
                probability_low=0.1,
                score_low=1,
                score_high=100,
            )
        )

    methods = {
        "expected_rank": functools.partial(rank, method="expected_rank"),
        "median_rank": functools.partial(rank, method="median_rank"),
        "u_topk": functools.partial(rank, method="u_topk"),
        "u_kranks": functools.partial(rank, method="u_kranks"),
        "pt_k": functools.partial(rank, method="pt_k", threshold=0.4),
        "global_topk": functools.partial(rank, method="global_topk"),
        "expected_score": functools.partial(
            rank, method="expected_score"
        ),
    }

    matrix = property_matrix(methods, relations, ks=[1, 2, 3])

    table = Table(
        "Figure 5 — ranking definitions versus Section 4.1 properties",
        ["method", *PROPERTY_NAMES],
    )
    for method, row in matrix.items():
        table.add_row(
            [method]
            + ["Y" if row[name].holds else "N" for name in PROPERTY_NAMES]
        )
    table.add_note(
        "paper's matrix: only the rank-distribution statistics "
        "(expected/median/quantile rank) satisfy every property"
    )
    table.show()

    print("Counterexamples found by the audit:")
    for method, row in matrix.items():
        for name in PROPERTY_NAMES:
            outcome = row[name]
            if not outcome.holds:
                print(f"  {method} / {name}: {outcome.counterexample}")


if __name__ == "__main__":
    main()
