#!/usr/bin/env python3
"""Data integration: tuple-level ranking over conflicting records.

The motivating scenario of the paper's tuple-level model: records
matched from multiple sources carry a confidence, and contradictory
matches form exclusion rules (at most one can be real).  Here, iceberg
sighting reports from radar / visual / satellite sources are ranked by
drift distance; pairs of reports that cannot both be real share a rule.

The demo ranks the reports under expected, median, and 0.9-quantile
ranks, shows how a rule redistributes probability mass, and contrasts
the early-stop T-ERank-Prune scan against the exact pass.

Run:  python examples/data_integration.py
"""

from __future__ import annotations

from repro.core import (
    rank,
    t_erank,
    t_erank_prune,
    tuple_rank_distribution,
)
from repro.datagen import iceberg_sightings

REPORTS = 400
K = 6


def main() -> None:
    reports = iceberg_sightings(REPORTS, conflict_fraction=0.4, seed=7)
    multi_rules = [r for r in reports.rules if not r.is_singleton]
    print(
        f"{reports.size} sighting reports, {len(multi_rules)} conflict "
        f"pairs, E[|W|] = {reports.expected_world_size():.1f} real "
        "objects expected."
    )
    print()

    exact = t_erank(reports, K)
    print(f"Top-{K} by expected rank:")
    for item in exact:
        row = reports.tuple_by_id(item.tid)
        rule = reports.rule_of(item.tid)
        conflict = "" if rule.is_singleton else (
            " [conflicts with "
            + ", ".join(t for t in rule if t != item.tid)
            + "]"
        )
        print(
            f"  #{item.position + 1} {item.tid:12s} "
            f"drift={row.score:7.2f} confidence={row.probability:.2f} "
            f"r={item.statistic:7.2f}{conflict}"
        )
    print()

    median = rank(reports, K, method="median_rank")
    conservative = rank(reports, K, method="quantile_rank", phi=0.9)
    print("Same query under other rank statistics:")
    print(f"  median rank        -> {median.tids()}")
    print(f"  0.9-quantile rank  -> {conservative.tids()}")
    overlap = len(set(exact.tids()) & set(conservative.tids()))
    print(f"  expected vs 0.9-quantile overlap: {overlap}/{K}")
    print()

    pruned = t_erank_prune(reports, K)
    print(
        f"T-ERank-Prune touched {pruned.metadata['tuples_accessed']} of "
        f"{reports.size} reports and returned the identical top-{K}: "
        f"{pruned.tids() == exact.tids()}"
    )
    print()

    # Zoom into the best-ranked conflicted report's rank distribution.
    conflicted = min(
        (
            tid
            for rule in multi_rules
            for tid in rule
        ),
        key=lambda tid: exact.statistics.get(
            tid, t_erank(reports, reports.size).statistics[tid]
        ),
    )
    distribution = tuple_rank_distribution(reports, conflicted)
    print(f"Rank distribution of best conflicted report {conflicted}:")
    print(
        f"  median={distribution.median()}, "
        f"E[rank]={distribution.expectation():.1f}, "
        f"Pr[rank <= {K - 1}] = {distribution.cdf(K - 1):.3f}"
    )


if __name__ == "__main__":
    main()
