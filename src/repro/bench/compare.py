"""Perf-smoke gate: ``python -m repro.bench.compare baseline.json fresh.json``.

Compares a fresh :mod:`repro.bench.baseline` run against the committed
reference and exits non-zero when any metric regresses beyond its
tolerance:

* ``seconds`` metrics fail when
  ``current > baseline * (1 + time_tolerance)`` — the default
  tolerance of 1.0 (i.e. 2x) absorbs machine noise while still
  catching an accidentally de-vectorized kernel;
* ``count`` metrics (tuples accessed) are deterministic for the
  seeded workloads, so their default tolerance is tight (10%);
* a metric present in the baseline but missing from the fresh run is
  always a failure (a silently dropped benchmark is a regression of
  the harness itself).

Improvements never fail, and extra metrics in the fresh run are
reported but ignored — so adding suite cases does not break older
baselines.

With ``--history PATH`` every gated run is additionally appended to a
JSON-lines history file (commit, timestamp, per-case values) and the
deltas against the previous entry are printed — trend tracking on top
of the binary gate.  History I/O problems only warn: the gate verdict
never depends on the trend log.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "Comparison",
    "append_history",
    "compare_documents",
    "last_history_entry",
    "main",
]

DEFAULT_TIME_TOLERANCE = 1.0
DEFAULT_COUNT_TOLERANCE = 0.10


@dataclass(frozen=True)
class Comparison:
    """The verdict for one metric."""

    name: str
    kind: str
    baseline: float | None
    current: float | None
    limit: float | None
    regressed: bool

    @property
    def ratio(self) -> float | None:
        if (
            self.baseline is None
            or self.current is None
            or self.baseline == 0.0
        ):
            return None
        return self.current / self.baseline

    def describe(self) -> str:
        if self.current is None:
            return f"MISSING  {self.name} (baseline {self.baseline:.6g})"
        if self.baseline is None:
            return f"NEW      {self.name} = {self.current:.6g}"
        status = "REGRESS" if self.regressed else "ok"
        ratio = self.ratio
        ratio_text = f" ({ratio:.2f}x)" if ratio is not None else ""
        return (
            f"{status:8} {self.name}: {self.baseline:.6g} -> "
            f"{self.current:.6g}{ratio_text}"
        )


def compare_documents(
    baseline: dict,
    current: dict,
    *,
    time_tolerance: float = DEFAULT_TIME_TOLERANCE,
    count_tolerance: float = DEFAULT_COUNT_TOLERANCE,
) -> list[Comparison]:
    """Per-metric verdicts, baseline order first, then new metrics."""
    baseline_metrics = baseline.get("metrics", {})
    current_metrics = current.get("metrics", {})
    comparisons: list[Comparison] = []
    for name, reference in baseline_metrics.items():
        kind = reference.get("kind", "seconds")
        reference_value = float(reference["value"])
        entry = current_metrics.get(name)
        if entry is None:
            comparisons.append(
                Comparison(name, kind, reference_value, None, None, True)
            )
            continue
        value = float(entry["value"])
        tolerance = (
            count_tolerance if kind == "count" else time_tolerance
        )
        limit = reference_value * (1.0 + tolerance)
        comparisons.append(
            Comparison(
                name,
                kind,
                reference_value,
                value,
                limit,
                value > limit,
            )
        )
    for name, entry in current_metrics.items():
        if name not in baseline_metrics:
            comparisons.append(
                Comparison(
                    name,
                    entry.get("kind", "seconds"),
                    None,
                    float(entry["value"]),
                    None,
                    False,
                )
            )
    return comparisons


def _git_commit() -> str:
    """The short HEAD hash, or ``"unknown"`` outside a git checkout."""
    try:
        process = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if process.returncode != 0:
        return "unknown"
    return process.stdout.strip() or "unknown"


def last_history_entry(path: Path) -> dict | None:
    """The most recent well-formed history entry, or ``None``.

    Malformed lines are skipped rather than fatal — the history file
    is an append-only log that may have suffered partial writes.
    """
    try:
        lines = path.read_text().splitlines()
    except OSError:
        return None
    for line in reversed(lines):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(entry, dict) and "metrics" in entry:
            return entry
    return None


def append_history(
    path: Path,
    document: dict,
    *,
    commit: str | None = None,
    timestamp: float | None = None,
) -> dict:
    """Append one run to the JSONL history; returns the entry written.

    The entry records the commit (``git rev-parse`` unless overridden),
    a POSIX ``timestamp``, the suite name, and every metric's value —
    flat floats, so downstream plotting needs no schema knowledge.
    """
    entry = {
        "commit": commit if commit is not None else _git_commit(),
        "timestamp": (
            # wall-clock stamp, not a duration  # repro: noqa RPR004
            timestamp if timestamp is not None else time.time()
        ),
        "suite": document.get("suite"),
        "metrics": {
            name: float(metric["value"])
            for name, metric in document.get("metrics", {}).items()
        },
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def _describe_deltas(previous: dict, entry: dict) -> str:
    """Per-metric change versus the previous history entry."""
    lines = [
        f"history: vs {previous.get('commit', '?')} "
        f"(t={previous.get('timestamp', 0):.0f})"
    ]
    previous_metrics = previous.get("metrics", {})
    for name, value in sorted(entry["metrics"].items()):
        before = previous_metrics.get(name)
        if before is None:
            lines.append(f"  {name}: new ({value:.6g})")
        elif before == 0:
            lines.append(f"  {name}: {before:.6g} -> {value:.6g}")
        else:
            delta = (value - before) / before * 100.0
            lines.append(
                f"  {name}: {before:.6g} -> {value:.6g} "
                f"({delta:+.1f}%)"
            )
    return "\n".join(lines)


def _load(path: Path) -> dict:
    document = json.loads(path.read_text())
    if not isinstance(document, dict) or "metrics" not in document:
        raise ValueError(f"{path} is not a baseline document")
    return document


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; 0 = no regressions, 1 = regressions, 2 = usage."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.compare",
        description=(
            "Gate a fresh perf-smoke run against a committed baseline."
        ),
    )
    parser.add_argument("baseline", type=Path, help="reference JSON")
    parser.add_argument("current", type=Path, help="fresh run JSON")
    parser.add_argument(
        "--time-tolerance",
        type=float,
        default=DEFAULT_TIME_TOLERANCE,
        help=(
            "allowed relative increase for seconds metrics "
            f"(default {DEFAULT_TIME_TOLERANCE:g}; 1.0 allows 2x)"
        ),
    )
    parser.add_argument(
        "--count-tolerance",
        type=float,
        default=DEFAULT_COUNT_TOLERANCE,
        help=(
            "allowed relative increase for count metrics "
            f"(default {DEFAULT_COUNT_TOLERANCE:g})"
        ),
    )
    parser.add_argument(
        "--history",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "append this run (commit, timestamp, per-case values) to "
            "PATH as JSON lines and print deltas vs the previous entry"
        ),
    )
    parser.add_argument(
        "--commit",
        default=None,
        metavar="SHA",
        help=(
            "commit label for the history entry (default: "
            "git rev-parse --short HEAD)"
        ),
    )
    args = parser.parse_args(argv)
    if args.time_tolerance < 0 or args.count_tolerance < 0:
        print("error: tolerances must be >= 0", file=sys.stderr)
        return 2
    try:
        baseline = _load(args.baseline)
        current = _load(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    comparisons = compare_documents(
        baseline,
        current,
        time_tolerance=args.time_tolerance,
        count_tolerance=args.count_tolerance,
    )
    regressions = [entry for entry in comparisons if entry.regressed]
    for entry in comparisons:
        print(entry.describe())
    if args.history is not None:
        # Record failing runs too — a trend log that omits bad days
        # cannot show when a regression landed.
        previous = last_history_entry(args.history)
        try:
            written = append_history(
                args.history, current, commit=args.commit
            )
        except (OSError, KeyError, TypeError, ValueError) as error:
            print(
                f"warning: could not append history to "
                f"{args.history}: {error}",
                file=sys.stderr,
            )
        else:
            if previous is not None:
                print(_describe_deltas(previous, written))
    if regressions:
        print(
            f"\nFAIL: {len(regressions)} of {len(comparisons)} metrics "
            "regressed beyond tolerance"
        )
        return 1
    print(f"\nOK: {len(comparisons)} metrics within tolerance")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
