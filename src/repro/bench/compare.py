"""Perf-smoke gate: ``python -m repro.bench.compare baseline.json fresh.json``.

Compares a fresh :mod:`repro.bench.baseline` run against the committed
reference and exits non-zero when any metric regresses beyond its
tolerance:

* ``seconds`` metrics fail when
  ``current > baseline * (1 + time_tolerance)`` — the default
  tolerance of 1.0 (i.e. 2x) absorbs machine noise while still
  catching an accidentally de-vectorized kernel;
* ``count`` metrics (tuples accessed) are deterministic for the
  seeded workloads, so their default tolerance is tight (10%);
* a metric present in the baseline but missing from the fresh run is
  always a failure (a silently dropped benchmark is a regression of
  the harness itself).

Improvements never fail, and extra metrics in the fresh run are
reported but ignored — so adding suite cases does not break older
baselines.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path

__all__ = ["Comparison", "compare_documents", "main"]

DEFAULT_TIME_TOLERANCE = 1.0
DEFAULT_COUNT_TOLERANCE = 0.10


@dataclass(frozen=True)
class Comparison:
    """The verdict for one metric."""

    name: str
    kind: str
    baseline: float | None
    current: float | None
    limit: float | None
    regressed: bool

    @property
    def ratio(self) -> float | None:
        if (
            self.baseline is None
            or self.current is None
            or self.baseline == 0.0
        ):
            return None
        return self.current / self.baseline

    def describe(self) -> str:
        if self.current is None:
            return f"MISSING  {self.name} (baseline {self.baseline:.6g})"
        if self.baseline is None:
            return f"NEW      {self.name} = {self.current:.6g}"
        status = "REGRESS" if self.regressed else "ok"
        ratio = self.ratio
        ratio_text = f" ({ratio:.2f}x)" if ratio is not None else ""
        return (
            f"{status:8} {self.name}: {self.baseline:.6g} -> "
            f"{self.current:.6g}{ratio_text}"
        )


def compare_documents(
    baseline: dict,
    current: dict,
    *,
    time_tolerance: float = DEFAULT_TIME_TOLERANCE,
    count_tolerance: float = DEFAULT_COUNT_TOLERANCE,
) -> list[Comparison]:
    """Per-metric verdicts, baseline order first, then new metrics."""
    baseline_metrics = baseline.get("metrics", {})
    current_metrics = current.get("metrics", {})
    comparisons: list[Comparison] = []
    for name, reference in baseline_metrics.items():
        kind = reference.get("kind", "seconds")
        reference_value = float(reference["value"])
        entry = current_metrics.get(name)
        if entry is None:
            comparisons.append(
                Comparison(name, kind, reference_value, None, None, True)
            )
            continue
        value = float(entry["value"])
        tolerance = (
            count_tolerance if kind == "count" else time_tolerance
        )
        limit = reference_value * (1.0 + tolerance)
        comparisons.append(
            Comparison(
                name,
                kind,
                reference_value,
                value,
                limit,
                value > limit,
            )
        )
    for name, entry in current_metrics.items():
        if name not in baseline_metrics:
            comparisons.append(
                Comparison(
                    name,
                    entry.get("kind", "seconds"),
                    None,
                    float(entry["value"]),
                    None,
                    False,
                )
            )
    return comparisons


def _load(path: Path) -> dict:
    document = json.loads(path.read_text())
    if not isinstance(document, dict) or "metrics" not in document:
        raise ValueError(f"{path} is not a baseline document")
    return document


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; 0 = no regressions, 1 = regressions, 2 = usage."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.compare",
        description=(
            "Gate a fresh perf-smoke run against a committed baseline."
        ),
    )
    parser.add_argument("baseline", type=Path, help="reference JSON")
    parser.add_argument("current", type=Path, help="fresh run JSON")
    parser.add_argument(
        "--time-tolerance",
        type=float,
        default=DEFAULT_TIME_TOLERANCE,
        help=(
            "allowed relative increase for seconds metrics "
            f"(default {DEFAULT_TIME_TOLERANCE:g}; 1.0 allows 2x)"
        ),
    )
    parser.add_argument(
        "--count-tolerance",
        type=float,
        default=DEFAULT_COUNT_TOLERANCE,
        help=(
            "allowed relative increase for count metrics "
            f"(default {DEFAULT_COUNT_TOLERANCE:g})"
        ),
    )
    args = parser.parse_args(argv)
    if args.time_tolerance < 0 or args.count_tolerance < 0:
        print("error: tolerances must be >= 0", file=sys.stderr)
        return 2
    try:
        baseline = _load(args.baseline)
        current = _load(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    comparisons = compare_documents(
        baseline,
        current,
        time_tolerance=args.time_tolerance,
        count_tolerance=args.count_tolerance,
    )
    regressions = [entry for entry in comparisons if entry.regressed]
    for entry in comparisons:
        print(entry.describe())
    if regressions:
        print(
            f"\nFAIL: {len(regressions)} of {len(comparisons)} metrics "
            "regressed beyond tolerance"
        )
        return 1
    print(f"\nOK: {len(comparisons)} metrics within tolerance")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
