"""Benchmark harness: timing, tables, and canonical named workloads."""

from repro.bench.harness import (
    Table,
    geometric_sweep,
    growth_exponent,
    measure_seconds,
)
from repro.bench.workloads import (
    ATTRIBUTE_WORKLOADS,
    TUPLE_WORKLOADS,
    attribute_workload,
    tuple_workload,
)

__all__ = [
    "ATTRIBUTE_WORKLOADS",
    "TUPLE_WORKLOADS",
    "Table",
    "attribute_workload",
    "geometric_sweep",
    "growth_exponent",
    "measure_seconds",
    "tuple_workload",
]
