"""Benchmark harness: timing, tables, workloads, and the perf gate."""

from typing import Any

from repro.bench.harness import (
    Table,
    geometric_sweep,
    growth_exponent,
    measure_seconds,
)
from repro.bench.workloads import (
    ATTRIBUTE_WORKLOADS,
    TUPLE_WORKLOADS,
    attribute_workload,
    tuple_workload,
)

__all__ = [
    "ATTRIBUTE_WORKLOADS",
    "TUPLE_WORKLOADS",
    "Table",
    "attribute_workload",
    "compare_documents",
    "geometric_sweep",
    "growth_exponent",
    "measure_seconds",
    "run_suite",
    "tuple_workload",
    "write_baseline",
]

# The perf-gate entry points are re-exported lazily (PEP 562) so that
# ``python -m repro.bench.baseline`` does not import the module twice
# (once here, once as ``__main__``), which trips a runpy warning.
_LAZY = {
    "run_suite": "repro.bench.baseline",
    "write_baseline": "repro.bench.baseline",
    "compare_documents": "repro.bench.compare",
}


def __getattr__(name: str) -> Any:
    if name in _LAZY:
        import importlib

        module = importlib.import_module(_LAZY[name])
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
