"""Bench-history trend rendering: ``repro bench trend``.

:mod:`repro.bench.compare` appends every gated perf-smoke run to
``BENCH_history.jsonl`` (commit, timestamp, flat metric values).  The
gate itself is binary; this module reads the accumulated log back and
renders the *trajectory* — per-metric values across the last N runs
with the relative delta from the first to the last shown entry — so a
slow drift that never trips the 2x tolerance is still visible in CI
logs and the uploaded artifact.

Plain data first: :func:`trend_table` returns rows a caller can
re-render, :func:`render_trend` formats them for a terminal, and the
CLI (wired as ``repro bench trend``) adds ``--json`` for machines.
"""

from __future__ import annotations

import fnmatch
import json
from pathlib import Path
from typing import Iterable, Mapping

__all__ = [
    "load_history",
    "render_trend",
    "trend_table",
]


def load_history(path: Path | str) -> tuple[list[dict], list[str]]:
    """``(entries, problems)`` from a JSONL history file.

    Malformed lines are reported, not fatal — the history is an
    append-only log that may have suffered partial writes, and a
    trend over the surviving entries is still a trend.
    """
    entries: list[dict] = []
    problems: list[str] = []
    try:
        lines = Path(path).read_text().splitlines()
    except OSError as error:
        return [], [str(error)]
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as error:
            problems.append(f"line {number}: {error}")
            continue
        if not isinstance(entry, dict) or not isinstance(
            entry.get("metrics"), Mapping
        ):
            problems.append(f"line {number}: not a history entry")
            continue
        entries.append(entry)
    return entries, problems


def trend_table(
    entries: Iterable[Mapping],
    *,
    last: int | None = None,
    pattern: str | None = None,
) -> dict:
    """The trend as plain data.

    Returns ``{"commits": [...], "metrics": {name: {"values": [...],
    "delta": ...}}}`` over the ``last`` entries (all when ``None``).
    ``values`` aligns with ``commits`` (``None`` where a run lacked
    the metric); ``delta`` is the first→last relative change over the
    shown window, ``None`` when either endpoint is missing or zero.
    ``pattern`` filters metric names with shell-style wildcards.
    """
    window = list(entries)
    if last is not None and last > 0:
        window = window[-last:]
    names: set[str] = set()
    for entry in window:
        names.update(str(name) for name in entry["metrics"])
    if pattern is not None:
        names = {
            name
            for name in names
            if fnmatch.fnmatch(name, pattern)
        }
    metrics: dict[str, dict] = {}
    for name in sorted(names):
        values: list[float | None] = []
        for entry in window:
            value = entry["metrics"].get(name)
            values.append(
                float(value)
                if isinstance(value, (int, float))
                else None
            )
        present = [value for value in values if value is not None]
        delta = None
        if len(present) >= 2 and present[0] != 0:
            delta = (present[-1] - present[0]) / present[0]
        metrics[name] = {"values": values, "delta": delta}
    return {
        "commits": [
            str(entry.get("commit", "?")) for entry in window
        ],
        "metrics": metrics,
    }


def render_trend(table: Mapping) -> str:
    """A terminal table: one metric per row, newest run last."""
    commits = list(table["commits"])
    if not commits:
        return "no history entries"
    name_width = max(
        [len(name) for name in table["metrics"]] or [6]
    )
    header = (
        f"{'metric':<{name_width}}  "
        + "  ".join(f"{commit:>10}" for commit in commits)
        + "      delta"
    )
    lines = [header, "-" * len(header)]
    for name, row in table["metrics"].items():
        cells = "  ".join(
            f"{value:>10.6g}" if value is not None else f"{'-':>10}"
            for value in row["values"]
        )
        delta = row["delta"]
        delta_text = (
            f"{delta:+9.1%}" if delta is not None else f"{'-':>9}"
        )
        lines.append(
            f"{name:<{name_width}}  {cells}  {delta_text}"
        )
    lines.append(
        f"{len(table['metrics'])} metrics over "
        f"{len(commits)} runs"
    )
    return "\n".join(lines)
