"""Canonical benchmark workloads, named after the paper's regimes.

Every experiment in EXPERIMENTS.md pulls its inputs from here so the
distribution codes mean the same thing everywhere:

* ``uu``   — uniform scores, uniform probabilities, independent;
* ``zipf`` — Zipfian (heavy-tailed) scores, uniform probabilities;
* ``cor``  — scores and probabilities positively correlated;
* ``anti`` — negatively correlated (likely tuples score low), the
  regime that separates ranking definitions most sharply.

Attribute-level workloads vary the center-score distribution; the
probability shape lives inside each tuple's pdf.  All workloads are
seeded, so benchmark tables are reproducible run to run.
"""

from __future__ import annotations

from repro.datagen.attribute_gen import generate_attribute_relation
from repro.datagen.tuple_gen import generate_tuple_relation
from repro.exceptions import WorkloadError
from repro.models.attribute import AttributeLevelRelation
from repro.models.tuple_level import TupleLevelRelation

__all__ = [
    "ATTRIBUTE_WORKLOADS",
    "TUPLE_WORKLOADS",
    "attribute_workload",
    "tuple_workload",
]

#: Attribute-level distribution codes -> generator keyword presets.
ATTRIBUTE_WORKLOADS: dict[str, dict] = {
    "uu": {"score_distribution": "uniform"},
    "zipf": {"score_distribution": "zipf"},
    "norm": {"score_distribution": "normal"},
}

#: Tuple-level distribution codes -> generator keyword presets.
TUPLE_WORKLOADS: dict[str, dict] = {
    "uu": {"score_distribution": "uniform", "correlation": "independent"},
    "zipf": {"score_distribution": "zipf", "correlation": "independent"},
    "cor": {"score_distribution": "uniform", "correlation": "positive"},
    "anti": {"score_distribution": "uniform", "correlation": "negative"},
}


def attribute_workload(
    code: str,
    count: int,
    *,
    pdf_size: int = 5,
    seed: int = 7,
    **overrides,
) -> AttributeLevelRelation:
    """Build the named attribute-level workload at size ``count``."""
    try:
        preset = dict(ATTRIBUTE_WORKLOADS[code])
    except KeyError:
        known = ", ".join(sorted(ATTRIBUTE_WORKLOADS))
        raise WorkloadError(
            f"unknown attribute workload {code!r}; known: {known}"
        ) from None
    preset.update(overrides)
    return generate_attribute_relation(
        count, pdf_size=pdf_size, seed=seed, **preset
    )


def tuple_workload(
    code: str,
    count: int,
    *,
    seed: int = 7,
    **overrides,
) -> TupleLevelRelation:
    """Build the named tuple-level workload at size ``count``."""
    try:
        preset = dict(TUPLE_WORKLOADS[code])
    except KeyError:
        known = ", ".join(sorted(TUPLE_WORKLOADS))
        raise WorkloadError(
            f"unknown tuple workload {code!r}; known: {known}"
        ) from None
    preset.update(overrides)
    return generate_tuple_relation(count, seed=seed, **preset)
