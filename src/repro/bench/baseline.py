"""Machine-readable perf-smoke baseline: ``python -m repro.bench.baseline``.

Runs a fixed, seeded suite over the hot kernels and the pruning
algorithms and writes one JSON document with two kinds of metric:

* ``seconds`` — median wall-clock time of a kernel invocation
  (machine-dependent; compared with a generous tolerance);
* ``count``   — the paper's tuples-accessed cost metric for the
  pruning scans (deterministic given the seeded workloads; compared
  tightly).

The committed ``BENCH_baseline.json`` at the repository root is the
reference; CI regenerates a fresh run and gates on
:mod:`repro.bench.compare`:

    python -m repro.bench.baseline --out fresh.json
    python -m repro.bench.compare BENCH_baseline.json fresh.json

``--scale`` shrinks every workload proportionally (tests use tiny
scales), ``--repeats`` controls the timing median.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.bench.harness import measure_seconds
from repro.bench.workloads import attribute_workload, tuple_workload
from repro.core.attr_expected_rank import (
    a_erank_prune,
    attribute_expected_ranks,
    attribute_expected_ranks_vectorized,
)
from repro.core.attr_mq_rank import (
    a_mqrank_prune,
    attribute_rank_distributions,
)
from repro.core.tuple_expected_rank import (
    t_erank_prune,
    tuple_expected_ranks,
    tuple_expected_ranks_vectorized,
)
from repro.core.tuple_mq_rank import t_mqrank_prune, tuple_rank_distributions

__all__ = ["SCHEMA_VERSION", "SUITE_NAME", "run_suite", "write_baseline",
           "main"]

SCHEMA_VERSION = 1
SUITE_NAME = "repro-perf-smoke"


def _scaled(base: int, scale: float, *, floor: int = 8) -> int:
    return max(floor, int(base * scale))


@dataclass(frozen=True)
class Case:
    """One suite entry: a named measurement and how to take it."""

    name: str
    kind: str  # "seconds" | "count"
    run: Callable[[float, int], float]


def _timing(build, call) -> Callable[[float, int], float]:
    def run(scale: float, repeats: int) -> float:
        subject = build(scale)
        return measure_seconds(
            lambda: call(subject), repeats=repeats, warmup=1
        )

    return run


def _access_count(build, call) -> Callable[[float, int], float]:
    def run(scale: float, repeats: int) -> float:
        subject = build(scale)
        result = call(subject)
        return float(result.metadata["tuples_accessed"])

    return run


SUITE: tuple[Case, ...] = (
    Case(
        "a_erank/uu/n=2000/seconds",
        "seconds",
        _timing(
            lambda scale: attribute_workload("uu", _scaled(2000, scale)),
            lambda relation: attribute_expected_ranks(relation),
        ),
    ),
    Case(
        "a_erank_vectorized/uu/n=8000/seconds",
        "seconds",
        _timing(
            lambda scale: attribute_workload("uu", _scaled(8000, scale)),
            lambda relation: attribute_expected_ranks_vectorized(relation),
        ),
    ),
    Case(
        "t_erank/uu/n=4000/seconds",
        "seconds",
        _timing(
            lambda scale: tuple_workload("uu", _scaled(4000, scale)),
            lambda relation: tuple_expected_ranks(relation),
        ),
    ),
    Case(
        "t_erank_vectorized/uu/n=8000/seconds",
        "seconds",
        _timing(
            lambda scale: tuple_workload("uu", _scaled(8000, scale)),
            lambda relation: tuple_expected_ranks_vectorized(relation),
        ),
    ),
    Case(
        "a_mqrank/uu/n=160/seconds",
        "seconds",
        _timing(
            lambda scale: attribute_workload(
                "uu", _scaled(160, scale), pdf_size=3
            ),
            lambda relation: attribute_rank_distributions(relation),
        ),
    ),
    Case(
        "t_mqrank/uu/n=200/seconds",
        "seconds",
        _timing(
            lambda scale: tuple_workload("uu", _scaled(200, scale)),
            lambda relation: tuple_rank_distributions(relation),
        ),
    ),
    Case(
        "a_mqrank_gf/uu/n=1000/seconds",
        "seconds",
        _timing(
            lambda scale: attribute_workload(
                "uu", _scaled(1000, scale), pdf_size=3
            ),
            lambda relation: attribute_rank_distributions(
                relation, engine="gf"
            ),
        ),
    ),
    Case(
        "t_mqrank_gf/uu/n=1000/seconds",
        "seconds",
        _timing(
            lambda scale: tuple_workload("uu", _scaled(1000, scale)),
            lambda relation: tuple_rank_distributions(
                relation, engine="gf"
            ),
        ),
    ),
    Case(
        "a_erank_prune/zipf/n=2000/k=10/tuples_accessed",
        "count",
        _access_count(
            lambda scale: attribute_workload("zipf", _scaled(2000, scale)),
            lambda relation: a_erank_prune(relation, 10),
        ),
    ),
    Case(
        "t_erank_prune/uu/n=4000/k=10/tuples_accessed",
        "count",
        _access_count(
            lambda scale: tuple_workload("uu", _scaled(4000, scale)),
            lambda relation: t_erank_prune(relation, 10),
        ),
    ),
    Case(
        "a_mqrank_prune/zipf/n=240/k=5/tuples_accessed",
        "count",
        _access_count(
            lambda scale: attribute_workload(
                "zipf", _scaled(240, scale), pdf_size=3
            ),
            lambda relation: a_mqrank_prune(relation, 5),
        ),
    ),
    Case(
        "t_mqrank_prune/uu/n=400/k=5/tuples_accessed",
        "count",
        _access_count(
            lambda scale: tuple_workload("uu", _scaled(400, scale)),
            lambda relation: t_mqrank_prune(relation, 5),
        ),
    ),
)


def run_suite(
    *,
    scale: float = 1.0,
    repeats: int = 3,
    names: set[str] | None = None,
    verbose: bool = False,
) -> dict:
    """Execute the suite; returns the baseline document as a dict.

    ``names`` restricts the run to a subset of case names (unknown
    names raise ``ValueError``); ``scale`` shrinks workload sizes.
    """
    if names is not None:
        known = {case.name for case in SUITE}
        unknown = names - known
        if unknown:
            raise ValueError(
                f"unknown case(s): {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
    metrics: dict[str, dict] = {}
    for case in SUITE:
        if names is not None and case.name not in names:
            continue
        value = case.run(scale, repeats)
        metrics[case.name] = {"kind": case.kind, "value": value}
        if verbose:
            print(f"  {case.name}: {value:.6g}", file=sys.stderr)
    return {
        "schema": SCHEMA_VERSION,
        "suite": SUITE_NAME,
        "scale": scale,
        "repeats": repeats,
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
        },
        "metrics": metrics,
    }


def write_baseline(document: dict, path: Path | str) -> None:
    """Pretty-print the baseline document to ``path``."""
    Path(path).write_text(json.dumps(document, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.baseline",
        description="Run the perf-smoke suite and write a JSON baseline.",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path("BENCH_baseline.json"),
        help="output file (default: BENCH_baseline.json)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload size multiplier (default 1.0)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repetitions per case (default 3)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-case progress on stderr",
    )
    args = parser.parse_args(argv)
    if args.scale <= 0:
        print(f"error: --scale must be > 0, got {args.scale}",
              file=sys.stderr)
        return 2
    if args.repeats < 1:
        print(f"error: --repeats must be >= 1, got {args.repeats}",
              file=sys.stderr)
        return 2
    document = run_suite(
        scale=args.scale, repeats=args.repeats, verbose=not args.quiet
    )
    write_baseline(document, args.out)
    print(f"wrote {len(document['metrics'])} metrics to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
