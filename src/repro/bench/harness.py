"""Measurement utilities behind the benchmark suite.

The experiment scripts report their results the way the paper does —
one table per figure, rows over a swept parameter, columns per
algorithm or distribution.  This module supplies the shared pieces:
wall-clock timing with repetition, sweep execution, and fixed-width
table rendering that survives ``pytest -s`` output.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

__all__ = ["measure_seconds", "Table", "geometric_sweep", "growth_exponent"]


def measure_seconds(
    function: Callable[[], object],
    *,
    repeats: int = 3,
    warmup: int = 0,
) -> float:
    """Median wall-clock seconds of ``function()`` over ``repeats`` runs."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats!r}")
    for _ in range(warmup):
        function()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        samples.append(time.perf_counter() - start)
    samples.sort()
    middle = len(samples) // 2
    if len(samples) % 2:
        return samples[middle]
    return 0.5 * (samples[middle - 1] + samples[middle])


def geometric_sweep(start: int, stop: int, *, factor: int = 2) -> list[int]:
    """``[start, start*factor, ...]`` up to and including ``stop``."""
    if start < 1 or stop < start or factor < 2:
        raise ValueError(
            f"invalid sweep (start={start!r}, stop={stop!r}, "
            f"factor={factor!r})"
        )
    values = []
    current = start
    while current <= stop:
        values.append(current)
        current *= factor
    return values


@dataclass
class Table:
    """A fixed-width results table, printed like the paper's figures.

    >>> table = Table("Demo", ["N", "time"])
    >>> table.add_row([100, 0.5])
    >>> text = table.render()
    """

    title: str
    columns: Sequence[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, values: Iterable[object]) -> None:
        """Append one row; lengths must match the header."""
        row = list(values)
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(row)

    def add_note(self, note: str) -> None:
        """Attach a free-form footnote rendered under the table."""
        self.notes.append(note)

    @staticmethod
    def _format_cell(value: object) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            if value == 0.0:
                return "0"
            magnitude = abs(value)
            if magnitude >= 1000 or magnitude < 0.001:
                return f"{value:.3e}"
            return f"{value:.4g}"
        return str(value)

    def render(self) -> str:
        """The table as aligned monospaced text."""
        cells = [[self._format_cell(value) for value in row]
                 for row in self.rows]
        widths = [len(name) for name in self.columns]
        for row in cells:
            for index, text in enumerate(row):
                widths[index] = max(widths[index], len(text))
        separator = "-+-".join("-" * width for width in widths)
        lines = [self.title]
        lines.append(
            " | ".join(
                name.ljust(width)
                for name, width in zip(self.columns, widths)
            )
        )
        lines.append(separator)
        for row in cells:
            lines.append(
                " | ".join(
                    text.rjust(width) for text, width in zip(row, widths)
                )
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def show(self) -> None:
        """Print the rendered table, framed by blank lines."""
        print()
        print(self.render())
        print()

    def column(self, name: str) -> list[object]:
        """All values of one column, for programmatic assertions."""
        try:
            index = list(self.columns).index(name)
        except ValueError:
            raise KeyError(f"no column named {name!r}") from None
        return [row[index] for row in self.rows]


def growth_exponent(sizes: Sequence[float], times: Sequence[float]) -> float:
    """Least-squares slope of log(time) against log(size).

    The scalability experiments assert *shape*, not absolute speed: an
    ``O(N log N)`` algorithm's exponent stays near one while a
    quadratic one approaches two.
    """
    if len(sizes) != len(times) or len(sizes) < 2:
        raise ValueError("need two aligned samples at least")
    xs = [math.log(value) for value in sizes]
    ys = [math.log(max(value, 1e-12)) for value in times]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    numerator = sum(
        (x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)
    )
    denominator = sum((x - mean_x) ** 2 for x in xs)
    return numerator / denominator
