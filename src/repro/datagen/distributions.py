"""Primitive samplers for synthetic workloads.

The paper's experiments draw scores and probabilities from uniform,
Zipfian (skewed) and correlated distributions.  These helpers return
numpy arrays; the relation generators assemble them into model
instances.  All sampling is driven by an explicit
:class:`numpy.random.Generator` for reproducibility.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import WorkloadError

__all__ = [
    "resolve_rng",
    "uniform_scores",
    "zipf_scores",
    "normal_scores",
    "uniform_probabilities",
    "beta_probabilities",
    "dirichlet_weights",
]


def resolve_rng(seed_or_rng) -> np.random.Generator:
    """Accept a Generator, a seed, or ``None`` (fresh entropy)."""
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def uniform_scores(
    rng: np.random.Generator,
    count: int,
    *,
    low: float = 1.0,
    high: float = 1000.0,
) -> np.ndarray:
    """Scores uniform on ``[low, high)`` — the ``uu`` workloads."""
    if count < 0:
        raise WorkloadError(f"count must be >= 0, got {count!r}")
    if not low < high:
        raise WorkloadError(f"need low < high, got [{low!r}, {high!r})")
    return rng.uniform(low, high, size=count)


def zipf_scores(
    rng: np.random.Generator,
    count: int,
    *,
    alpha: float = 1.5,
    scale: float = 10.0,
    cap: float = 1e6,
) -> np.ndarray:
    """Heavy-tailed scores — the ``zipf`` workloads.

    Samples Zipf(``alpha``) integers, caps the tail at ``cap / scale``
    and multiplies by ``scale``; a small uniform jitter breaks ties so
    score order is almost surely strict.
    """
    if count < 0:
        raise WorkloadError(f"count must be >= 0, got {count!r}")
    if alpha <= 1.0:
        raise WorkloadError(f"zipf alpha must be > 1, got {alpha!r}")
    raw = rng.zipf(alpha, size=count).astype(float)
    raw = np.minimum(raw, cap / scale)
    jitter = rng.uniform(0.0, 0.5, size=count)
    return scale * (raw + jitter)


def normal_scores(
    rng: np.random.Generator,
    count: int,
    *,
    mean: float = 500.0,
    std: float = 100.0,
    minimum: float = 1.0,
) -> np.ndarray:
    """Gaussian scores clipped below at ``minimum`` (kept positive so
    the Markov-based pruning stays applicable)."""
    if count < 0:
        raise WorkloadError(f"count must be >= 0, got {count!r}")
    if std <= 0.0:
        raise WorkloadError(f"std must be > 0, got {std!r}")
    return np.maximum(rng.normal(mean, std, size=count), minimum)


def uniform_probabilities(
    rng: np.random.Generator,
    count: int,
    *,
    low: float = 0.02,
    high: float = 1.0,
) -> np.ndarray:
    """Membership probabilities uniform on ``[low, high]``."""
    if not 0.0 <= low < high <= 1.0:
        raise WorkloadError(
            f"need 0 <= low < high <= 1, got [{low!r}, {high!r}]"
        )
    return rng.uniform(low, high, size=count)


def beta_probabilities(
    rng: np.random.Generator,
    count: int,
    *,
    a: float = 2.0,
    b: float = 2.0,
    floor: float = 1e-3,
) -> np.ndarray:
    """Beta-distributed membership probabilities, floored away from 0."""
    if a <= 0.0 or b <= 0.0:
        raise WorkloadError(f"beta parameters must be > 0, got {a!r},{b!r}")
    return np.maximum(rng.beta(a, b, size=count), floor)


def dirichlet_weights(
    rng: np.random.Generator,
    size: int,
    *,
    concentration: float = 1.0,
) -> np.ndarray:
    """A random pdf over ``size`` alternatives (symmetric Dirichlet)."""
    if size < 1:
        raise WorkloadError(f"size must be >= 1, got {size!r}")
    if concentration <= 0.0:
        raise WorkloadError(
            f"concentration must be > 0, got {concentration!r}"
        )
    return rng.dirichlet(np.full(size, concentration))
