"""Synthetic stand-ins for the paper's real datasets.

The original experiments used proprietary data we cannot ship: movie
ratings (as in the MystiQ movie database), noisy sensor measurements,
and sighting reports with per-report confidences.  These generators
produce structurally equivalent data — the same uncertainty shapes the
algorithms consume — as documented in DESIGN.md's substitution table.
All generators are seeded and deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.datagen.distributions import resolve_rng
from repro.exceptions import WorkloadError
from repro.models.attribute import AttributeLevelRelation, AttributeTuple
from repro.models.pdf import DiscretePDF
from repro.models.rules import ExclusionRule
from repro.models.tuple_level import TupleLevelRelation, TupleLevelTuple

__all__ = ["movie_ratings", "sensor_readings", "iceberg_sightings"]

_ADJECTIVES = (
    "Silent", "Crimson", "Forgotten", "Electric", "Golden", "Midnight",
    "Savage", "Gentle", "Broken", "Infinite",
)
_NOUNS = (
    "Harbor", "Empire", "Garden", "Signal", "Mirror", "Voyage",
    "Orchard", "Summit", "Archive", "Lantern",
)


def movie_ratings(
    count: int = 200,
    *,
    rating_levels: int = 10,
    seed=None,
) -> AttributeLevelRelation:
    """Movies whose rating is a discrete pdf over ``1..rating_levels``.

    Mimics aggregated user ratings: each movie has a latent quality;
    individual ratings scatter around it, yielding a peaked pdf over
    the rating scale.  Popular (high-quality) titles get tighter pdfs,
    matching the intuition that widely-rated movies have more certain
    scores.  Tuple attributes carry a human-readable title.
    """
    if count < 0:
        raise WorkloadError(f"count must be >= 0, got {count!r}")
    if rating_levels < 2:
        raise WorkloadError(
            f"rating_levels must be >= 2, got {rating_levels!r}"
        )
    rng = resolve_rng(seed)
    levels = np.arange(1, rating_levels + 1, dtype=float)
    rows = []
    for index in range(count):
        quality = rng.uniform(1.0, rating_levels)
        tightness = rng.uniform(0.5, 2.5)
        weights = np.exp(-tightness * np.abs(levels - quality))
        title = (
            f"{_ADJECTIVES[index % len(_ADJECTIVES)]} "
            f"{_NOUNS[(index // len(_ADJECTIVES)) % len(_NOUNS)]} "
            f"#{index}"
        )
        rows.append(
            AttributeTuple(
                f"movie{index}",
                DiscretePDF(
                    levels.tolist(), weights.tolist(), normalize=True
                ),
                {"title": title},
            )
        )
    return AttributeLevelRelation(rows)


def sensor_readings(
    count: int = 200,
    *,
    alternatives: int = 5,
    base_low: float = 10.0,
    base_high: float = 40.0,
    noise_std: float = 1.5,
    seed=None,
) -> AttributeLevelRelation:
    """Sensors reporting a noisy measurement as a small discrete pdf.

    Each sensor's true value is uniform on ``[base_low, base_high]``
    (think temperatures); the reading pdf discretises a Gaussian around
    it — the classic attribute-level use case the paper cites ([13],
    [27]).  Values stay strictly positive for the pruning algorithms.
    """
    if count < 0:
        raise WorkloadError(f"count must be >= 0, got {count!r}")
    if alternatives < 1:
        raise WorkloadError(
            f"alternatives must be >= 1, got {alternatives!r}"
        )
    rng = resolve_rng(seed)
    rows = []
    for index in range(count):
        truth = rng.uniform(base_low, base_high)
        offsets = np.linspace(-2.0, 2.0, alternatives)
        values = np.maximum(truth + offsets * noise_std, 1e-3)
        weights = np.exp(-0.5 * offsets**2)
        rows.append(
            AttributeTuple(
                f"sensor{index}",
                DiscretePDF(
                    values.tolist(), weights.tolist(), normalize=True
                ),
                {"location": f"site-{index % 17}"},
            )
        )
    return AttributeLevelRelation(rows)


def iceberg_sightings(
    count: int = 200,
    *,
    conflict_fraction: float = 0.4,
    seed=None,
) -> TupleLevelRelation:
    """Sighting reports with confidences and mutual exclusions.

    Mimics the International Ice Patrol style data used by prior
    tuple-level ranking work: each report carries a drift-distance
    score and a confidence; pairs of reports that cannot both describe
    a real object (same object, contradictory positions) form
    exclusion rules.
    """
    if count < 0:
        raise WorkloadError(f"count must be >= 0, got {count!r}")
    if not 0.0 <= conflict_fraction <= 1.0:
        raise WorkloadError(
            f"conflict_fraction must be in [0, 1], got "
            f"{conflict_fraction!r}"
        )
    rng = resolve_rng(seed)
    rows = []
    for index in range(count):
        drift = float(rng.gamma(shape=3.0, scale=15.0) + 1.0)
        confidence = float(rng.beta(3.0, 1.5))
        rows.append(
            TupleLevelTuple(
                f"sighting{index}",
                drift,
                confidence,
                {"source": ("radar", "visual", "satellite")[index % 3]},
            )
        )
    rules = []
    conflicted = int(conflict_fraction * count) // 2 * 2
    if conflicted:
        chosen = rng.permutation(count)[:conflicted]
        for pair_index in range(conflicted // 2):
            first = int(chosen[2 * pair_index])
            second = int(chosen[2 * pair_index + 1])
            total = rows[first].probability + rows[second].probability
            if total > 1.0:
                scale = (1.0 - 1e-9) / total
                for position in (first, second):
                    row = rows[position]
                    rows[position] = TupleLevelTuple(
                        row.tid,
                        row.score,
                        row.probability * scale,
                        row.attributes,
                    )
            rules.append(
                ExclusionRule(
                    f"conflict{pair_index}",
                    [rows[min(first, second)].tid,
                     rows[max(first, second)].tid],
                )
            )
    return TupleLevelRelation(rows, rules=rules)
