"""Gaussian-copula coupling between scores and probabilities.

The ``cor`` workloads of the experiments correlate a tuple's score
with its membership probability (positively: high-scoring tuples are
likely; negatively: high-scoring tuples are doubtful — the regime that
stresses every ranking definition).  A Gaussian copula produces
uniform marginals with the requested rank correlation, which the
generators then push through the marginal samplers.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import WorkloadError

__all__ = ["copula_uniform_pairs", "CORRELATION_PRESETS"]

#: Named correlation regimes used throughout the benchmarks.
CORRELATION_PRESETS: dict[str, float] = {
    "independent": 0.0,
    "positive": 0.8,
    "negative": -0.8,
}


def copula_uniform_pairs(
    rng: np.random.Generator,
    count: int,
    rho: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Two uniform(0,1) vectors whose Gaussian copula has corr ``rho``.

    Returns ``(u, v)``; feeding these through inverse-cdf transforms
    yields correlated samples with arbitrary marginals.
    """
    if count < 0:
        raise WorkloadError(f"count must be >= 0, got {count!r}")
    if not -1.0 <= rho <= 1.0:
        raise WorkloadError(f"rho must be in [-1, 1], got {rho!r}")
    first = rng.standard_normal(count)
    if abs(rho) == 1.0:
        second = np.sign(rho) * first
    else:
        noise = rng.standard_normal(count)
        second = rho * first + np.sqrt(1.0 - rho * rho) * noise
    return _standard_normal_cdf(first), _standard_normal_cdf(second)


def _standard_normal_cdf(values: np.ndarray) -> np.ndarray:
    """Phi(x) via erf — avoids a scipy dependency in the library core."""
    return 0.5 * (1.0 + _erf_vector(values / math.sqrt(2.0)))


def _erf_vector(values: np.ndarray) -> np.ndarray:
    """Vectorised error function (Abramowitz-Stegun 7.1.26, |e|<1.5e-7)."""
    sign = np.sign(values)
    x = np.abs(values)
    t = 1.0 / (1.0 + 0.3275911 * x)
    poly = t * (
        0.254829592
        + t
        * (
            -0.284496736
            + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))
        )
    )
    return sign * (1.0 - poly * np.exp(-x * x))
