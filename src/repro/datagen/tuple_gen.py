"""Synthetic tuple-level relations (x-relations, Figure 3 shaped data).

Scores and membership probabilities come from configurable marginals
coupled through a Gaussian copula (``correlation`` preset or explicit
rho), and a configurable fraction of tuples is grouped into exclusion
rules.  Per-rule probability mass is rescaled below one when the drawn
members would overflow — preserving each workload's marginal shape
while keeping every rule a valid distribution.
"""

from __future__ import annotations

import numpy as np

from repro.datagen.correlation import (
    CORRELATION_PRESETS,
    copula_uniform_pairs,
)
from repro.datagen.distributions import resolve_rng
from repro.exceptions import WorkloadError
from repro.models.rules import ExclusionRule
from repro.models.tuple_level import TupleLevelRelation, TupleLevelTuple

__all__ = ["generate_tuple_relation"]


def _scores_from_uniforms(
    uniforms: np.ndarray,
    distribution: str,
    low: float,
    high: float,
    zipf_alpha: float,
) -> np.ndarray:
    """Inverse-cdf transforms of uniform draws, per distribution."""
    if distribution == "uniform":
        return low + (high - low) * uniforms
    if distribution == "zipf":
        # Pareto-style inverse cdf: heavy upper tail, bounded below.
        exponent = 1.0 / (zipf_alpha - 1.0)
        shape = 1.0 - (low / high) ** (1.0 / exponent)
        return low * (1.0 - uniforms * shape) ** -exponent
    raise WorkloadError(
        f"unknown score distribution {distribution!r}; "
        "known: uniform, zipf"
    )


def generate_tuple_relation(
    count: int,
    *,
    score_distribution: str = "uniform",
    correlation: str | float = "independent",
    probability_low: float = 0.02,
    probability_high: float = 1.0,
    rule_fraction: float = 0.3,
    rule_size: int = 2,
    score_low: float = 1.0,
    score_high: float = 1000.0,
    zipf_alpha: float = 1.5,
    seed=None,
    tid_prefix: str = "t",
) -> TupleLevelRelation:
    """Generate an x-relation of ``count`` tuples.

    Parameters
    ----------
    count:
        Number of tuples ``N``.
    score_distribution:
        ``"uniform"`` or ``"zipf"`` marginal for scores.
    correlation:
        ``"independent"``, ``"positive"``, ``"negative"`` (the paper's
        ``uu`` / ``cor`` regimes) or an explicit copula rho in
        ``[-1, 1]`` between score and membership probability.
    probability_low / probability_high:
        Range of the (uniform-marginal) membership probabilities.
    rule_fraction:
        Fraction of tuples placed into multi-tuple exclusion rules.
    rule_size:
        Members per generated rule (the paper assumes a constant
        number of choices per rule).
    seed:
        Seed or :class:`numpy.random.Generator`.
    """
    if count < 0:
        raise WorkloadError(f"count must be >= 0, got {count!r}")
    if isinstance(correlation, str):
        try:
            rho = CORRELATION_PRESETS[correlation]
        except KeyError:
            known = ", ".join(sorted(CORRELATION_PRESETS))
            raise WorkloadError(
                f"unknown correlation preset {correlation!r}; "
                f"known: {known}"
            ) from None
    else:
        rho = float(correlation)
    if not 0.0 <= rule_fraction <= 1.0:
        raise WorkloadError(
            f"rule_fraction must be in [0, 1], got {rule_fraction!r}"
        )
    if rule_size < 2:
        raise WorkloadError(f"rule_size must be >= 2, got {rule_size!r}")
    if not 0.0 < probability_low < probability_high <= 1.0:
        raise WorkloadError(
            "need 0 < probability_low < probability_high <= 1, got "
            f"[{probability_low!r}, {probability_high!r}]"
        )

    rng = resolve_rng(seed)
    score_uniforms, probability_uniforms = copula_uniform_pairs(
        rng, count, rho
    )
    scores = _scores_from_uniforms(
        score_uniforms,
        score_distribution,
        score_low,
        score_high,
        zipf_alpha,
    )
    # Jitter scores so ties are measure-zero even after float rounding.
    scores = scores + rng.uniform(0.0, 1e-6, size=count)
    probabilities = probability_low + (
        probability_high - probability_low
    ) * probability_uniforms

    rows = [
        TupleLevelTuple(
            f"{tid_prefix}{index}",
            float(scores[index]),
            float(probabilities[index]),
        )
        for index in range(count)
    ]

    # Group a random subset into rules of the requested size; rescale
    # any rule whose membership probabilities would exceed one.
    rules: list[ExclusionRule] = []
    grouped = int(rule_fraction * count) // rule_size * rule_size
    if grouped:
        chosen = rng.permutation(count)[:grouped]
        for rule_index in range(grouped // rule_size):
            members = chosen[
                rule_index * rule_size : (rule_index + 1) * rule_size
            ]
            total = sum(rows[position].probability for position in members)
            if total > 1.0:
                scale = (1.0 - 1e-9) / total
                for position in members:
                    row = rows[position]
                    rows[position] = TupleLevelTuple(
                        row.tid, row.score, row.probability * scale
                    )
            rules.append(
                ExclusionRule(
                    f"rule{rule_index}",
                    [rows[position].tid for position in sorted(members)],
                )
            )
    return TupleLevelRelation(rows, rules=rules)
