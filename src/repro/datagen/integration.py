"""Synthetic web data integration workload (paper Section 1).

The paper's first motivating application is data integration / schema
mapping [19], [9], [20]: records matched across sources come with a
*confidence* reflecting match quality, and groups of contradictory
matches for one real-world entity are mutually exclusive.  This
generator produces such a workload end to end:

* entities, each matched by 1-5 candidate records from different
  sources;
* per-candidate similarity features (name / address / phone match
  scores) whose weighted sum is the ranking score;
* confidences correlated with similarity (better matches are likelier
  to be the true one), normalised so each entity's candidates form a
  valid exclusion rule.
"""

from __future__ import annotations

from repro.datagen.distributions import resolve_rng
from repro.engine.scoring import score_tuple_records, weighted_sum
from repro.exceptions import WorkloadError
from repro.models.tuple_level import TupleLevelRelation

__all__ = ["integration_matches", "MATCH_WEIGHTS"]

#: The scoring weights of the integration scenario: name similarity
#: dominates, address helps, phone seals it.
MATCH_WEIGHTS = {"name_sim": 60.0, "addr_sim": 30.0, "phone_sim": 10.0}

_SOURCES = ("crawl", "partner-feed", "manual", "legacy")


def integration_matches(
    entities: int = 100,
    *,
    max_candidates: int = 4,
    seed=None,
) -> TupleLevelRelation:
    """Candidate record matches for ``entities`` real-world entities.

    Returns an x-relation whose tuples are candidate matches (score =
    weighted similarity; probability = match confidence) and whose
    rules group each entity's contradictory candidates.

    Examples
    --------
    >>> relation = integration_matches(10, seed=0)
    >>> relation.rule_count >= 10
    True
    """
    if entities < 0:
        raise WorkloadError(f"entities must be >= 0, got {entities!r}")
    if max_candidates < 1:
        raise WorkloadError(
            f"max_candidates must be >= 1, got {max_candidates!r}"
        )
    rng = resolve_rng(seed)
    records: list[tuple[str, dict, float]] = []
    conflicts: list[list[str]] = []
    for entity in range(entities):
        candidate_count = int(rng.integers(1, max_candidates + 1))
        # One latent true match quality per entity; candidates scatter
        # below it.
        latent = rng.uniform(0.4, 1.0)
        group: list[str] = []
        raw_confidences: list[float] = []
        for candidate in range(candidate_count):
            quality = latent * rng.uniform(0.5, 1.0)
            attributes = {
                "name_sim": min(1.0, quality * rng.uniform(0.8, 1.2)),
                "addr_sim": min(1.0, quality * rng.uniform(0.6, 1.3)),
                "phone_sim": float(rng.random() < quality),
                "source": _SOURCES[
                    int(rng.integers(0, len(_SOURCES)))
                ],
                "entity": f"entity{entity}",
            }
            tid = f"match{entity}_{candidate}"
            # Confidence tracks quality with noise.
            raw = quality * rng.uniform(0.6, 1.0)
            records.append((tid, attributes, raw))
            raw_confidences.append(raw)
            group.append(tid)
        # Normalise so the rule's mass stays below one: some entities
        # may genuinely have no true match.
        total = sum(raw_confidences)
        ceiling = rng.uniform(0.7, 1.0)
        if total > ceiling:
            scale = ceiling / total
            start = len(records) - candidate_count
            for offset in range(candidate_count):
                tid, attributes, raw = records[start + offset]
                records[start + offset] = (
                    tid,
                    attributes,
                    raw * scale,
                )
        if len(group) > 1:
            conflicts.append(group)
    return score_tuple_records(
        records, weighted_sum(MATCH_WEIGHTS), conflicts=conflicts
    )
