"""Synthetic workload generators for the experiments.

Seeded generators for both uncertainty models (uniform / Zipfian /
correlated regimes) plus structural stand-ins for the paper's real
datasets (see the substitution table in DESIGN.md).
"""

from repro.datagen.attribute_gen import generate_attribute_relation
from repro.datagen.correlation import (
    CORRELATION_PRESETS,
    copula_uniform_pairs,
)
from repro.datagen.distributions import (
    beta_probabilities,
    dirichlet_weights,
    normal_scores,
    resolve_rng,
    uniform_probabilities,
    uniform_scores,
    zipf_scores,
)
from repro.datagen.integration import MATCH_WEIGHTS, integration_matches
from repro.datagen.realworld import (
    iceberg_sightings,
    movie_ratings,
    sensor_readings,
)
from repro.datagen.tuple_gen import generate_tuple_relation

__all__ = [
    "CORRELATION_PRESETS",
    "beta_probabilities",
    "copula_uniform_pairs",
    "dirichlet_weights",
    "generate_attribute_relation",
    "generate_tuple_relation",
    "MATCH_WEIGHTS",
    "iceberg_sightings",
    "integration_matches",
    "movie_ratings",
    "normal_scores",
    "resolve_rng",
    "sensor_readings",
    "uniform_probabilities",
    "uniform_scores",
    "zipf_scores",
]
