"""Synthetic attribute-level relations (Figure 1 shaped data).

Each generated tuple gets a discrete score pdf of a configurable
support size: a *center* drawn from the chosen score distribution,
support values spread around the center, and Dirichlet-random
probabilities.  Values are kept strictly positive so the Markov-based
pruning algorithms remain applicable (their documented precondition).
"""

from __future__ import annotations

import numpy as np

from repro.datagen.distributions import (
    dirichlet_weights,
    normal_scores,
    resolve_rng,
    uniform_scores,
    zipf_scores,
)
from repro.exceptions import WorkloadError
from repro.models.attribute import AttributeLevelRelation, AttributeTuple
from repro.models.pdf import DiscretePDF

__all__ = ["generate_attribute_relation"]

_SCORE_SAMPLERS = {
    "uniform": uniform_scores,
    "zipf": zipf_scores,
    "normal": normal_scores,
}


def generate_attribute_relation(
    count: int,
    *,
    pdf_size: int = 5,
    score_distribution: str = "uniform",
    spread: float = 0.2,
    concentration: float = 1.0,
    seed=None,
    tid_prefix: str = "t",
    **score_options,
) -> AttributeLevelRelation:
    """Generate ``count`` tuples with random score pdfs.

    Parameters
    ----------
    count:
        Number of tuples ``N``.
    pdf_size:
        Support size ``s`` of every score pdf (alternatives per tuple).
    score_distribution:
        ``"uniform"``, ``"zipf"`` or ``"normal"`` — the distribution of
        the per-tuple center score (the ``uu`` / ``zipf`` workloads).
    spread:
        Relative half-width of the support around the center: values
        are drawn in ``center * [1 - spread, 1 + spread]``.
    concentration:
        Dirichlet concentration of the per-value probabilities
        (``1.0`` = uniform over the simplex; larger = more even pdfs).
    seed:
        Seed or :class:`numpy.random.Generator`.
    score_options:
        Passed to the score sampler (``low``/``high``, ``alpha``, ...).
    """
    if count < 0:
        raise WorkloadError(f"count must be >= 0, got {count!r}")
    if pdf_size < 1:
        raise WorkloadError(f"pdf_size must be >= 1, got {pdf_size!r}")
    if not 0.0 <= spread < 1.0:
        raise WorkloadError(f"spread must be in [0, 1), got {spread!r}")
    try:
        sampler = _SCORE_SAMPLERS[score_distribution]
    except KeyError:
        known = ", ".join(sorted(_SCORE_SAMPLERS))
        raise WorkloadError(
            f"unknown score distribution {score_distribution!r}; "
            f"known: {known}"
        ) from None

    rng = resolve_rng(seed)
    centers = sampler(rng, count, **score_options)
    rows = []
    for index, center in enumerate(centers):
        offsets = rng.uniform(-spread, spread, size=pdf_size)
        values = np.maximum(center * (1.0 + offsets), 1e-6)
        # Perturb duplicates (possible when spread == 0) apart.
        values = np.sort(values)
        for j in range(1, values.size):
            if values[j] <= values[j - 1]:
                values[j] = values[j - 1] * (1.0 + 1e-9) + 1e-12
        weights = dirichlet_weights(
            rng, pdf_size, concentration=concentration
        )
        rows.append(
            AttributeTuple(
                f"{tid_prefix}{index}",
                DiscretePDF(
                    values.tolist(),
                    weights.tolist(),
                    normalize=True,
                ),
            )
        )
    return AttributeLevelRelation(rows)
