"""Command-line interface: ``python -m repro <command> ...``.

Four commands cover the everyday workflow without writing Python:

* ``topk`` — run a ranking query over a relation file;
* ``describe`` — relation metadata (model, sizes, uncertainty);
* ``distribution`` — one tuple's exact rank distribution;
* ``generate`` — write a synthetic workload to a relation file.

Relation files are the CSV/JSON formats of :mod:`repro.engine.io`;
CSVs are sniffed by header (a ``value`` column means attribute-level,
a ``score`` column tuple-level).
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path

from repro.core import rank
from repro.core.semantics import available_methods
from repro.engine.io import (
    load_attribute_csv,
    load_json,
    load_tuple_csv,
    save_attribute_csv,
    save_json,
    save_tuple_csv,
)
from repro.exceptions import ReproError, SchemaError
from repro.models.attribute import AttributeLevelRelation

__all__ = ["main", "build_parser", "load_relation"]


def load_relation(path: Path | str):
    """Load a relation from ``.json`` or a sniffed ``.csv`` file."""
    path = Path(path)
    if path.suffix.lower() == ".json":
        return load_json(path)
    with path.open(newline="") as handle:
        header = next(csv.reader(handle), [])
    if "value" in header:
        return load_attribute_csv(path)
    if "score" in header:
        return load_tuple_csv(path)
    raise SchemaError(
        f"{path}: cannot tell the model from columns {header!r} "
        "(need a 'value' or 'score' column)"
    )


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Ranking queries over probabilistic data "
            "(expected / median / quantile ranks and baselines)."
        ),
    )
    parser.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "enable observability for this invocation and write spans "
            "plus a final metrics snapshot to PATH as JSON lines"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    topk = commands.add_parser(
        "topk", help="run a top-k ranking query over a relation file"
    )
    topk.add_argument("file", type=Path, help="relation .csv or .json")
    topk.add_argument("-k", type=int, default=10, help="answers wanted")
    topk.add_argument(
        "--method",
        default="expected_rank",
        choices=sorted(available_methods()),
        help="ranking semantics (default: expected_rank)",
    )
    topk.add_argument(
        "--phi",
        type=float,
        default=None,
        help="quantile for quantile_rank methods",
    )
    topk.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="probability threshold for pt_k",
    )
    topk.add_argument(
        "--ties",
        choices=["shared", "by_index"],
        default=None,
        help="tie-breaking rule where the method supports it",
    )
    topk.add_argument(
        "--json",
        action="store_true",
        help="emit the full result as JSON instead of a table",
    )

    describe = commands.add_parser(
        "describe", help="print relation metadata"
    )
    describe.add_argument("file", type=Path)

    distribution = commands.add_parser(
        "distribution", help="print one tuple's rank distribution"
    )
    distribution.add_argument("file", type=Path)
    distribution.add_argument("tid", help="tuple identifier")

    explain = commands.add_parser(
        "explain",
        help="explain why one tuple outranks another (expected rank)",
    )
    explain.add_argument("file", type=Path)
    explain.add_argument("better", help="the higher-ranked tuple id")
    explain.add_argument("worse", help="the lower-ranked tuple id")

    churn = commands.add_parser(
        "churn",
        help="top-k churn under random input noise (robustness)",
    )
    churn.add_argument("file", type=Path)
    churn.add_argument("-k", type=int, default=5)
    churn.add_argument(
        "--noise",
        type=float,
        nargs="+",
        default=[0.01, 0.05, 0.1, 0.2],
        help="relative noise levels to probe",
    )
    churn.add_argument("--trials", type=int, default=20)
    churn.add_argument("--seed", type=int, default=0)
    churn.add_argument(
        "--method", default="expected_rank",
        choices=sorted(available_methods()),
    )

    audit = commands.add_parser(
        "audit",
        help="check the Section 4.1 ranking properties on a relation",
    )
    audit.add_argument("file", type=Path)
    audit.add_argument(
        "--methods",
        default="expected_rank,median_rank,u_topk,u_kranks,global_topk,"
        "expected_score",
        help="comma-separated method names to audit",
    )
    audit.add_argument(
        "--max-k",
        type=int,
        default=3,
        help="probe k = 1 .. max-k (default 3)",
    )
    audit.add_argument(
        "--threshold",
        type=float,
        default=0.4,
        help="PT-k threshold, when pt_k is among the methods",
    )

    generate = commands.add_parser(
        "generate", help="write a synthetic workload"
    )
    generate.add_argument(
        "model", choices=["attribute", "tuple"], help="uncertainty model"
    )
    generate.add_argument("out", type=Path, help=".csv or .json output")
    generate.add_argument("-n", type=int, default=100, help="tuples")
    generate.add_argument(
        "--workload",
        default="uu",
        help="distribution code (uu/zipf/norm for attribute; "
        "uu/zipf/cor/anti for tuple)",
    )
    generate.add_argument("--seed", type=int, default=7)
    return parser


def _command_topk(args) -> int:
    relation = load_relation(args.file)
    options = {}
    if args.phi is not None:
        options["phi"] = args.phi
    if args.threshold is not None:
        options["threshold"] = args.threshold
    if args.ties is not None:
        options["ties"] = args.ties
    result = rank(relation, args.k, method=args.method, **options)
    if args.json:
        import json as json_module

        print(json_module.dumps(result.to_dict(), indent=2))
        return 0
    print(result.describe())
    accessed = result.metadata.get("tuples_accessed")
    if accessed is not None:
        print(f"tuples accessed: {accessed} of {relation.size}")
    for item in result:
        statistic = (
            "" if item.statistic is None else f"\t{item.statistic:.6g}"
        )
        print(f"{item.position + 1}\t{item.tid}{statistic}")
    return 0


def _command_describe(args) -> int:
    from repro.models.validation import diagnose

    relation = load_relation(args.file)
    if isinstance(relation, AttributeLevelRelation):
        print("model: attribute-level")
        print(f"tuples: {relation.size}")
        print(f"max pdf size: {relation.max_pdf_size()}")
        print(f"possible worlds: {relation.world_count()}")
        universe = relation.value_universe()
        print(
            f"score range: [{universe[0]:g}, {universe[-1]:g}] "
            f"over {len(universe)} distinct values"
        )
    else:
        print("model: tuple-level (x-relation)")
        print(f"tuples: {relation.size}")
        print(f"rules: {relation.rule_count}")
        multi = sum(
            1 for rule in relation.rules if not rule.is_singleton
        )
        print(f"multi-tuple rules: {multi}")
        print(
            f"expected world size: {relation.expected_world_size():g}"
        )
    findings = diagnose(relation)
    if findings:
        print("diagnostics:")
        for finding in findings:
            print(f"  - {finding}")
    return 0


def _command_distribution(args) -> int:
    relation = load_relation(args.file)
    if isinstance(relation, AttributeLevelRelation):
        from repro.core import attribute_rank_distribution

        dist = attribute_rank_distribution(relation, args.tid)
    else:
        from repro.core import tuple_rank_distribution

        dist = tuple_rank_distribution(relation, args.tid)
    print(f"rank distribution of {args.tid}:")
    for value, mass in dist.items():
        print(f"  Pr[rank = {value}] = {mass:.6g}")
    print(f"expected rank: {dist.expectation():.6g}")
    print(f"median rank: {dist.median()}")
    print(f"0.9-quantile rank: {dist.quantile(0.9)}")
    return 0


def _command_explain(args) -> int:
    from repro.core.explain import explain_pair

    relation = load_relation(args.file)
    explanation = explain_pair(relation, args.better, args.worse)
    print(explanation.describe())
    return 0


def _command_churn(args) -> int:
    from repro.core.sensitivity import stability_profile

    relation = load_relation(args.file)
    profile = stability_profile(
        relation,
        args.k,
        noises=tuple(args.noise),
        trials=args.trials,
        method=args.method,
        rng=args.seed,
    )
    print(
        f"top-{args.k} churn under relative noise "
        f"({args.trials} trials, method {args.method}):"
    )
    for report in profile:
        core = sorted(report.stable_core())
        print(
            f"  noise ±{report.noise:.0%}: mean churn "
            f"{report.mean_churn:.1%}, stable core "
            f"{len(core)}/{args.k}"
        )
    return 0


def _command_audit(args) -> int:
    import functools

    from repro.bench.harness import Table
    from repro.core.properties import PROPERTY_NAMES, property_matrix

    relation = load_relation(args.file)
    methods = {}
    for name in args.methods.split(","):
        name = name.strip()
        if not name:
            continue
        if name not in available_methods():
            print(f"error: unknown method {name!r}", file=sys.stderr)
            return 1
        options = (
            {"threshold": args.threshold} if name == "pt_k" else {}
        )
        methods[name] = functools.partial(
            rank, method=name, **options
        )
    ks = list(range(1, max(args.max_k, 1) + 1))
    matrix = property_matrix(methods, [relation], ks=ks)
    table = Table(
        f"Ranking-property audit of {args.file}",
        ["method", *PROPERTY_NAMES],
    )
    for name, row in matrix.items():
        table.add_row(
            [name]
            + [
                "Y" if row[property_name].holds else "N"
                for property_name in PROPERTY_NAMES
            ]
        )
    print(table.render())
    failures = [
        (name, property_name, row[property_name].counterexample)
        for name, row in matrix.items()
        for property_name in PROPERTY_NAMES
        if not row[property_name].holds
    ]
    for name, property_name, counterexample in failures:
        print(f"  {name} / {property_name}: {counterexample}")
    return 0


def _command_generate(args) -> int:
    from repro.bench.workloads import attribute_workload, tuple_workload

    if args.model == "attribute":
        relation = attribute_workload(args.workload, args.n, seed=args.seed)
        writer = save_attribute_csv
    else:
        relation = tuple_workload(args.workload, args.n, seed=args.seed)
        writer = save_tuple_csv
    if args.out.suffix.lower() == ".json":
        save_json(relation, args.out)
    else:
        writer(relation, args.out)
    print(f"wrote {relation.size} tuples to {args.out}")
    return 0


_COMMANDS = {
    "topk": _command_topk,
    "describe": _command_describe,
    "distribution": _command_distribution,
    "explain": _command_explain,
    "churn": _command_churn,
    "audit": _command_audit,
    "generate": _command_generate,
}


def _run_with_metrics(args) -> int:
    """Run one command with a fresh enabled registry + JSONL sink.

    Spans stream to ``args.metrics_out`` as the command runs; a final
    ``{"type": "metrics", ...}`` line carries the registry snapshot.
    The previous registry/sink are restored afterwards so library
    users embedding :func:`main` keep their own configuration.
    """
    from repro.obs import (
        JsonlSink,
        MetricsRegistry,
        set_registry,
        set_sink,
        trace,
    )

    registry = MetricsRegistry(enabled=True)
    sink = JsonlSink(args.metrics_out)
    previous_registry = set_registry(registry)
    previous_sink = set_sink(sink)
    try:
        with trace(f"cli.{args.command}"):
            return _COMMANDS[args.command](args)
    finally:
        set_sink(previous_sink)
        set_registry(previous_registry)
        sink.write({"type": "metrics", **registry.snapshot()})
        sink.close()


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.metrics_out is not None:
            # Fail fast: the sink opens lazily on the first span, which
            # would otherwise surface a bad path only after the command
            # has already done its work.
            parent = args.metrics_out.resolve().parent
            if not parent.is_dir():
                print(
                    f"error: --metrics-out directory {parent} "
                    "does not exist",
                    file=sys.stderr,
                )
                return 2
            return _run_with_metrics(args)
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
