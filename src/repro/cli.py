"""Command-line interface: ``python -m repro <command> ...``.

A handful of commands cover the everyday workflow without writing
Python:

* ``topk`` — run a ranking query over a relation file;
* ``describe`` — relation metadata (model, sizes, uncertainty);
* ``distribution`` — one tuple's exact rank distribution;
* ``explain`` — with two tuple ids, why one outranks the other; with
  none, a full query EXPLAIN report (plan, cost, timings, events);
* ``generate`` — write a synthetic workload to a relation file;
* ``capture`` — execute a workload file, recording every query to a
  capture JSONL (``--capture-out``, also available on ``topk``);
* ``replay`` — re-run a capture against the current code, diffing
  answer digests / tuples accessed / latency per query (exit 9 on
  any answer regression, 12 on degraded input);
* ``report`` — aggregate capture + trace JSONL into a session report
  (slowest queries, per-method latency percentiles, pruning
  efficacy, degradation rates);
* ``chrome-trace`` — convert a span JSONL trace into Chrome
  trace-event JSON loadable in Perfetto / ``chrome://tracing``;
* ``lint`` — run the :mod:`repro.analysis` invariant linter (exit 0
  clean, 1 findings, 13 internal analyzer error; see
  ``docs/static_analysis.md``);
* ``calibrate`` — fit a planner cost model (per-kernel seconds
  coefficients) from bench history and/or capture logs, persisted as
  versioned JSON for ``--cost-model`` (see ``docs/observability.md``);
* ``profile`` — run a query in a loop under the continuous sampling
  profiler and dump collapsed stacks or speedscope JSON
  (``--profile-out`` arms the same profiler on ``topk`` / ``serve``);
* ``bench trend`` — render ``BENCH_history.jsonl`` as a per-metric
  delta table (the perf-smoke gate's trend log, made readable);
* ``serve`` — the multi-tenant serving core (:mod:`repro.serve`) over
  one or more relation files: line-JSON requests in, typed responses
  out, either as a concurrent batch (``--workload`` / stdin) or a TCP
  server (``--port``); exit 11 when any request was shed (see
  ``docs/serving.md``).

Relation files are the CSV/JSON formats of :mod:`repro.engine.io`;
CSVs are sniffed by header (a ``value`` column means attribute-level,
a ``score`` column tuple-level).

Robustness
----------
File-reading commands take ``--lenient`` (quarantine malformed rows
instead of aborting; ``--quarantine-out`` persists the reject log as
JSONL).  ``topk`` and ``explain`` additionally take ``--deadline-ms``,
``--max-retries``, and the chaos knobs ``--inject-faults`` /
``--fault-seed`` / ``--fault-latency-ms``; any of the resilience flags
routes the query through the engine's
:class:`~repro.engine.query.ResilientExecutor` degradation ladder
(exact → pruned → Monte-Carlo) instead of the plain exact path.

Observability
-------------
``--metrics-out PATH`` enables collection for the invocation.  The
output format is ``--metrics-format``: ``json`` (default) streams
spans as JSON lines followed by a final metrics snapshot;
``prom`` writes the registry in Prometheus text exposition format
instead (no span stream — Prometheus has no span representation).

Errors never dump tracebacks: each :class:`~repro.exceptions.ReproError`
family maps to its own exit code (see :data:`EXIT_CODES`).
"""

from __future__ import annotations

import argparse
import csv
import sys
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

from repro.analysis import cli as analysis_cli
from repro.core import rank
from repro.core.semantics import available_methods
from repro.engine.io import (
    load_attribute_csv,
    load_json,
    load_tuple_csv,
    save_attribute_csv,
    save_json,
    save_tuple_csv,
)
from repro.exceptions import (
    DeadlineExceededError,
    EngineError,
    ModelError,
    OverloadedError,
    RankingError,
    ReproError,
    SchemaError,
    UnknownMethodError,
    WorkloadError,
)
from repro.models.attribute import AttributeLevelRelation
from repro.robust import (
    Deadline,
    FaultInjector,
    QuarantineLog,
    RetryPolicy,
    fault_seed_from_env,
)

__all__ = [
    "EXIT_CODES",
    "build_parser",
    "exit_code_for",
    "load_relation",
    "main",
]

#: Exit code per error family, most-specific first.  Code 1 is the
#: catch-all for a :class:`ReproError` outside every named family and
#: 2 stays argparse's usage-error convention.  Two further codes are
#: returned directly (not raised): 9 — ``repro replay`` found an
#: answer-digest regression; 12 — ``replay`` / ``report`` /
#: ``chrome-trace`` ran on degraded input (corrupt JSONL lines,
#: dataset mismatches) without finding a regression.
EXIT_CODES: tuple[tuple[type[BaseException], int], ...] = (
    (DeadlineExceededError, 7),
    (OverloadedError, 11),  # admission control shed the request
    (SchemaError, 3),  # includes QuarantineError
    (ModelError, 4),
    (RankingError, 5),  # includes UnknownMethodError etc.
    (WorkloadError, 8),
    (EngineError, 6),  # remaining engine errors (incl. transient)
    (ReproError, 1),
    (OSError, 10),  # missing files and other environment errors
)


def exit_code_for(error: BaseException) -> int:
    """The process exit code for ``error`` (see :data:`EXIT_CODES`)."""
    for family, code in EXIT_CODES:
        if isinstance(error, family):
            return code
    return 1


def load_relation(
    path: Path | str,
    *,
    mode: str = "strict",
    quarantine: QuarantineLog | None = None,
    injector: FaultInjector | None = None,
    retry: RetryPolicy | None = None,
    deadline: Deadline | None = None,
):
    """Load a relation from ``.json`` or a sniffed ``.csv`` file.

    Keywords are forwarded to the :mod:`repro.engine.io` loaders: the
    strict/lenient ingest contract plus the resilience hooks (chaos
    injector, retry policy, shared deadline).
    """
    path = Path(path)
    keywords = dict(
        mode=mode,
        quarantine=quarantine,
        injector=injector,
        retry=retry,
        deadline=deadline,
    )
    if path.suffix.lower() == ".json":
        return load_json(path, **keywords)
    with path.open(newline="") as handle:
        header = next(csv.reader(handle), [])
    if "value" in header:
        return load_attribute_csv(path, **keywords)
    if "score" in header:
        return load_tuple_csv(path, **keywords)
    raise SchemaError(
        f"{path}: cannot tell the model from columns {header!r} "
        "(need a 'value' or 'score' column)"
    )


def _package_version() -> str:
    """The installed package version, or the source tree's fallback.

    ``importlib.metadata`` answers for installed copies; running
    straight from a checkout (``PYTHONPATH=src``) falls back to
    ``repro.__version__`` so ``--version`` works either way.
    """
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        from repro import __version__

        return __version__


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Ranking queries over probabilistic data "
            "(expected / median / quantile ranks and baselines)."
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {_package_version()}",
    )
    parser.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "enable observability for this invocation and write spans "
            "plus a final metrics snapshot to PATH as JSON lines"
        ),
    )
    parser.add_argument(
        "--metrics-format",
        choices=["json", "prom"],
        default="json",
        help=(
            "--metrics-out format: 'json' streams spans as JSON lines "
            "plus a final snapshot; 'prom' writes the final registry "
            "in Prometheus text exposition format (default: json)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    # Ingest flags shared by every file-reading command.
    ingest = argparse.ArgumentParser(add_help=False)
    ingest.add_argument(
        "--lenient",
        dest="lenient",
        action="store_true",
        help=(
            "quarantine malformed input rows instead of aborting "
            "(default: strict, fail on the first bad row)"
        ),
    )
    ingest.add_argument(
        "--strict",
        dest="lenient",
        action="store_false",
        help="fail on the first malformed input row (the default)",
    )
    ingest.add_argument(
        "--quarantine-out",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "with --lenient, append rejected rows to PATH as JSON "
            "lines"
        ),
    )
    ingest.set_defaults(lenient=False)

    # Query flags shared by topk and explain.
    query = argparse.ArgumentParser(add_help=False)
    query.add_argument("-k", type=int, default=10, help="answers wanted")
    query.add_argument(
        "--method",
        default="expected_rank",
        choices=sorted(available_methods()),
        help="ranking semantics (default: expected_rank)",
    )
    query.add_argument(
        "--phi",
        type=float,
        default=None,
        help="quantile for quantile_rank methods",
    )
    query.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="probability threshold for pt_k",
    )
    query.add_argument(
        "--ties",
        choices=["shared", "by_index"],
        default=None,
        help="tie-breaking rule where the method supports it",
    )
    query.add_argument(
        "--json",
        action="store_true",
        help="emit the full result as JSON instead of text",
    )

    # Resilience flags shared by topk and explain; any of them routes
    # the query through the ResilientExecutor degradation ladder.
    resilience = argparse.ArgumentParser(add_help=False)
    resilience.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        metavar="MS",
        help=(
            "wall-clock budget for the query; when it cannot be met "
            "the answer degrades exact -> pruned -> Monte-Carlo "
            "instead of failing"
        ),
    )
    resilience.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "extra attempts per degradation rung on transient "
            "data-access failures (default 3)"
        ),
    )
    resilience.add_argument(
        "--inject-faults",
        type=float,
        default=None,
        metavar="RATE",
        help=(
            "chaos demo: inject transient data-access faults at "
            "RATE in [0, 1] (deterministic per --fault-seed)"
        ),
    )
    resilience.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help=(
            "seed for injected faults (default: REPRO_FAULT_SEED "
            "or 0)"
        ),
    )
    resilience.add_argument(
        "--fault-latency-ms",
        type=float,
        default=0.0,
        metavar="MS",
        help="injected per-access latency for the chaos demo",
    )

    # Cost-model flag shared by topk, explain, and serve.
    costmodel_flags = argparse.ArgumentParser(add_help=False)
    costmodel_flags.add_argument(
        "--cost-model",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "plan with calibrated per-kernel cost coefficients from "
            "PATH (written by 'repro calibrate'); candidate plans are "
            "ranked by predicted seconds instead of the static "
            "heuristic"
        ),
    )

    # Profiler flags shared by topk and serve.
    profile_flags = argparse.ArgumentParser(add_help=False)
    profile_flags.add_argument(
        "--profile-out",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "arm the sampling profiler for the whole command and "
            "write the dump to PATH (.txt collapsed stacks, "
            "otherwise speedscope JSON)"
        ),
    )
    profile_flags.add_argument(
        "--profile-hz",
        type=float,
        default=97.0,
        metavar="HZ",
        help="profiler sampling rate (default 97)",
    )

    # Capture flags shared by topk and the capture command.
    capture_flags = argparse.ArgumentParser(add_help=False)
    capture_flags.add_argument(
        "--capture-out",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "append one replayable capture record per executed query "
            "to PATH as JSON lines (see 'repro replay')"
        ),
    )
    capture_flags.add_argument(
        "--capture-max-bytes",
        type=int,
        default=None,
        metavar="N",
        help=(
            "cap the capture file at N bytes; when the cap trips, a "
            "truncation notice is written and later records dropped"
        ),
    )

    topk = commands.add_parser(
        "topk",
        parents=[
            ingest,
            query,
            resilience,
            capture_flags,
            costmodel_flags,
            profile_flags,
        ],
        help="run a top-k ranking query over a relation file",
    )
    topk.add_argument("file", type=Path, help="relation .csv or .json")

    describe = commands.add_parser(
        "describe", parents=[ingest], help="print relation metadata"
    )
    describe.add_argument("file", type=Path)

    distribution = commands.add_parser(
        "distribution",
        parents=[ingest],
        help="print one tuple's rank distribution",
    )
    distribution.add_argument("file", type=Path)
    distribution.add_argument("tid", help="tuple identifier")

    explain = commands.add_parser(
        "explain",
        parents=[ingest, query, resilience, costmodel_flags],
        help=(
            "with two tuple ids: why one outranks the other; with "
            "none: EXPLAIN a top-k query (plan, cost, timings, events)"
        ),
    )
    explain.add_argument("file", type=Path)
    explain.add_argument(
        "better",
        nargs="?",
        default=None,
        help="the higher-ranked tuple id (pairwise mode)",
    )
    explain.add_argument(
        "worse",
        nargs="?",
        default=None,
        help="the lower-ranked tuple id (pairwise mode)",
    )
    explain.add_argument(
        "--dry-run",
        action="store_true",
        help="plan the query but do not execute it",
    )
    explain.add_argument(
        "--cheap-access",
        action="store_true",
        help=(
            "plan assuming tuple access is cheap (exact pass) rather "
            "than the default expensive-access planning that prefers "
            "pruned scans"
        ),
    )

    churn = commands.add_parser(
        "churn",
        parents=[ingest],
        help="top-k churn under random input noise (robustness)",
    )
    churn.add_argument("file", type=Path)
    churn.add_argument("-k", type=int, default=5)
    churn.add_argument(
        "--noise",
        type=float,
        nargs="+",
        default=[0.01, 0.05, 0.1, 0.2],
        help="relative noise levels to probe",
    )
    churn.add_argument("--trials", type=int, default=20)
    churn.add_argument("--seed", type=int, default=0)
    churn.add_argument(
        "--method", default="expected_rank",
        choices=sorted(available_methods()),
    )

    audit = commands.add_parser(
        "audit",
        parents=[ingest],
        help="check the Section 4.1 ranking properties on a relation",
    )
    audit.add_argument("file", type=Path)
    audit.add_argument(
        "--methods",
        default="expected_rank,median_rank,u_topk,u_kranks,global_topk,"
        "expected_score",
        help="comma-separated method names to audit",
    )
    audit.add_argument(
        "--max-k",
        type=int,
        default=3,
        help="probe k = 1 .. max-k (default 3)",
    )
    audit.add_argument(
        "--threshold",
        type=float,
        default=0.4,
        help="PT-k threshold, when pt_k is among the methods",
    )

    capture = commands.add_parser(
        "capture",
        parents=[ingest, resilience, capture_flags],
        help=(
            "execute a workload file against a relation, recording "
            "a replayable capture (--capture-out is required)"
        ),
    )
    capture.add_argument(
        "file", type=Path, help="relation .csv or .json"
    )
    capture.add_argument(
        "workload",
        type=Path,
        help=(
            "workload JSONL: one query per line, e.g. "
            '{"k": 5, "method": "expected_rank"} (optional "phi", '
            '"threshold", "ties", or a nested "options" object)'
        ),
    )

    replay = commands.add_parser(
        "replay",
        parents=[ingest],
        help=(
            "re-run a capture against the current code and diff "
            "answers (exit 9 on regression, 12 on degraded input)"
        ),
    )
    replay.add_argument(
        "file", type=Path, help="relation .csv or .json"
    )
    replay.add_argument(
        "capture", type=Path, help="capture JSONL to replay"
    )
    replay.add_argument(
        "--json",
        action="store_true",
        help="emit the replay report as JSON instead of text",
    )

    report = commands.add_parser(
        "report",
        help=(
            "aggregate capture and trace JSONL into a session report "
            "(slowest queries, latency percentiles, pruning efficacy)"
        ),
    )
    report.add_argument(
        "--capture",
        type=Path,
        action="append",
        default=[],
        metavar="PATH",
        help="capture JSONL from --capture-out (repeatable)",
    )
    report.add_argument(
        "--trace",
        type=Path,
        action="append",
        default=[],
        metavar="PATH",
        help="span/metrics JSONL from --metrics-out (repeatable)",
    )
    report.add_argument(
        "--top",
        type=int,
        default=5,
        metavar="N",
        help="slowest queries to list (default 5)",
    )
    report.add_argument(
        "--json",
        action="store_true",
        help="emit the session report as JSON instead of text",
    )

    chrome = commands.add_parser(
        "chrome-trace",
        help=(
            "convert a span JSONL trace into Chrome trace-event JSON "
            "(loadable in Perfetto / chrome://tracing)"
        ),
    )
    chrome.add_argument(
        "trace", type=Path, help="span JSONL from --metrics-out"
    )
    chrome.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="PATH",
        help="output file (default: <trace>.chrome.json)",
    )

    lint = commands.add_parser(
        "lint",
        help=(
            "run the repro.analysis invariant linter over the "
            "codebase (see docs/static_analysis.md)"
        ),
    )
    analysis_cli.add_arguments(lint)

    serve = commands.add_parser(
        "serve",
        parents=[
            ingest,
            resilience,
            capture_flags,
            costmodel_flags,
            profile_flags,
        ],
        help=(
            "serve line-JSON ranking queries through the "
            "multi-tenant serving core: a concurrent batch from "
            "--workload/stdin, or a TCP server with --port (see "
            "docs/serving.md)"
        ),
    )
    serve.add_argument(
        "files",
        type=Path,
        nargs="+",
        help=(
            "relation files; each is registered under its file stem "
            'so requests address it as {"relation": "<stem>"}'
        ),
    )
    serve.add_argument(
        "--workload",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "JSONL request file for batch mode (default: read "
            "request lines from stdin)"
        ),
    )
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        help=(
            "run as a TCP server on PORT instead of batch mode "
            "(0 picks a free port; the bound address is printed on "
            "stderr)"
        ),
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="TCP bind address (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        help=(
            "requests allowed in the system before admission sheds "
            "(default 64)"
        ),
    )
    serve.add_argument(
        "--tenant-rate",
        type=float,
        default=50.0,
        help="per-tenant sustained requests/second (default 50)",
    )
    serve.add_argument(
        "--tenant-burst",
        type=float,
        default=20.0,
        help="per-tenant burst allowance in requests (default 20)",
    )
    serve.add_argument(
        "--drain-deadline-ms",
        type=float,
        default=2000.0,
        metavar="MS",
        help=(
            "graceful-drain budget before in-flight work is "
            "abandoned (default 2000)"
        ),
    )
    serve.add_argument(
        "--no-coalesce",
        action="store_true",
        help="disable in-flight request coalescing",
    )
    serve.add_argument(
        "--max-workers",
        type=int,
        default=4,
        help="kernel worker threads (default 4)",
    )
    serve.add_argument(
        "--admin-port",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "start the admin plane (/metrics /healthz /readyz /slo "
            "/costs /debug/flight /debug/profile) on PORT next to "
            "the TCP server (0 picks a free port; requires --port; "
            "see docs/observability.md)"
        ),
    )
    serve.add_argument(
        "--admin-host",
        default="127.0.0.1",
        help="admin plane bind address (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--slo",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "JSON file of per-tenant SLO specs; burn-rate states "
            "export as slo.* gauges and the /slo endpoint"
        ),
    )
    serve.add_argument(
        "--flight-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help=(
            "arm the flight recorder: recent spans/events are ring-"
            "buffered and anomalies dump JSONL + Chrome traces here"
        ),
    )
    serve.add_argument(
        "--log",
        default=None,
        metavar="PATH",
        help=(
            "write structured JSON logs to PATH ('-' for stderr); "
            "records carry trace ids and tenants"
        ),
    )

    calibrate = commands.add_parser(
        "calibrate",
        help=(
            "fit planner cost-model coefficients from bench history "
            "and/or capture JSONL, writing versioned JSON for "
            "--cost-model"
        ),
    )
    calibrate.add_argument(
        "--history",
        type=Path,
        action="append",
        default=[],
        metavar="PATH",
        help=(
            "BENCH_history.jsonl from the perf-smoke gate "
            "(repeatable)"
        ),
    )
    calibrate.add_argument(
        "--capture",
        type=Path,
        action="append",
        default=[],
        metavar="PATH",
        help="capture JSONL from --capture-out (repeatable)",
    )
    calibrate.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the fitted model as JSON to PATH",
    )
    calibrate.add_argument(
        "--expensive-access-seconds",
        type=float,
        default=None,
        metavar="S",
        help=(
            "predicted seconds charged per tuple access under "
            "expensive-access planning (default 1e-4)"
        ),
    )
    calibrate.add_argument(
        "--json",
        action="store_true",
        help="print the fitted model document as JSON",
    )

    profile = commands.add_parser(
        "profile",
        parents=[ingest, query],
        help=(
            "run a query in a loop under the sampling profiler for "
            "--seconds, then dump collapsed stacks or speedscope JSON"
        ),
    )
    profile.add_argument("file", type=Path, help="relation .csv or .json")
    profile.add_argument(
        "--seconds",
        type=float,
        default=2.0,
        metavar="S",
        help="how long to keep querying under the profiler (default 2)",
    )
    profile.add_argument(
        "--hz",
        type=float,
        default=97.0,
        help="profiler sampling rate (default 97)",
    )
    profile.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "dump destination (.txt collapsed stacks, otherwise "
            "speedscope JSON); with --json the document prints to "
            "stdout instead"
        ),
    )

    bench = commands.add_parser(
        "bench", help="benchmark utilities (history trends)"
    )
    bench_commands = bench.add_subparsers(
        dest="bench_command", required=True
    )
    trend = bench_commands.add_parser(
        "trend",
        help=(
            "render the perf-smoke history as a per-metric delta "
            "table (newest runs last)"
        ),
    )
    trend.add_argument(
        "--history",
        type=Path,
        default=Path("benchmarks/results/BENCH_history.jsonl"),
        metavar="PATH",
        help=(
            "history JSONL appended by the perf-smoke gate "
            "(default: benchmarks/results/BENCH_history.jsonl)"
        ),
    )
    trend.add_argument(
        "--last",
        type=int,
        default=10,
        metavar="N",
        help="show the most recent N runs (default 10)",
    )
    trend.add_argument(
        # Not ``--metric``: the root parser classifies option strings
        # before delegating to subparsers, and an abbreviation of the
        # global ``--metrics-out`` / ``--metrics-format`` is rejected
        # as ambiguous there.
        "--filter",
        default=None,
        metavar="GLOB",
        help="only metrics matching this shell-style pattern",
    )
    trend.add_argument(
        "--json",
        action="store_true",
        help="emit the trend table as JSON instead of text",
    )

    generate = commands.add_parser(
        "generate", help="write a synthetic workload"
    )
    generate.add_argument(
        "model", choices=["attribute", "tuple"], help="uncertainty model"
    )
    generate.add_argument("out", type=Path, help=".csv or .json output")
    generate.add_argument("-n", type=int, default=100, help="tuples")
    generate.add_argument(
        "--workload",
        default="uu",
        help="distribution code (uu/zipf/norm for attribute; "
        "uu/zipf/cor/anti for tuple)",
    )
    generate.add_argument("--seed", type=int, default=7)
    return parser


def _load_for(args, **resilience):
    """Load ``args.file`` honouring the shared ingest flags.

    Lenient mode collects rejects in a :class:`QuarantineLog`
    (persisted to ``--quarantine-out`` when given) and reports the
    summary on stderr so stdout stays parseable.
    """
    quarantine = None
    if getattr(args, "lenient", False):
        quarantine = QuarantineLog(
            path=getattr(args, "quarantine_out", None)
        )
    try:
        relation = load_relation(
            args.file,
            mode="lenient" if quarantine is not None else "strict",
            quarantine=quarantine,
            **resilience,
        )
    finally:
        if quarantine is not None:
            quarantine.close()
    if quarantine is not None and quarantine.rows:
        print(quarantine.summary(), file=sys.stderr)
    return relation


def _query_options(args) -> dict:
    """Method options from the shared query flags."""
    options = {}
    if args.phi is not None:
        options["phi"] = args.phi
    if args.threshold is not None:
        options["threshold"] = args.threshold
    if args.ties is not None:
        options["ties"] = args.ties
    return options


def _planner_for(args, *, expensive_access: bool = False):
    """A cost-model planner from ``--cost-model``, or ``None``.

    ``None`` (no flag) keeps every code path exactly as before — the
    engine's static heuristics, bit-identical output.
    """
    path = getattr(args, "cost_model", None)
    if path is None:
        return None
    from repro.engine.query import TopKPlanner
    from repro.obs.costmodel import CostModel

    try:
        model = CostModel.load(path)
    except (ValueError, KeyError) as error:
        raise SchemaError(f"{path}: {error}") from error
    return TopKPlanner(
        expensive_access=expensive_access, cost_model=model
    )


@contextmanager
def _profile_for(args) -> Iterator["object | None"]:
    """Arm the sampling profiler for ``--profile-out``, dump after."""
    out = getattr(args, "profile_out", None)
    if out is None:
        yield None
        return
    from repro.obs.profiler import SamplingProfiler

    profiler = SamplingProfiler(
        hz=getattr(args, "profile_hz", 97.0)
    )
    with profiler:
        yield profiler
    profiler.write(out)
    print(
        f"profile: {profiler.sample_count} samples to {out}",
        file=sys.stderr,
    )


def _build_executor(args, *, planner=None):
    """``(executor, injector, retry)`` from the resilience flags.

    All three are ``None`` when no resilience flag was given, keeping
    default invocations bit-identical to the exact engine (and free of
    the resilience layer's overhead).  ``planner`` (a cost-model
    planner from ``--cost-model``) rides along on the executor when
    one is built.
    """
    resilient = (
        args.deadline_ms is not None
        or args.max_retries is not None
        or args.inject_faults is not None
        or args.fault_latency_ms > 0
    )
    if not resilient:
        return None, None, None
    from repro.engine.query import ResilientExecutor

    seed = (
        args.fault_seed
        if args.fault_seed is not None
        else fault_seed_from_env()
    )
    injector = None
    if args.inject_faults is not None or args.fault_latency_ms > 0:
        injector = FaultInjector(
            error_rate=args.inject_faults or 0.0,
            latency_rate=1.0 if args.fault_latency_ms > 0 else 0.0,
            latency_seconds=args.fault_latency_ms / 1000.0,
            seed=seed,
        )
    retry = RetryPolicy(
        max_retries=(
            args.max_retries if args.max_retries is not None else 3
        ),
        base_delay=0.01,
        max_delay=0.1,
    )
    from repro.robust import BreakerBoard

    executor = ResilientExecutor(
        retry=retry,
        deadline_ms=args.deadline_ms,
        injector=injector,
        seed=seed,
        # One-shot queries never accumulate enough outcomes to trip a
        # breaker; wiring the board anyway puts per-rung states into
        # the EXPLAIN resilience envelope and capture records.
        breakers=BreakerBoard(),
        planner=planner,
    )
    return executor, injector, retry


@contextmanager
def _capture_for(args) -> Iterator["object | None"]:
    """Install a capture log for ``--capture-out``, restore after.

    Yields the installed :class:`~repro.obs.capture.CaptureLog`, or
    ``None`` when the flag was not given (in which case nothing is
    imported and nothing changes).
    """
    out = getattr(args, "capture_out", None)
    if out is None:
        yield None
        return
    from repro.obs.capture import CaptureLog, set_capture

    log = CaptureLog(
        out, max_bytes=getattr(args, "capture_max_bytes", None)
    )
    previous = set_capture(log)
    try:
        yield log
    finally:
        set_capture(previous)
        log.close()
    if log.truncated:
        print(
            f"warning: {out} hit --capture-max-bytes; "
            "later records were dropped",
            file=sys.stderr,
        )


def _execute_recorded(
    relation, k, method, options, executor, relation_name, planner=None
):
    """Run one query, recording it when a capture log is ambient.

    The plain path (no capture installed, no planner) stays
    bit-identical to calling the engine directly: :func:`query_capture`
    is one ``None`` check and no clock is read.  ``planner`` (the
    ``--cost-model`` hook) routes the plain path through
    ``planner.plan(...).execute(...)`` so the chosen plan and its
    estimate replace the static dispatch.
    """
    from repro.obs.capture import query_capture

    def _run():
        if executor is not None:
            return executor.execute(
                relation, k, method=method, **options
            )
        if planner is not None:
            return planner.plan(
                relation, k, method, **options
            ).execute(relation, k)
        return rank(relation, k, method=method, **options)

    with query_capture() as capture:
        if capture is None:
            return _run()
        start = time.perf_counter()
        result = _run()
        capture.record_query(
            relation,
            result,
            k=k,
            method=method,
            options=options,
            wall_seconds=time.perf_counter() - start,
            relation_name=relation_name,
            executor=executor,
        )
        return result


def _command_topk(args) -> int:
    options = _query_options(args)
    planner = _planner_for(args)
    executor, injector, retry = _build_executor(args, planner=planner)
    with _capture_for(args), _profile_for(args):
        if executor is None:
            relation = _load_for(args)
        else:
            # The deadline governs the query ladder, not the load:
            # the last ladder rung guarantees an answer, while an
            # expired deadline mid-load could only fail.  The load
            # still sees the chaos injector and survives its faults
            # via the retry policy.
            relation = _load_for(args, injector=injector, retry=retry)
        result = _execute_recorded(
            relation,
            args.k,
            args.method,
            options,
            executor,
            str(args.file),
            planner=planner,
        )
    if args.json:
        import json as json_module

        print(json_module.dumps(result.to_dict(), indent=2))
        return 0
    print(result.describe())
    accessed = result.metadata.get("tuples_accessed")
    if accessed is not None:
        print(f"tuples accessed: {accessed} of {relation.size}")
    estimate = result.metadata.get("cost_estimate")
    if estimate is not None:
        print(
            f"predicted: {estimate['total_seconds']:.3g}s "
            f"({estimate['tuples']} tuples via {estimate['kernel']})"
        )
    for item in result:
        statistic = (
            "" if item.statistic is None else f"\t{item.statistic:.6g}"
        )
        print(f"{item.position + 1}\t{item.tid}{statistic}")
    if result.metadata.get("resilient"):
        meta = result.metadata
        print(
            f"resilience: degraded={meta['degraded']} "
            f"method={meta['fallback_method']} "
            f"attempts={meta['attempts']} "
            f"faults_survived={meta['faults_survived']} "
            f"faults_injected={meta['faults_injected']}"
        )
    return 0


def _command_describe(args) -> int:
    from repro.models.validation import diagnose

    relation = _load_for(args)
    if isinstance(relation, AttributeLevelRelation):
        print("model: attribute-level")
        print(f"tuples: {relation.size}")
        print(f"max pdf size: {relation.max_pdf_size()}")
        print(f"possible worlds: {relation.world_count()}")
        universe = relation.value_universe()
        print(
            f"score range: [{universe[0]:g}, {universe[-1]:g}] "
            f"over {len(universe)} distinct values"
        )
    else:
        print("model: tuple-level (x-relation)")
        print(f"tuples: {relation.size}")
        print(f"rules: {relation.rule_count}")
        multi = sum(
            1 for rule in relation.rules if not rule.is_singleton
        )
        print(f"multi-tuple rules: {multi}")
        print(
            f"expected world size: {relation.expected_world_size():g}"
        )
    findings = diagnose(relation)
    if findings:
        print("diagnostics:")
        for finding in findings:
            print(f"  - {finding}")
    return 0


def _command_distribution(args) -> int:
    relation = _load_for(args)
    if isinstance(relation, AttributeLevelRelation):
        from repro.core import attribute_rank_distribution

        dist = attribute_rank_distribution(relation, args.tid)
    else:
        from repro.core import tuple_rank_distribution

        dist = tuple_rank_distribution(relation, args.tid)
    print(f"rank distribution of {args.tid}:")
    for value, mass in dist.items():
        print(f"  Pr[rank = {value}] = {mass:.6g}")
    print(f"expected rank: {dist.expectation():.6g}")
    print(f"median rank: {dist.median()}")
    print(f"0.9-quantile rank: {dist.quantile(0.9)}")
    return 0


def _command_explain(args) -> int:
    if (args.better is None) != (args.worse is None):
        print(
            "error: explain takes either two tuple ids (pairwise "
            "mode) or none (query EXPLAIN)",
            file=sys.stderr,
        )
        return 2
    if args.better is not None:
        from repro.core.explain import explain_pair

        relation = _load_for(args)
        explanation = explain_pair(relation, args.better, args.worse)
        print(explanation.describe())
        return 0
    from repro.obs.explain import explain as explain_query

    planner = _planner_for(
        args, expensive_access=not args.cheap_access
    )
    executor, injector, retry = _build_executor(args, planner=planner)
    relation = _load_for(args, injector=injector, retry=retry)
    report = explain_query(
        relation,
        args.k,
        args.method,
        planner=planner,
        executor=executor,
        dry_run=args.dry_run,
        expensive_access=not args.cheap_access,
        **_query_options(args),
    )
    if args.json:
        print(report.to_json())
    else:
        print(report.describe())
    return 0


def _command_churn(args) -> int:
    from repro.core.sensitivity import stability_profile

    relation = _load_for(args)
    profile = stability_profile(
        relation,
        args.k,
        noises=tuple(args.noise),
        trials=args.trials,
        method=args.method,
        rng=args.seed,
    )
    print(
        f"top-{args.k} churn under relative noise "
        f"({args.trials} trials, method {args.method}):"
    )
    for report in profile:
        core = sorted(report.stable_core())
        print(
            f"  noise ±{report.noise:.0%}: mean churn "
            f"{report.mean_churn:.1%}, stable core "
            f"{len(core)}/{args.k}"
        )
    return 0


def _command_audit(args) -> int:
    import functools

    from repro.bench.harness import Table
    from repro.core.properties import PROPERTY_NAMES, property_matrix

    relation = _load_for(args)
    methods = {}
    for name in args.methods.split(","):
        name = name.strip()
        if not name:
            continue
        if name not in available_methods():
            known = ", ".join(sorted(available_methods()))
            raise UnknownMethodError(
                f"unknown ranking method {name!r}; available: {known}"
            )
        options = (
            {"threshold": args.threshold} if name == "pt_k" else {}
        )
        methods[name] = functools.partial(
            rank, method=name, **options
        )
    ks = list(range(1, max(args.max_k, 1) + 1))
    matrix = property_matrix(methods, [relation], ks=ks)
    table = Table(
        f"Ranking-property audit of {args.file}",
        ["method", *PROPERTY_NAMES],
    )
    for name, row in matrix.items():
        table.add_row(
            [name]
            + [
                "Y" if row[property_name].holds else "N"
                for property_name in PROPERTY_NAMES
            ]
        )
    print(table.render())
    failures = [
        (name, property_name, row[property_name].counterexample)
        for name, row in matrix.items()
        for property_name in PROPERTY_NAMES
        if not row[property_name].holds
    ]
    for name, property_name, counterexample in failures:
        print(f"  {name} / {property_name}: {counterexample}")
    return 0


def _command_calibrate(args) -> int:
    import json as json_module

    from repro.bench.trend import load_history
    from repro.obs.capture import read_jsonl
    from repro.obs.costmodel import (
        DEFAULT_EXPENSIVE_ACCESS_SECONDS,
        fit_cost_model,
    )

    if not args.history and not args.capture:
        print(
            "error: calibrate needs at least one --history or "
            "--capture",
            file=sys.stderr,
        )
        return 2
    entries: list[dict] = []
    captures: list[dict] = []
    sources: list[str] = []
    for path in args.history:
        loaded, problems = load_history(path)
        for problem in problems:
            print(f"warning: {path}: {problem}", file=sys.stderr)
        entries.extend(loaded)
        sources.append(str(path))
    for path in args.capture:
        records, problems = read_jsonl(path)
        for problem in problems:
            print(f"warning: {path}: {problem}", file=sys.stderr)
        captures.extend(records)
        sources.append(str(path))
    model = fit_cost_model(
        entries,
        captures,
        fitted_from=sources,
        expensive_access_seconds=(
            args.expensive_access_seconds
            if args.expensive_access_seconds is not None
            else DEFAULT_EXPENSIVE_ACCESS_SECONDS
        ),
    )
    if not model.kernels:
        print(
            "error: no calibratable samples in the given sources",
            file=sys.stderr,
        )
        return 1
    if args.out is not None:
        model.save(args.out)
        print(f"wrote cost model to {args.out}", file=sys.stderr)
    if args.json:
        print(json_module.dumps(model.to_document(), indent=2))
    else:
        print(model.describe())
    return 0


def _command_profile(args) -> int:
    import json as json_module

    from repro.obs.profiler import SamplingProfiler

    if args.out is None and not args.json:
        print(
            "error: profile needs --out PATH or --json",
            file=sys.stderr,
        )
        return 2
    if args.seconds <= 0:
        print("error: --seconds must be positive", file=sys.stderr)
        return 2
    options = _query_options(args)
    relation = _load_for(args)
    profiler = SamplingProfiler(hz=args.hz)
    executed = 0
    deadline = time.perf_counter() + args.seconds
    with profiler:
        while time.perf_counter() < deadline:
            rank(relation, args.k, method=args.method, **options)
            executed += 1
    if args.out is not None:
        profiler.write(args.out)
    if args.json:
        print(
            json_module.dumps(
                profiler.to_speedscope(name=str(args.file)),
                sort_keys=True,
            )
        )
    print(
        f"profiled {executed} queries over {args.seconds:g}s "
        f"({profiler.sample_count} samples)"
        + (f" to {args.out}" if args.out is not None else ""),
        file=sys.stderr,
    )
    return 0


def _command_bench(args) -> int:
    import json as json_module

    from repro.bench.trend import (
        load_history,
        render_trend,
        trend_table,
    )

    # Only one subcommand today; argparse enforces its presence.
    entries, problems = load_history(args.history)
    for problem in problems:
        print(
            f"warning: {args.history}: {problem}", file=sys.stderr
        )
    table = trend_table(
        entries, last=args.last, pattern=args.filter
    )
    if args.json:
        print(json_module.dumps(table, indent=2, sort_keys=True))
    else:
        print(render_trend(table))
    return 0


def _command_generate(args) -> int:
    from repro.bench.workloads import attribute_workload, tuple_workload

    if args.model == "attribute":
        relation = attribute_workload(args.workload, args.n, seed=args.seed)
        writer = save_attribute_csv
    else:
        relation = tuple_workload(args.workload, args.n, seed=args.seed)
        writer = save_tuple_csv
    if args.out.suffix.lower() == ".json":
        save_json(relation, args.out)
    else:
        writer(relation, args.out)
    print(f"wrote {relation.size} tuples to {args.out}")
    return 0


def _workload_query(record) -> tuple[int, str, dict]:
    """``(k, method, options)`` from one workload JSONL record."""
    k = int(record.get("k", 10))
    method = str(record.get("method", "expected_rank"))
    options = dict(record.get("options") or {})
    for key in ("phi", "threshold", "ties"):
        if key in record:
            options[key] = record[key]
    return k, method, options


def _command_capture(args) -> int:
    from repro.obs.capture import read_jsonl
    from repro.obs.replay import EXIT_PARTIAL_INPUT

    if args.capture_out is None:
        print(
            "error: capture requires --capture-out",
            file=sys.stderr,
        )
        return 2
    relation = _load_for(args)
    workload, problems = read_jsonl(args.workload)
    for problem in problems:
        print(
            f"warning: {args.workload}: {problem}", file=sys.stderr
        )
    executed = 0
    with _capture_for(args):
        for record in workload:
            k, method, options = _workload_query(record)
            # A fresh executor per query restarts the injector and
            # Monte-Carlo RNGs from their seeds, exactly as replay
            # will — one query's chaos never leaks into the next.
            executor, _, _ = _build_executor(args)
            _execute_recorded(
                relation,
                k,
                method,
                options,
                executor,
                str(args.file),
            )
            executed += 1
    print(
        f"captured {executed} queries from {args.workload} "
        f"to {args.capture_out}"
    )
    return EXIT_PARTIAL_INPUT if problems else 0


def _command_replay(args) -> int:
    import json as json_module

    from repro.obs.replay import replay_capture

    relation = _load_for(args)
    report = replay_capture(args.capture, relation)
    for problem in report.problems:
        print(
            f"warning: {args.capture}: {problem}", file=sys.stderr
        )
    if args.json:
        print(json_module.dumps(report.to_dict(), indent=2))
    else:
        print(report.describe())
    return report.exit_code()


def _command_report(args) -> int:
    import json as json_module

    from repro.obs.capture import read_jsonl
    from repro.obs.report import build_report

    if not args.capture and not args.trace:
        print(
            "error: report needs at least one --capture or --trace",
            file=sys.stderr,
        )
        return 2
    capture_records: list[dict] = []
    trace_records: list[dict] = []
    problems: list[str] = []
    for path in args.capture:
        records, bad = read_jsonl(path)
        capture_records.extend(records)
        problems.extend(f"{path}: {item}" for item in bad)
    for path in args.trace:
        records, bad = read_jsonl(path)
        trace_records.extend(records)
        problems.extend(f"{path}: {item}" for item in bad)
    for problem in problems:
        print(f"warning: {problem}", file=sys.stderr)
    report = build_report(
        capture_records,
        trace_records,
        top_n=args.top,
        sources={
            "captures": [str(path) for path in args.capture],
            "traces": [str(path) for path in args.trace],
        },
        problems=problems,
    )
    if args.json:
        print(json_module.dumps(report.to_dict(), indent=2))
    else:
        print(report.describe())
    return report.exit_code()


def _command_chrome_trace(args) -> int:
    from repro.obs.capture import read_jsonl
    from repro.obs.chrome_trace import write_chrome_trace
    from repro.obs.replay import EXIT_PARTIAL_INPUT

    records, problems = read_jsonl(args.trace)
    for problem in problems:
        print(f"warning: {args.trace}: {problem}", file=sys.stderr)
    out = args.out
    if out is None:
        out = args.trace.with_suffix(".chrome.json")
    document = write_chrome_trace(records, out)
    spans = sum(
        1
        for event in document["traceEvents"]
        if event.get("ph") == "X"
    )
    print(f"wrote {spans} spans to {out}")
    return EXIT_PARTIAL_INPUT if problems else 0


def _command_lint(args) -> int:
    return analysis_cli.run(args)


def _serve_settings(args, seed: int):
    """``ServeSettings`` from the serve + resilience flags."""
    from repro.serve import ServeSettings

    return ServeSettings(
        queue_limit=args.queue_limit,
        tenant_rate=args.tenant_rate,
        tenant_burst=args.tenant_burst,
        default_deadline_ms=(
            args.deadline_ms
            if args.deadline_ms is not None
            else 5_000.0
        ),
        drain_deadline_ms=args.drain_deadline_ms,
        coalesce=not args.no_coalesce,
        max_workers=args.max_workers,
        max_retries=(
            args.max_retries if args.max_retries is not None else 3
        ),
        seed=seed,
    )


def _serve_forever(core, args) -> int:
    """TCP mode: serve until interrupted, then drain gracefully."""
    import asyncio

    from repro.serve import serve_admin, serve_tcp

    async def _run() -> None:
        server = await serve_tcp(core, args.host, args.port)
        bound = server.sockets[0].getsockname()
        print(f"serving on {bound[0]}:{bound[1]}", file=sys.stderr)
        admin = None
        if args.admin_port is not None:
            admin = await serve_admin(
                core, args.admin_host, args.admin_port, slo=core.slo
            )
            admin_bound = admin.sockets[0].getsockname()
            print(
                f"admin on {admin_bound[0]}:{admin_bound[1]}",
                file=sys.stderr,
            )
        try:
            await server.serve_forever()
        finally:
            server.close()
            await server.wait_closed()
            await core.drain()
            # Admin outlives the drain so /readyz reports "draining"
            # to probes for the whole graceful-shutdown window.
            if admin is not None:
                admin.close()
                await admin.wait_closed()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("interrupted; drained", file=sys.stderr)
    return 0


def _command_serve(args) -> int:
    import asyncio
    import json as json_module
    import time as time_module

    from repro.engine.database import ProbabilisticDatabase
    from repro.obs import (
        FlightRecorder,
        SLOEngine,
        configure_logging,
        parse_slo_specs,
        set_flight_recorder,
    )
    from repro.serve import ServingCore, run_batch

    if args.admin_port is not None and args.port is None:
        print(
            "error: --admin-port requires --port (the admin plane "
            "accompanies the TCP server)",
            file=sys.stderr,
        )
        return 2
    if args.admin_port is not None:
        # An admin plane with an empty /metrics is useless; scraping
        # implies the operator wants the instruments live.
        from repro.obs import get_registry

        get_registry().enable()
    if args.log is not None:
        configure_logging(
            sys.stderr
            if args.log == "-"
            else open(args.log, "a", encoding="utf-8")
        )
    seed = (
        args.fault_seed
        if args.fault_seed is not None
        else fault_seed_from_env()
    )
    injector = None
    if args.inject_faults is not None or args.fault_latency_ms > 0:
        injector = FaultInjector(
            error_rate=args.inject_faults or 0.0,
            latency_rate=1.0 if args.fault_latency_ms > 0 else 0.0,
            latency_seconds=args.fault_latency_ms / 1000.0,
            seed=seed,
        )
    settings = _serve_settings(args, seed)
    slo = None
    if args.slo is not None:
        slo = SLOEngine(
            parse_slo_specs(args.slo), clock=time_module.monotonic
        )
    recorder = None
    if args.flight_dir is not None:
        recorder = FlightRecorder(dump_dir=args.flight_dir)
        recorder.arm()
        set_flight_recorder(recorder)
    planner = _planner_for(args, expensive_access=True)
    # The serving core always carries a ledger: per-tenant cost
    # attribution is the point of a multi-tenant front end, and the
    # /costs endpoint reads it live.
    from repro.obs.costs import CostLedger

    ledger = CostLedger()
    database = ProbabilisticDatabase()
    with _capture_for(args), _profile_for(args):
        for path in args.files:
            args.file = path
            database.create_relation(path.stem, _load_for(args))
        core = ServingCore(
            database,
            settings=settings,
            injector=injector,
            slo=slo,
            ledger=ledger,
            planner=planner,
        )
        if args.port is not None:
            return _serve_forever(core, args)
        if args.workload is not None:
            lines = args.workload.read_text(
                encoding="utf-8"
            ).splitlines()
        else:
            lines = sys.stdin.read().splitlines()
        responses = asyncio.run(run_batch(core, lines))
    shed = sum(
        1
        for record in responses
        if record.get("status") == "shed"
    )
    errors = sum(
        1
        for record in responses
        if record.get("status") == "error"
    )
    for record in responses:
        print(json_module.dumps(record))
    print(
        f"served {len(responses)} requests: "
        f"{len(responses) - shed - errors} ok, "
        f"{shed} shed, {errors} errors",
        file=sys.stderr,
    )
    return 11 if shed else 0


_COMMANDS = {
    "topk": _command_topk,
    "lint": _command_lint,
    "describe": _command_describe,
    "distribution": _command_distribution,
    "explain": _command_explain,
    "churn": _command_churn,
    "audit": _command_audit,
    "generate": _command_generate,
    "calibrate": _command_calibrate,
    "profile": _command_profile,
    "bench": _command_bench,
    "capture": _command_capture,
    "replay": _command_replay,
    "report": _command_report,
    "chrome-trace": _command_chrome_trace,
    "serve": _command_serve,
}


def _run_with_metrics(args) -> int:
    """Run one command with a fresh enabled registry + metrics output.

    ``--metrics-format json`` (the default) streams spans to
    ``args.metrics_out`` as the command runs, then appends a final
    ``{"type": "metrics", ...}`` line with the registry snapshot.
    ``--metrics-format prom`` keeps the current sink (spans have no
    Prometheus representation) and writes the registry in Prometheus
    text exposition format once the command finishes.  The previous
    registry/sink are restored afterwards so library users embedding
    :func:`main` keep their own configuration.
    """
    from repro.obs import (
        JsonlSink,
        MetricsRegistry,
        set_registry,
        set_sink,
        trace,
    )

    registry = MetricsRegistry(enabled=True)
    previous_registry = set_registry(registry)
    if args.metrics_format == "prom":
        try:
            with trace(f"cli.{args.command}"):
                return _COMMANDS[args.command](args)
        finally:
            set_registry(previous_registry)
            args.metrics_out.write_text(registry.to_prometheus())
    sink = JsonlSink(args.metrics_out)
    previous_sink = set_sink(sink)
    try:
        with trace(f"cli.{args.command}"):
            return _COMMANDS[args.command](args)
    finally:
        set_sink(previous_sink)
        set_registry(previous_registry)
        sink.write({"type": "metrics", **registry.snapshot()})
        sink.close()


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if (
            args.metrics_format == "prom"
            and args.metrics_out is None
        ):
            print(
                "error: --metrics-format prom requires --metrics-out",
                file=sys.stderr,
            )
            return 2
        capture_out = getattr(args, "capture_out", None)
        capture_cap = getattr(args, "capture_max_bytes", None)
        if capture_cap is not None and capture_cap <= 0:
            print(
                "error: --capture-max-bytes must be positive",
                file=sys.stderr,
            )
            return 2
        if capture_out is not None:
            parent = capture_out.resolve().parent
            if not parent.is_dir():
                print(
                    f"error: --capture-out directory {parent} "
                    "does not exist",
                    file=sys.stderr,
                )
                return 2
        if args.metrics_out is not None:
            # Fail fast: the sink opens lazily on the first span, which
            # would otherwise surface a bad path only after the command
            # has already done its work.
            parent = args.metrics_out.resolve().parent
            if not parent.is_dir():
                print(
                    f"error: --metrics-out directory {parent} "
                    "does not exist",
                    file=sys.stderr,
                )
                return 2
            return _run_with_metrics(args)
        return _COMMANDS[args.command](args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return exit_code_for(error)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
