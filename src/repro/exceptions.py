"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ModelError",
    "InvalidDistributionError",
    "InvalidRuleError",
    "RankingError",
    "UnknownMethodError",
    "UnsupportedModelError",
    "PruningBoundError",
    "EngineError",
    "RelationNotFoundError",
    "SchemaError",
    "QuarantineError",
    "TransientAccessError",
    "DeadlineExceededError",
    "CircuitOpenError",
    "OverloadedError",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ModelError(ReproError):
    """A problem with an uncertain data model instance."""


class InvalidDistributionError(ModelError):
    """A discrete probability distribution is malformed.

    Raised when probabilities are negative, sum to more than one (plus a
    numerical tolerance), or when values and probabilities disagree in
    length.
    """


class InvalidRuleError(ModelError):
    """An exclusion rule is malformed.

    Raised when a rule references unknown tuples, lists a tuple twice,
    shares a tuple with another rule, or when its total membership
    probability exceeds one.
    """


class RankingError(ReproError):
    """A problem occurred while evaluating a ranking query."""


class UnknownMethodError(RankingError):
    """The requested ranking method name is not registered."""


class UnsupportedModelError(RankingError):
    """The ranking method does not support the given uncertainty model."""


class PruningBoundError(RankingError):
    """A pruning algorithm's preconditions do not hold.

    The Markov-inequality bounds used by A-ERank-Prune require strictly
    positive score values; this error reports such violations instead of
    silently returning wrong answers.
    """


class EngineError(ReproError):
    """A problem inside the mini probabilistic database engine."""


class RelationNotFoundError(EngineError):
    """A query referenced a relation name that is not in the database."""


class SchemaError(EngineError):
    """Loaded data does not match the expected relation schema."""


class QuarantineError(SchemaError):
    """Lenient ingest gave up: the reject budget was exceeded.

    Lenient loaders quarantine malformed rows instead of raising, but a
    :class:`~repro.robust.QuarantineLog` may carry a ``limit``; once more
    rows are rejected than the limit allows, the input is considered
    unsalvageable and this error reports the tally.
    """


class TransientAccessError(EngineError):
    """A retriable data-access failure (flaky source, injected fault).

    The retry layer (:mod:`repro.robust.retry`) treats this — alongside
    raw :class:`OSError` — as worth another attempt; anything else
    propagates immediately.
    """


class DeadlineExceededError(EngineError):
    """An operation's deadline budget ran out before it completed.

    Raised by :class:`repro.robust.Deadline` checks and by
    per-attempt timeouts in the retry layer.  The resilient executor
    catches it to step down the degradation ladder.
    """


class CircuitOpenError(EngineError):
    """A circuit breaker refused the call without attempting it.

    Raised by :meth:`repro.robust.CircuitBreaker.allow` while the
    breaker is open (or half-open with its probe budget spent).  The
    resilient executor treats it like any other rung failure: the
    query steps straight down the degradation ladder instead of
    burning its deadline on attempts that are known to be failing.
    """


class OverloadedError(EngineError):
    """Admission control shed a request instead of queueing it.

    Carries a machine-readable ``reason`` (``"queue_full"``,
    ``"quota"``, ``"draining"``, or ``"drained"``) and the tenant it
    applies to, so callers — and the chaos soak — can assert exactly
    why load was shed.  Mapped to its own CLI exit code (see
    :data:`repro.cli.EXIT_CODES`): shedding is a deliberate, bounded
    outcome, not a generic engine failure.
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str = "overloaded",
        tenant: str | None = None,
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.tenant = tenant


class WorkloadError(ReproError):
    """A synthetic workload generator was given invalid parameters."""
