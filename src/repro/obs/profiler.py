"""A stdlib-only continuous sampling profiler.

A :class:`SamplingProfiler` is a background daemon thread that wakes
at a configurable rate, snapshots every live thread's stack through
``sys._current_frames()``, and accumulates weighted call stacks.  It
arms and disarms like the flight recorder — explicit ``start()`` /
``stop()``, idempotent stop, no orphan thread left behind — and costs
nothing while disarmed.  The sampler holds no locks while unwinding
and never touches the frames' locals, so the profiled program is
perturbed only by the GIL time of the walk itself; the perf-smoke CI
gate holds an armed profiler to within 5% on the coalescing workload.

Two output formats, both deterministic (insertion-ordered, no hash
iteration, so dumps are ``PYTHONHASHSEED``-invariant):

* **collapsed stacks** — one ``frame;frame;frame weight`` line per
  distinct stack, the ``flamegraph.pl`` / speedscope-paste format;
* **speedscope JSON** — the ``sampled`` profile type of
  https://www.speedscope.app 's published file-format schema, loadable
  directly in the browser UI.

Wired as ``--profile-out`` on ``repro topk`` / ``repro serve``, the
``repro profile`` subcommand, and the admin plane's
``/debug/profile?seconds=N`` endpoint.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from pathlib import Path
from typing import Callable

__all__ = [
    "SPEEDSCOPE_SCHEMA_URL",
    "SamplingProfiler",
    "validate_speedscope",
]

SPEEDSCOPE_SCHEMA_URL = (
    "https://www.speedscope.app/file-format-schema.json"
)

#: Sampling rates above this are refused: the sampler would spend more
#: time unwinding than the program spends running.
_MAX_HZ = 1000.0


class SamplingProfiler:
    """Statistical profiler over ``sys._current_frames()``.

    Parameters
    ----------
    hz:
        Target samples per second (default 97 — prime, so the sampler
        does not phase-lock with millisecond-periodic work).
    clock:
        Injectable monotonic time source for sample weights; tests
        drive it to make weights exact.
    max_samples:
        Timeline cap: past it, new samples still fold into the
        collapsed-stack weights but the speedscope timeline stops
        growing (``truncated`` reports the overflow).
    """

    def __init__(
        self,
        *,
        hz: float = 97.0,
        clock: Callable[[], float] = time.perf_counter,
        max_samples: int = 100_000,
    ) -> None:
        if not 0.0 < hz <= _MAX_HZ:
            raise ValueError(
                f"hz must be in (0, {_MAX_HZ:g}], got {hz!r}"
            )
        if max_samples < 1:
            raise ValueError(
                f"max_samples must be >= 1, got {max_samples!r}"
            )
        self.hz = hz
        self.interval = 1.0 / hz
        self._clock = clock
        self._max_samples = max_samples
        self._lock = threading.Lock()
        self._weights: dict[tuple[str, ...], float] = {}
        self._timeline: list[tuple[tuple[str, ...], float]] = []
        self._sample_count = 0
        self.truncated = False
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._last_tick: float | None = None
        self.started_at: float | None = None
        self.stopped_at: float | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def armed(self) -> bool:
        """Whether the sampler thread is currently running."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Arm: spawn the sampler thread.  Raises if already armed."""
        if self.armed:
            raise RuntimeError("profiler is already armed")
        self._stop.clear()
        self.started_at = self._clock()
        self._last_tick = self.started_at
        self._thread = threading.Thread(
            target=self._run,
            name="repro-profiler",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        """Disarm: stop and join the thread.  Idempotent; after it
        returns no sampler thread is alive."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        if thread.is_alive():  # pragma: no cover - defensive
            raise RuntimeError(
                "profiler thread failed to stop within 5s"
            )
        self._thread = None
        self.stopped_at = self._clock()

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample_once(self, weight: float | None = None) -> None:
        """Take one sample of every thread but the sampler's own.

        ``weight`` overrides the measured inter-sample gap (tests use
        it to build exact profiles without a running thread).
        """
        now = self._clock()
        if weight is None:
            last = (
                self._last_tick if self._last_tick is not None else now
            )
            weight = max(now - last, 0.0)
            if weight == 0.0:
                weight = self.interval
        self._last_tick = now
        own = threading.get_ident()
        frames = sys._current_frames()
        stacks: list[tuple[str, ...]] = []
        for thread_id in sorted(frames):
            if thread_id == own:
                continue
            stack = self._unwind(frames[thread_id])
            if stack:
                stacks.append(stack)
        del frames
        if not stacks:
            return
        # The gap is attributed across the threads observed in it, so
        # total weight tracks wall time, not wall time x threads.
        share = weight / len(stacks)
        with self._lock:
            for stack in stacks:
                self._weights[stack] = (
                    self._weights.get(stack, 0.0) + share
                )
                if len(self._timeline) < self._max_samples:
                    self._timeline.append((stack, share))
                else:
                    self.truncated = True
            self._sample_count += 1

    @staticmethod
    def _unwind(frame) -> tuple[str, ...]:
        stack: list[str] = []
        while frame is not None:
            code = frame.f_code
            stack.append(
                f"{code.co_name} "
                f"({Path(code.co_filename).name}:"
                f"{code.co_firstlineno})"
            )
            frame = frame.f_back
        stack.reverse()
        return tuple(stack)

    @property
    def sample_count(self) -> int:
        """Sampling ticks taken so far."""
        with self._lock:
            return self._sample_count

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def collapsed(self) -> str:
        """Collapsed-stack text: ``a;b;c weight`` per line, sorted."""
        with self._lock:
            items = sorted(self._weights.items())
        return "\n".join(
            f"{';'.join(stack)} {weight:.6f}"
            for stack, weight in items
        )

    def to_speedscope(self, *, name: str = "repro") -> dict:
        """The profile as a speedscope ``sampled``-type document.

        Frame indices are assigned in first-appearance order over the
        timeline, so the document bytes depend only on what was
        sampled, never on hash ordering.
        """
        with self._lock:
            timeline = list(self._timeline)
        frame_index: dict[str, int] = {}
        frames: list[dict] = []
        samples: list[list[int]] = []
        weights: list[float] = []
        for stack, weight in timeline:
            indexed = []
            for frame in stack:
                position = frame_index.get(frame)
                if position is None:
                    position = len(frames)
                    frame_index[frame] = position
                    frames.append({"name": frame})
                indexed.append(position)
            samples.append(indexed)
            weights.append(round(weight, 9))
        end_value = round(sum(weights), 9)
        return {
            "$schema": SPEEDSCOPE_SCHEMA_URL,
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "seconds",
                    "startValue": 0.0,
                    "endValue": end_value,
                    "samples": samples,
                    "weights": weights,
                }
            ],
            "exporter": "repro.obs.profiler",
            "name": name,
        }

    def write(self, path: Path | str, *, name: str = "repro") -> None:
        """Dump to ``path``: ``.txt`` → collapsed stacks, otherwise
        speedscope JSON."""
        path = Path(path)
        if path.suffix == ".txt":
            path.write_text(self.collapsed() + "\n")
            return
        path.write_text(
            json.dumps(
                self.to_speedscope(name=name), sort_keys=True
            )
            + "\n"
        )


def validate_speedscope(document: object) -> None:
    """Assert ``document`` is a loadable speedscope file.

    Checks the structural contract the speedscope UI relies on for
    ``sampled`` profiles: schema URL, a shared frame table, and
    per-profile parallel ``samples`` / ``weights`` arrays whose frame
    indices all resolve.  Raises :class:`ValueError` on the first
    violation; silence means speedscope will load it.
    """
    if not isinstance(document, dict):
        raise ValueError("speedscope document must be an object")
    if document.get("$schema") != SPEEDSCOPE_SCHEMA_URL:
        raise ValueError(
            f"$schema must be {SPEEDSCOPE_SCHEMA_URL!r}"
        )
    shared = document.get("shared")
    if not isinstance(shared, dict) or not isinstance(
        shared.get("frames"), list
    ):
        raise ValueError("shared.frames must be an array")
    frames = shared["frames"]
    for index, frame in enumerate(frames):
        if not isinstance(frame, dict) or not isinstance(
            frame.get("name"), str
        ):
            raise ValueError(
                f"shared.frames[{index}] needs a string name"
            )
    profiles = document.get("profiles")
    if not isinstance(profiles, list) or not profiles:
        raise ValueError("profiles must be a non-empty array")
    for position, profile in enumerate(profiles):
        path = f"profiles[{position}]"
        if not isinstance(profile, dict):
            raise ValueError(f"{path} must be an object")
        if profile.get("type") != "sampled":
            raise ValueError(f"{path}.type must be 'sampled'")
        if profile.get("unit") not in (
            "seconds",
            "milliseconds",
            "microseconds",
            "nanoseconds",
            "none",
        ):
            raise ValueError(f"{path}.unit is not a speedscope unit")
        samples = profile.get("samples")
        weights = profile.get("weights")
        if not isinstance(samples, list) or not isinstance(
            weights, list
        ):
            raise ValueError(
                f"{path} needs samples and weights arrays"
            )
        if len(samples) != len(weights):
            raise ValueError(
                f"{path}: samples and weights lengths differ"
            )
        for index, sample in enumerate(samples):
            if not isinstance(sample, list):
                raise ValueError(
                    f"{path}.samples[{index}] must be an array"
                )
            for frame_ref in sample:
                if (
                    not isinstance(frame_ref, int)
                    or isinstance(frame_ref, bool)
                    or not 0 <= frame_ref < len(frames)
                ):
                    raise ValueError(
                        f"{path}.samples[{index}] references "
                        f"frame {frame_ref!r} outside the table"
                    )
