"""Session reports: aggregate view over a whole captured workload.

Where :mod:`repro.obs.explain` dissects one query,
:func:`build_report` looks *across* queries: it folds a capture JSONL
(:mod:`repro.obs.capture`) and optionally a span/event trace JSONL
(``--metrics-out``) into one :class:`SessionReport` —

* top-N slowest queries, each with its trace id so the span tree is
  one grep (or one Chrome-trace export) away;
* per-method latency p50/p95/p99, computed by feeding the recorded
  wall times through the same bucketed
  :class:`~repro.obs.metrics.Histogram` the live registry uses;
* pruning efficacy — the distribution of tuples-accessed as a
  fraction of the relation size, the paper's Sections 5–6 cost story
  over a realistic stream rather than one invocation;
* robustness rates: degraded / retried / fault-surviving query
  fractions from the capture, plus quarantine totals and
  degrade/retry event counts from the trace.

Everything is plain data (``to_dict`` / ``describe``); corrupt input
lines degrade the report (``problems`` + exit 12) instead of killing
it, matching the quarantine philosophy of the ingest layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.obs.metrics import Histogram
from repro.obs.replay import EXIT_PARTIAL_INPUT

__all__ = ["SessionReport", "build_report"]

#: Fraction-of-relation buckets for the pruning-efficacy histogram.
_FRACTION_BUCKETS = tuple(index / 20.0 for index in range(1, 21))


def _percentiles(values: Iterable[float]) -> dict[str, float]:
    """p50/p95/p99 via the registry's bucketed histogram type."""
    # Standalone aggregation over already-recorded capture data, not
    # a live metric — deliberately outside the ambient registry.
    # repro: noqa RPR007
    histogram = Histogram("report")
    for value in values:
        histogram.observe(value)
    return histogram.percentiles()


@dataclass(frozen=True)
class SessionReport:
    """The aggregate story of one captured session."""

    sources: dict
    summary: dict
    methods: dict
    slowest: list
    pruning: dict
    rates: dict
    spans: dict
    events: dict
    problems: tuple[str, ...]

    def exit_code(self) -> int:
        return EXIT_PARTIAL_INPUT if self.problems else 0

    def to_dict(self) -> dict:
        return {
            "sources": self.sources,
            "summary": self.summary,
            "methods": self.methods,
            "slowest": self.slowest,
            "pruning": self.pruning,
            "rates": self.rates,
            "spans": self.spans,
            "events": self.events,
            "problems": list(self.problems),
        }

    def describe(self) -> str:
        """A human-readable rendering for terminal output."""
        lines = ["session report"]
        summary = self.summary
        lines.append(
            f"  queries: {summary['queries']} over "
            f"{summary['datasets']} dataset(s), "
            f"{summary['methods']} method(s)"
        )
        if summary.get("wall_seconds_total") is not None:
            lines.append(
                "  total query wall time: "
                f"{summary['wall_seconds_total'] * 1e3:.2f}ms"
            )
        if self.slowest:
            lines.append("  slowest queries:")
            for entry in self.slowest:
                wall = entry["wall_seconds"]
                rendered = (
                    "?" if wall is None else f"{wall * 1e3:.2f}ms"
                )
                lines.append(
                    f"    [{entry['seq']}] {entry['method']} "
                    f"k={entry['k']}: {rendered} "
                    f"trace_id={entry['trace_id']}"
                )
        for method in sorted(self.methods):
            stats = self.methods[method]
            lines.append(
                f"  method {method}: {stats['count']}x "
                f"p50={stats['p50'] * 1e3:.2f}ms "
                f"p95={stats['p95'] * 1e3:.2f}ms "
                f"p99={stats['p99'] * 1e3:.2f}ms"
            )
        pruning = self.pruning
        if pruning["queries_with_cost"]:
            lines.append(
                "  pruning efficacy: mean fraction accessed "
                f"{pruning['mean_fraction']:.1%} "
                f"(p50 {pruning['p50']:.1%}, p95 {pruning['p95']:.1%})"
                f" over {pruning['queries_with_cost']} queries; "
                f"{pruning['full_scans']} full scans"
            )
        rates = self.rates
        lines.append(
            f"  rates: degraded {rates['degraded_rate']:.1%}, "
            f"retried {rates['retried_rate']:.1%}, "
            f"faults survived {rates['fault_survival_rate']:.1%}, "
            f"quarantined rows {rates['quarantined_rows']}"
        )
        for name, total in sorted(self.events.items()):
            lines.append(f"  event {name}: {total}x")
        for problem in self.problems:
            lines.append(f"  ! {problem}")
        return "\n".join(lines)


def _method_stats(queries: Sequence[Mapping]) -> dict:
    methods: dict[str, dict] = {}
    # Sorted so the per-method section order (and the report JSON)
    # never depends on set iteration order / PYTHONHASHSEED.
    for group in sorted(
        {str(record.get("method")) for record in queries}
    ):
        walls = [
            float(record["wall_seconds"])
            for record in queries
            if str(record.get("method")) == group
            and record.get("wall_seconds") is not None
        ]
        entry: dict = {
            "count": sum(
                1
                for record in queries
                if str(record.get("method")) == group
            )
        }
        entry.update(_percentiles(walls))
        accessed = [
            record["tuples_accessed"] / record["n"]
            for record in queries
            if str(record.get("method")) == group
            and record.get("tuples_accessed") is not None
            and record.get("n")
        ]
        entry["mean_fraction_accessed"] = (
            sum(accessed) / len(accessed) if accessed else None
        )
        methods[group] = entry
    return methods


def _pruning_stats(queries: Sequence[Mapping]) -> dict:
    fractions = [
        record["tuples_accessed"] / record["n"]
        for record in queries
        if record.get("tuples_accessed") is not None
        and record.get("n")
    ]
    if not fractions:
        return {
            "queries_with_cost": 0,
            "mean_fraction": None,
            "p50": None,
            "p95": None,
            "full_scans": 0,
            "distribution": [],
        }
    # Offline bucket math over replayed records.  # repro: noqa RPR007
    histogram = Histogram("fraction", buckets=_FRACTION_BUCKETS)
    for fraction in fractions:
        histogram.observe(fraction)
    return {
        "queries_with_cost": len(fractions),
        "mean_fraction": sum(fractions) / len(fractions),
        "p50": histogram.quantile(0.50),
        "p95": histogram.quantile(0.95),
        "full_scans": sum(
            1 for fraction in fractions if fraction >= 1.0
        ),
        "distribution": [
            {"le": bound, "count": cumulative}
            for bound, cumulative in histogram.cumulative_buckets()
            if bound != float("inf")
        ],
    }


def _rates(
    queries: Sequence[Mapping], trace_records: Sequence[Mapping]
) -> tuple[dict, dict]:
    total = len(queries)
    degraded = sum(
        1 for record in queries if record.get("degraded")
    )
    retried = sum(
        1
        for record in queries
        if (record.get("attempts") or 0) > 1
    )
    survived = sum(
        1
        for record in queries
        if (record.get("faults_survived") or 0) > 0
    )
    quarantined = 0.0
    events: dict[str, int] = {}
    for record in trace_records:
        kind = record.get("type")
        if kind == "event":
            name = str(record.get("name"))
            events[name] = events.get(name, 0) + 1
        elif kind == "metrics":
            counters = record.get("counters") or {}
            quarantined += sum(
                value
                for name, value in counters.items()
                if name == "robust.quarantine.rows"
            )
    rates = {
        "degraded_rate": degraded / total if total else 0.0,
        "retried_rate": retried / total if total else 0.0,
        "fault_survival_rate": survived / total if total else 0.0,
        "degraded": degraded,
        "retried": retried,
        "faults_survived": survived,
        "quarantined_rows": int(quarantined),
    }
    return rates, events


def _span_stats(trace_records: Sequence[Mapping]) -> dict:
    spans: dict[str, Histogram] = {}
    for record in trace_records:
        if record.get("type") != "span":
            continue
        duration = record.get("duration_seconds")
        if duration is None:
            continue
        name = str(record.get("name"))
        histogram = spans.get(name)
        if histogram is None:
            # Offline span-trace aggregation.  # repro: noqa RPR007
            histogram = spans[name] = Histogram(name)
        histogram.observe(float(duration))
    return {
        name: {
            "count": histogram.count,
            "total_seconds": histogram.total,
            **histogram.percentiles(),
        }
        for name, histogram in sorted(spans.items())
    }


def build_report(
    capture_records: Sequence[Mapping],
    trace_records: Sequence[Mapping] = (),
    *,
    top_n: int = 5,
    sources: Mapping[str, object] | None = None,
    problems: Sequence[str] = (),
) -> SessionReport:
    """Fold capture + trace records into one :class:`SessionReport`.

    ``capture_records`` / ``trace_records`` are parsed JSONL records
    (see :func:`repro.obs.capture.read_jsonl`); unknown record types
    are ignored so the two streams can even be one concatenated file.
    ``problems`` carries the reader's corrupt-line findings into the
    report, where they turn the exit code to 12.
    """
    queries = [
        record
        for record in capture_records
        if record.get("type") == "query"
    ]
    walls = [
        float(record["wall_seconds"])
        for record in queries
        if record.get("wall_seconds") is not None
    ]
    slowest = sorted(
        (
            record
            for record in queries
            if record.get("wall_seconds") is not None
        ),
        key=lambda record: float(record["wall_seconds"]),
        reverse=True,
    )[: max(top_n, 0)]
    summary = {
        "queries": len(queries),
        "datasets": len(
            {
                record.get("dataset_digest")
                for record in queries
                if record.get("dataset_digest")
            }
        ),
        "methods": len(
            {record.get("method") for record in queries}
        )
        if queries
        else 0,
        "wall_seconds_total": sum(walls) if walls else None,
        "latency": _percentiles(walls) if walls else None,
    }
    rates, events = _rates(queries, trace_records)
    return SessionReport(
        sources=dict(sources or {}),
        summary=summary,
        methods=_method_stats(queries),
        slowest=[
            {
                "seq": record.get("seq"),
                "method": record.get("method"),
                "k": record.get("k"),
                "wall_seconds": record.get("wall_seconds"),
                "trace_id": record.get("trace_id"),
                "tuples_accessed": record.get("tuples_accessed"),
                "degraded": bool(record.get("degraded")),
            }
            for record in slowest
        ],
        pruning=_pruning_stats(queries),
        rates=rates,
        spans=_span_stats(trace_records),
        events=events,
        problems=tuple(problems),
    )
