"""Per-query resource accounting: the cost ledger.

This module is the system's **single accounting chokepoint** (enforced
by analysis rule RPR011): every CPU-clock read and every ledger write
in the codebase flows through it, with both clocks injectable so the
ledger's arithmetic is testable on fake time.

A :class:`CostLedger` records, per executed query, the planner's
:class:`~repro.obs.costmodel.CostEstimate` (stamped into
``result.metadata["cost_estimate"]`` by a cost-model-equipped
:class:`~repro.engine.query.TopKPlan`) next to the measured actuals —
wall seconds, process-CPU seconds, tuples accessed, and the
degradation rung that answered.  Entries aggregate per
``(tenant, method)`` and export as ``cost.*`` labeled metrics; the
per-method predicted/actual **drift** gauge fires the flight recorder
through :func:`~repro.obs.flight.notify_anomaly` (anomaly
``cost_drift``) once calibration has drifted past the threshold over
enough samples, so a stale cost model dumps its own evidence.

Accounting is ambient and off by default, mirroring the capture log:
install a ledger with :func:`set_cost_ledger` and the query layers
(``db.topk``, the resilient executor, the serving core) meter
themselves through :func:`query_accounting`; the outermost layer
claims the query, inner layers see ``None``.  With no ledger
installed the whole machinery is one ``None`` check per query and no
clock is read — the fault-free path stays bit-identical.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, Mapping

from repro.obs.flight import notify_anomaly
from repro.obs.metrics import get_registry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.result import TopKResult

__all__ = [
    "CostEntry",
    "CostLedger",
    "get_cost_ledger",
    "query_accounting",
    "set_cost_ledger",
]

#: Metric help texts registered once per ledger (idempotent).
_HELP_TEXTS = {
    "cost.queries": "Queries accounted per tenant and method",
    "cost.wall_seconds": (
        "Measured wall seconds per tenant and method"
    ),
    "cost.cpu_seconds": (
        "Measured process-CPU seconds per tenant and method"
    ),
    "cost.tuples_accessed": (
        "Tuples accessed per tenant and method"
    ),
    "cost.predicted_seconds": (
        "Planner-predicted seconds per method (cost-model runs)"
    ),
    "cost.drift": (
        "Signed predicted-vs-actual drift per method: "
        "actual/predicted - 1 over accounted queries"
    ),
}


@dataclass(frozen=True)
class CostEntry:
    """One accounted query: the prediction next to the actuals."""

    tenant: str
    method: str
    plan_method: str
    k: int
    n: int
    wall_seconds: float
    cpu_seconds: float
    tuples_accessed: int | None
    degraded: bool
    rung: str
    predicted_seconds: float | None
    predicted_tuples: int | None
    trace_id: str | None = None

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "method": self.method,
            "plan_method": self.plan_method,
            "k": self.k,
            "n": self.n,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "tuples_accessed": self.tuples_accessed,
            "degraded": self.degraded,
            "rung": self.rung,
            "predicted_seconds": self.predicted_seconds,
            "predicted_tuples": self.predicted_tuples,
            "trace_id": self.trace_id,
        }


class _Aggregate:
    """Running totals for one ``(tenant, method)`` cell."""

    __slots__ = (
        "queries",
        "wall_seconds",
        "cpu_seconds",
        "tuples_accessed",
        "degraded",
        "predicted_seconds",
        "predicted_queries",
    )

    def __init__(self) -> None:
        self.queries = 0
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        self.tuples_accessed = 0
        self.degraded = 0
        self.predicted_seconds = 0.0
        self.predicted_queries = 0

    def to_dict(self) -> dict:
        return {
            "queries": self.queries,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "tuples_accessed": self.tuples_accessed,
            "degraded": self.degraded,
            "predicted_seconds": self.predicted_seconds,
            "predicted_queries": self.predicted_queries,
        }


def _winning_rung(metadata: Mapping[str, object]) -> str:
    """The ladder rung that produced the answer (``direct`` without
    a resilient executor)."""
    if not metadata.get("resilient"):
        return "direct"
    rung = "exact"
    ladder = metadata.get("ladder") or ()
    if isinstance(ladder, (list, tuple)):
        for outcome in ladder:
            if (
                isinstance(outcome, Mapping)
                and outcome.get("outcome") == "ok"
            ):
                rung = str(outcome.get("rung", rung))
    return rung


class CostLedger:
    """Predicted-vs-actual resource accounting for executed queries.

    Parameters
    ----------
    wall_clock, cpu_clock:
        Injectable time sources.  ``cpu_clock`` defaults to
        :func:`time.process_time` — the one sanctioned read of the
        process-CPU clock in the codebase (RPR011).
    drift_threshold:
        Absolute ``actual/predicted - 1`` beyond which the per-method
        drift anomaly fires (default 0.5: actuals 50% off the
        calibration).
    drift_min_samples:
        Cost-model-predicted queries a method must accumulate before
        its drift is trusted enough to alarm.
    max_entries:
        Recent :class:`CostEntry` records kept for inspection;
        aggregates are unbounded and exact.
    """

    def __init__(
        self,
        *,
        wall_clock: Callable[[], float] = time.perf_counter,
        cpu_clock: Callable[[], float] = time.process_time,
        drift_threshold: float = 0.5,
        drift_min_samples: int = 16,
        max_entries: int = 1024,
    ) -> None:
        if drift_threshold <= 0:
            raise ValueError(
                f"drift_threshold must be > 0, got {drift_threshold!r}"
            )
        if drift_min_samples < 1:
            raise ValueError(
                "drift_min_samples must be >= 1, got "
                f"{drift_min_samples!r}"
            )
        self._wall_clock = wall_clock
        self._cpu_clock = cpu_clock
        self.drift_threshold = drift_threshold
        self.drift_min_samples = drift_min_samples
        self._max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: list[CostEntry] = []
        self._aggregates: dict[tuple[str, str], _Aggregate] = {}
        self._drift_actual: dict[str, float] = {}
        self._drift_predicted: dict[str, float] = {}
        self._drift_samples: dict[str, int] = {}
        self._drift_alarmed: set[str] = set()

    # ------------------------------------------------------------------
    # Metering
    # ------------------------------------------------------------------
    def meter(self, *, tenant: str | None = None) -> "CostMeter":
        """Start measuring one query (reads both clocks once)."""
        return CostMeter(self, tenant=tenant)

    def record(self, entry: CostEntry) -> None:
        """Append one accounted query — the single ledger write."""
        with self._lock:
            self._entries.append(entry)
            if len(self._entries) > self._max_entries:
                del self._entries[: -self._max_entries]
            cell = self._aggregates.setdefault(
                (entry.tenant, entry.method), _Aggregate()
            )
            cell.queries += 1
            cell.wall_seconds += entry.wall_seconds
            cell.cpu_seconds += entry.cpu_seconds
            if entry.tuples_accessed is not None:
                cell.tuples_accessed += entry.tuples_accessed
            if entry.degraded:
                cell.degraded += 1
            if entry.predicted_seconds is not None:
                cell.predicted_seconds += entry.predicted_seconds
                cell.predicted_queries += 1
                method = entry.method
                self._drift_actual[method] = (
                    self._drift_actual.get(method, 0.0)
                    + entry.wall_seconds
                )
                self._drift_predicted[method] = (
                    self._drift_predicted.get(method, 0.0)
                    + entry.predicted_seconds
                )
                self._drift_samples[method] = (
                    self._drift_samples.get(method, 0) + 1
                )
        self._export(entry)
        self._check_drift(entry)

    def _export(self, entry: CostEntry) -> None:
        registry = get_registry()
        if not registry.enabled:
            return
        for name, help_text in _HELP_TEXTS.items():
            registry.describe(name, help_text)
        labels = {"tenant": entry.tenant, "method": entry.method}
        registry.counter("cost.queries", labels).inc()
        registry.counter("cost.wall_seconds", labels).inc(
            entry.wall_seconds
        )
        registry.counter("cost.cpu_seconds", labels).inc(
            entry.cpu_seconds
        )
        if entry.tuples_accessed is not None:
            registry.counter("cost.tuples_accessed", labels).inc(
                entry.tuples_accessed
            )
        if entry.predicted_seconds is not None:
            registry.counter(
                "cost.predicted_seconds",
                {"method": entry.method},
            ).inc(entry.predicted_seconds)

    def _check_drift(self, entry: CostEntry) -> None:
        if entry.predicted_seconds is None:
            return
        method = entry.method
        drift = self.drift(method)
        if drift is None:
            return
        registry = get_registry()
        if registry.enabled:
            registry.gauge(
                "cost.drift", {"method": method}
            ).set(drift)
        with self._lock:
            samples = self._drift_samples.get(method, 0)
            if samples < self.drift_min_samples:
                return
            if abs(drift) <= self.drift_threshold:
                self._drift_alarmed.discard(method)
                return
            if method in self._drift_alarmed:
                return
            self._drift_alarmed.add(method)
        notify_anomaly(
            "cost_drift",
            trace_id=entry.trace_id,
            method=method,
            drift=round(drift, 6),
            samples=samples,
            threshold=self.drift_threshold,
        )

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def entries(self) -> tuple[CostEntry, ...]:
        """The most recent accounted queries (bounded ring)."""
        with self._lock:
            return tuple(self._entries)

    def drift(self, method: str) -> float | None:
        """``actual/predicted - 1`` over the method's predicted runs."""
        with self._lock:
            predicted = self._drift_predicted.get(method, 0.0)
            actual = self._drift_actual.get(method, 0.0)
        if predicted <= 0.0:
            return None
        return actual / predicted - 1.0

    def summary(self) -> dict:
        """The ``/costs`` document: per-tenant totals plus drift."""
        with self._lock:
            tenants: dict[str, dict] = {}
            for (tenant, method), cell in sorted(
                self._aggregates.items()
            ):
                tenants.setdefault(tenant, {})[
                    method
                ] = cell.to_dict()
            total = sum(
                cell.queries for cell in self._aggregates.values()
            )
            methods = sorted(self._drift_samples)
        drift = {}
        for method in methods:
            value = self.drift(method)
            if value is None:
                continue
            drift[method] = {
                "drift": value,
                "samples": self._drift_samples.get(method, 0),
                "alarmed": method in self._drift_alarmed,
                "threshold": self.drift_threshold,
            }
        return {
            "queries": total,
            "tenants": tenants,
            "drift": drift,
        }


class CostMeter:
    """One in-flight query's measurement, started at construction."""

    def __init__(
        self, ledger: CostLedger, *, tenant: str | None = None
    ) -> None:
        self._ledger = ledger
        self.tenant = tenant
        self._wall_start = ledger._wall_clock()
        self._cpu_start = ledger._cpu_clock()

    def finish(
        self,
        result: "TopKResult",
        *,
        k: int,
        n: int,
        method: str,
        tenant: str | None = None,
        trace_id: str | None = None,
    ) -> CostEntry:
        """Stop the clocks and write the entry to the ledger.

        The planner's prediction, the tuples actually accessed, the
        degradation outcome, and the winning rung are all read off
        ``result.metadata`` — the layers above only supply identity.
        """
        ledger = self._ledger
        wall = ledger._wall_clock() - self._wall_start
        cpu = ledger._cpu_clock() - self._cpu_start
        metadata = result.metadata
        accessed = metadata.get("tuples_accessed")
        estimate = metadata.get("cost_estimate")
        predicted_seconds = None
        predicted_tuples = None
        if isinstance(estimate, Mapping):
            value = estimate.get("total_seconds")
            if isinstance(value, (int, float)):
                predicted_seconds = float(value)
            tuples = estimate.get("tuples")
            if isinstance(tuples, int):
                predicted_tuples = tuples
        entry = CostEntry(
            tenant=(
                tenant
                if tenant is not None
                else (self.tenant or "default")
            ),
            method=method,
            plan_method=result.method,
            k=k,
            n=n,
            wall_seconds=wall,
            cpu_seconds=cpu,
            tuples_accessed=(
                int(accessed)
                if isinstance(accessed, int)
                else None
            ),
            degraded=bool(metadata.get("degraded", False)),
            rung=_winning_rung(metadata),
            predicted_seconds=predicted_seconds,
            predicted_tuples=predicted_tuples,
            trace_id=(
                trace_id
                if trace_id is not None
                else (
                    str(metadata["trace_id"])
                    if metadata.get("trace_id")
                    else None
                )
            ),
        )
        ledger.record(entry)
        return entry


_ledger: CostLedger | None = None
_claimed: ContextVar[bool] = ContextVar(
    "repro_costs_claimed", default=False
)


def get_cost_ledger() -> CostLedger | None:
    """The ambient ledger, if one is installed."""
    return _ledger


def set_cost_ledger(
    ledger: CostLedger | None,
) -> CostLedger | None:
    """Install (or clear) the ambient ledger; returns the previous."""
    global _ledger
    previous = _ledger
    _ledger = ledger
    return previous


@contextmanager
def query_accounting(
    ledger: CostLedger | None = None,
    *,
    tenant: str | None = None,
) -> Iterator[CostMeter | None]:
    """Claim the accounting point for one query; outermost wins.

    Yields a started :class:`CostMeter` to exactly one layer of a
    nested execution (serving core → ``db.topk`` → executor) and
    ``None`` to every layer beneath it, so a query is accounted once,
    by the layer that knows the most identity (the serving core knows
    the tenant).  Yields ``None`` everywhere when no ledger is
    installed — that path reads no clock.
    """
    active = ledger if ledger is not None else _ledger
    if active is None or _claimed.get():
        yield None
        return
    token = _claimed.set(True)
    try:
        yield active.meter(tenant=tenant)
    finally:
        _claimed.reset(token)
