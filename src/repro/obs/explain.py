"""EXPLAIN for ranking queries: one report per query, fully traced.

``explain`` runs (or, with ``dry_run``, only plans) a top-k ranking
query under a fresh metrics registry and a capturing span sink, then
folds everything observable about that single query into one
:class:`ExplainReport`:

* the planner's chosen method and its stated reason — plus, when the
  planner carries a calibrated :class:`~repro.obs.costmodel.CostModel`,
  every candidate's predicted cost and the chosen plan's
  predicted-vs-actual seconds;
* the paper's cost metric — tuples accessed versus relation size —
  plus the pruning-bound trajectory when a pruned scan ran;
* per-stage wall times with p50/p95/p99 from the bucketed histograms;
* retry / degradation events, linked by the query's ``trace_id``;
* the resilience envelope the query ran under — deadline, retry
  policy, fault injection, circuit-breaker states — whenever an
  executor was supplied (``null`` for plain engine runs).

The report is plain data (``to_dict`` / ``to_json``) with a published
:data:`EXPLAIN_SCHEMA`; :func:`validate_report` checks a report
against it using a small JSON-Schema subset, so CI can assert the
contract without third-party validators.  The ambient registry and
sink are restored on exit, and any previously configured sink still
receives the spans (the capture forwards), so EXPLAIN never hides a
trace that was being written.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.trace import Sink, get_sink, set_sink, trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.query import ResilientExecutor, TopKPlanner
    from repro.models.attribute import AttributeLevelRelation
    from repro.models.tuple_level import TupleLevelRelation

    Relation = AttributeLevelRelation | TupleLevelRelation

__all__ = [
    "EXPLAIN_SCHEMA",
    "ExplainReport",
    "explain",
    "validate_report",
]

#: The report contract, as the JSON-Schema subset
#: :func:`validate_report` understands (``type`` / ``properties`` /
#: ``required`` / ``items`` / ``enum``).  ``schema_version`` bumps on
#: breaking changes.
EXPLAIN_SCHEMA: dict = {
    "type": "object",
    "required": [
        "schema_version",
        "trace_id",
        "relation",
        "query",
        "plan",
        "execution",
        "stages",
        "events",
        "counters",
    ],
    "properties": {
        "schema_version": {"type": "integer"},
        "trace_id": {"type": "string"},
        "relation": {
            "type": "object",
            "required": ["model", "tuples"],
            "properties": {
                "model": {"enum": ["attribute", "tuple"]},
                "tuples": {"type": "integer"},
            },
        },
        "query": {
            "type": "object",
            "required": ["k", "method", "options"],
            "properties": {
                "k": {"type": "integer"},
                "method": {"type": "string"},
                "options": {"type": "object"},
            },
        },
        "plan": {
            "type": "object",
            "required": ["method", "reason"],
            "properties": {
                "method": {"type": "string"},
                "reason": {"type": "string"},
                "predicted_seconds": {"type": ["number", "null"]},
                "candidates": {
                    "type": "array",
                    "items": {
                        "type": "object",
                        "required": ["method", "total_seconds"],
                        "properties": {
                            "method": {"type": "string"},
                            "kernel": {"type": "string"},
                            "tuples": {"type": "integer"},
                            "total_seconds": {"type": "number"},
                        },
                    },
                },
            },
        },
        "execution": {
            "type": "object",
            "required": ["executed", "dry_run", "degraded"],
            "properties": {
                "executed": {"type": "boolean"},
                "dry_run": {"type": "boolean"},
                "answer": {"type": "array", "items": {"type": "string"}},
                "tuples_accessed": {"type": ["integer", "null"]},
                "fraction_accessed": {"type": ["number", "null"]},
                "degraded": {"type": "boolean"},
                "fallback_method": {"type": ["string", "null"]},
                "wall_seconds": {"type": ["number", "null"]},
                "predicted_seconds": {"type": ["number", "null"]},
            },
        },
        "pruning": {"type": ["object", "null"]},
        "resilience": {"type": ["object", "null"]},
        "stages": {"type": "object"},
        "events": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "attributes"],
                "properties": {
                    "name": {"type": "string"},
                    "attributes": {"type": "object"},
                },
            },
        },
        "counters": {"type": "object"},
    },
}

_TYPE_CHECKS = {
    "object": lambda value: isinstance(value, dict),
    "array": lambda value: isinstance(value, list),
    "string": lambda value: isinstance(value, str),
    "integer": lambda value: (
        isinstance(value, int) and not isinstance(value, bool)
    ),
    "number": lambda value: (
        isinstance(value, (int, float)) and not isinstance(value, bool)
    ),
    "boolean": lambda value: isinstance(value, bool),
    "null": lambda value: value is None,
}


def validate_report(
    report: object, schema: Mapping | None = None, *, path: str = "$"
) -> None:
    """Check ``report`` against ``schema`` (default the EXPLAIN one).

    Understands the JSON-Schema subset used by
    :data:`EXPLAIN_SCHEMA` — ``type`` (string or list), ``required``,
    ``properties``, ``items``, and ``enum`` — and raises
    :class:`ValueError` naming the offending path on the first
    mismatch.  Silence means the report satisfies the contract.
    """
    schema = EXPLAIN_SCHEMA if schema is None else schema
    declared = schema.get("type")
    if declared is not None:
        allowed = [declared] if isinstance(declared, str) else declared
        if not any(
            _TYPE_CHECKS[name](report) for name in allowed
        ):
            raise ValueError(
                f"{path}: expected {' | '.join(allowed)}, "
                f"got {type(report).__name__}"
            )
    if "enum" in schema and report not in schema["enum"]:
        raise ValueError(
            f"{path}: {report!r} not in {schema['enum']!r}"
        )
    if isinstance(report, dict):
        for key in schema.get("required", ()):
            if key not in report:
                raise ValueError(f"{path}: missing required key {key!r}")
        for key, subschema in schema.get("properties", {}).items():
            if key in report:
                validate_report(
                    report[key], subschema, path=f"{path}.{key}"
                )
    if isinstance(report, list) and "items" in schema:
        for index, item in enumerate(report):
            validate_report(
                item, schema["items"], path=f"{path}[{index}]"
            )


def _json_safe(value: object) -> object:
    """Recursively coerce to JSON-serialisable data (repr fallback)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {str(key): _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    return repr(value)


class _CaptureSink:
    """Records every span/event; forwards to the previous sink."""

    def __init__(self, forward: Sink | None = None) -> None:
        self.records: list[dict] = []
        self.forward = forward

    def emit(self, record: dict) -> None:
        self.records.append(record)
        if self.forward is not None:
            self.forward.emit(record)


@dataclass(frozen=True)
class ExplainReport:
    """Everything observable about one ranking query, as plain data."""

    trace_id: str
    relation: dict
    query: dict
    plan: dict
    execution: dict
    pruning: dict | None
    stages: dict
    events: list
    counters: dict
    #: The resilience configuration the query ran under (deadline,
    #: retries, injector, breaker states); ``None`` without executor.
    resilience: dict | None = None
    schema_version: int = 1
    #: Raw span/event records, for tooling that reconstructs the tree.
    trace: list = field(default_factory=list)

    def to_dict(self) -> dict:
        """The report as a JSON-serialisable dict (schema-valid)."""
        return {
            "schema_version": self.schema_version,
            "trace_id": self.trace_id,
            "relation": self.relation,
            "query": self.query,
            "plan": self.plan,
            "execution": self.execution,
            "pruning": self.pruning,
            "resilience": self.resilience,
            "stages": self.stages,
            "events": self.events,
            "counters": self.counters,
            "trace": self.trace,
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def describe(self) -> str:
        """A human-readable rendering for terminal output."""
        lines = [f"EXPLAIN  trace_id={self.trace_id}"]
        lines.append(
            f"relation  {self.relation['model']}-level, "
            f"{self.relation['tuples']} tuples"
        )
        options = self.query.get("options") or {}
        suffix = (
            " " + " ".join(
                f"{key}={value}" for key, value in sorted(options.items())
            )
            if options
            else ""
        )
        lines.append(
            f"query     top-{self.query['k']} "
            f"{self.query['method']}{suffix}"
        )
        lines.append(
            f"plan      {self.plan['method']} — {self.plan['reason']}"
        )
        for candidate in self.plan.get("candidates") or []:
            marker = (
                "*" if candidate["method"] == self.plan["method"] else " "
            )
            lines.append(
                f"candidate {marker}{candidate['method']}: predicted "
                f"{candidate['total_seconds']:.3g}s "
                f"({candidate.get('tuples')} tuples via "
                f"{candidate.get('kernel')})"
            )
        execution = self.execution
        if not execution["executed"]:
            lines.append("execution skipped (dry run)")
            return "\n".join(lines)
        answer = ", ".join(execution.get("answer") or ()) or "(empty)"
        lines.append(f"answer    {answer}")
        accessed = execution.get("tuples_accessed")
        if accessed is not None:
            fraction = execution.get("fraction_accessed")
            percent = (
                f" ({fraction * 100.0:.1f}% of relation)"
                if fraction is not None
                else ""
            )
            lines.append(f"cost      {accessed} tuples accessed{percent}")
        predicted = execution.get("predicted_seconds")
        wall = execution.get("wall_seconds")
        if predicted is not None and wall is not None:
            ratio = (
                f" ({wall / predicted:.2f}x predicted)"
                if predicted > 0
                else ""
            )
            lines.append(
                f"cost      predicted {predicted:.3g}s vs actual "
                f"{wall:.3g}s{ratio}"
            )
        if execution.get("degraded"):
            lines.append(
                "degraded  answered by fallback "
                f"{execution.get('fallback_method')!r}"
            )
        if self.resilience is not None:
            deadline = self.resilience.get("deadline_ms")
            parts = [
                "deadline_ms="
                + ("none" if deadline is None else f"{deadline:g}"),
                f"max_retries={self.resilience.get('max_retries')}",
            ]
            if self.resilience.get("injector") is not None:
                rate = self.resilience["injector"].get("error_rate")
                parts.append(f"inject_faults={rate:g}")
            breakers = self.resilience.get("breakers") or {}
            for name, state in sorted(breakers.items()):
                parts.append(f"breaker.{name}={state}")
            lines.append("resilience " + " ".join(parts))
        if self.pruning is not None:
            points = self.pruning.get("trajectory") or []
            if points:
                last = points[-1]
                lines.append(
                    f"pruning   bound trajectory, {len(points)} "
                    f"checkpoints; final unseen_bound="
                    f"{last.get('unseen_bound')}"
                )
        for name in sorted(self.stages):
            stage = self.stages[name]
            lines.append(
                f"stage     {name}: {stage['count']}x "
                f"total={stage['total_seconds'] * 1e3:.3f}ms "
                f"p50={stage['p50'] * 1e3:.3f}ms "
                f"p95={stage['p95'] * 1e3:.3f}ms "
                f"p99={stage['p99'] * 1e3:.3f}ms"
            )
        for event in self.events:
            attributes = " ".join(
                f"{key}={value}"
                for key, value in sorted(event["attributes"].items())
            )
            lines.append(f"event     {event['name']} {attributes}")
        return "\n".join(lines)


def _stage_timings(registry: MetricsRegistry) -> dict:
    """Per-stage wall-time summaries from ``span.*.seconds``."""
    stages: dict[str, dict] = {}
    for name, histogram in registry._histograms.items():
        if not (name.startswith("span.") and name.endswith(".seconds")):
            continue
        stage = name[len("span."):-len(".seconds")]
        stages[stage] = {
            "count": histogram.count,
            "total_seconds": histogram.total,
            "mean_seconds": histogram.mean,
            **histogram.percentiles(),
        }
    return stages


def explain(
    relation: "Relation",
    k: int,
    method: str = "expected_rank",
    *,
    planner: "TopKPlanner | None" = None,
    executor: "ResilientExecutor | None" = None,
    dry_run: bool = False,
    expensive_access: bool = True,
    **options,
) -> ExplainReport:
    """Run (or plan) a top-k query and report everything observed.

    A fresh enabled registry and a capturing sink are swapped in for
    the duration of the call — so the report's stage timings and
    counters describe *this* query only — and restored afterwards;
    the previously configured sink still receives every span.  With
    ``dry_run`` the query is planned but not executed.  ``executor``
    routes execution through a
    :class:`~repro.engine.query.ResilientExecutor` so the report can
    show retries and degradations; otherwise the plan runs directly.
    ``expensive_access`` configures the default planner (ignored when
    ``planner`` is given).
    """
    from repro.engine.query import TopKPlanner
    from repro.models.attribute import AttributeLevelRelation

    if planner is None:
        planner = (
            executor.planner
            if executor is not None
            else TopKPlanner(expensive_access=expensive_access)
        )
    registry = MetricsRegistry(enabled=True)
    capture = _CaptureSink(forward=get_sink())
    previous_registry = set_registry(registry)
    set_sink(capture)
    try:
        with trace(
            "explain.query", method=method, k=k, n=relation.size
        ) as root:
            plan = planner.plan(relation, k, method, **dict(options))
            result = None
            if not dry_run:
                if executor is not None:
                    result = executor.execute(
                        relation, k, method=method, **options
                    )
                else:
                    result = plan.execute(relation, k)
        trace_id = root.trace_id
    finally:
        set_registry(previous_registry)
        set_sink(capture.forward)

    assert trace_id is not None  # registry was enabled
    n = relation.size
    model = (
        "attribute"
        if isinstance(relation, AttributeLevelRelation)
        else "tuple"
    )
    metadata = dict(result.metadata) if result is not None else {}
    accessed = metadata.get("tuples_accessed")
    accessed = int(accessed) if accessed is not None else None
    root_record = next(
        (
            record
            for record in capture.records
            if record.get("type") == "span"
            and record.get("name") == "explain.query"
        ),
        None,
    )
    execution = {
        "executed": result is not None,
        "dry_run": dry_run,
        "resilient": bool(metadata.get("resilient", False)),
        "answer": list(result.tids()) if result is not None else [],
        "method_run": result.method if result is not None else None,
        "tuples_accessed": accessed,
        "fraction_accessed": (
            accessed / n if accessed is not None and n else None
        ),
        "degraded": bool(metadata.get("degraded", False)),
        "fallback_method": metadata.get("fallback_method")
        if metadata.get("degraded")
        else None,
        "ladder": _json_safe(metadata.get("ladder", [])),
        "attempts": metadata.get("attempts"),
        "faults_survived": metadata.get("faults_survived"),
        "wall_seconds": (
            root_record.get("duration_seconds")
            if root_record is not None
            else None
        ),
        "predicted_seconds": (
            plan.estimate.total_seconds
            if plan.estimate is not None
            else None
        ),
    }
    trajectory = metadata.get("prune_trajectory")
    pruning = (
        {"trajectory": _json_safe(list(trajectory))}
        if trajectory is not None
        else None
    )
    from repro.obs.capture import resilience_config

    resilience = resilience_config(executor)
    if resilience is not None:
        # Post-run breaker states: a rung that tripped during this
        # query shows up as open/half_open right here in the report.
        if executor is not None and executor.breakers is not None:
            resilience["breakers"] = executor.breakers.states()
        resilience = _json_safe(resilience)
    events = [
        {
            "name": record["name"],
            "attributes": _json_safe(record.get("attributes", {})),
        }
        for record in capture.records
        if record.get("type") == "event"
    ]
    report = ExplainReport(
        trace_id=trace_id,
        relation={"model": model, "tuples": n},
        query={
            "k": k,
            "method": method,
            "options": _json_safe(dict(options)),
        },
        plan={
            "method": plan.method,
            "reason": plan.reason,
            "options": _json_safe(dict(plan.options)),
            "predicted_seconds": (
                plan.estimate.total_seconds
                if plan.estimate is not None
                else None
            ),
            "candidates": [
                candidate.to_dict() for candidate in plan.candidates
            ],
        },
        execution=execution,
        pruning=pruning,
        resilience=resilience,
        stages=_stage_timings(registry),
        events=events,
        counters=dict(registry.snapshot()["counters"]),
        trace=[_json_safe(record) for record in capture.records],
    )
    validate_report(report.to_dict())
    return report
