"""Structured JSON logging with trace-id and tenant correlation.

The serving layer needs *operational* logs — one machine-parseable
line per noteworthy moment (a shed, a breaker transition, a
degradation, a drain) that an operator can grep and a pipeline can
ingest — without dragging in a logging framework or perturbing the
bit-identical fault-free path.  This module is the repo's answer, in
the structured-logging idiom of orchestrator-core's ``structlog``
setup but on a zero-dependency budget:

* every record is **one JSON object per line** with deterministic key
  order (``sort_keys=True``), so dump files diff cleanly and
  PYTHONHASHSEED never reorders a log;
* every record automatically carries the ambient **trace id** (minted
  by the outermost span, see :mod:`repro.obs.trace`) and the ambient
  **tenant** (bound by the serving core via :func:`bind_tenant`), so
  a single ``grep trace_id`` stitches logs, spans, and the query log
  together;
* logging is **off by default and free while off**: an unconfigured
  logger costs one module-global load and a ``None`` check per call —
  the same contract as the metrics registry — so library code can log
  unconditionally;
* the timestamp source is **injectable** (:func:`configure_logging`'s
  ``clock``), so tests assert exact records without touching the wall
  clock.

Usage::

    from repro.obs.logging import configure_logging, get_logger

    configure_logging(sys.stderr)          # or any text stream
    log = get_logger("repro.serve")
    log.warning("serve.shed", tenant="acme", reason="quota")

Library code inside :mod:`repro.serve` and :mod:`repro.robust` must
use this logger rather than ``print()`` or stdlib ``logging`` — rule
RPR010 of :mod:`repro.analysis` enforces it.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import IO, Callable, Iterator

__all__ = [
    "StructuredLogger",
    "bind_tenant",
    "configure_logging",
    "current_tenant",
    "get_logger",
    "logging_configured",
]

#: Numeric severities, stdlib-compatible so records sort naturally.
_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

_stream: IO[str] | None = None
_threshold: int = _LEVELS["info"]
# Wall-clock timestamps are the point of an operational log; the
# source is injectable so tests stay deterministic (RPR004 allows the
# default only here).
_clock: Callable[[], float] = time.time
_write_lock = threading.Lock()

_tenant: ContextVar[str | None] = ContextVar(
    "repro_log_tenant", default=None
)

_loggers: dict[str, "StructuredLogger"] = {}


def configure_logging(
    stream: IO[str] | None,
    *,
    level: str = "info",
    clock: Callable[[], float] | None = None,
) -> None:
    """Point structured logging at ``stream`` (``None`` disables it).

    ``level`` drops records below the named severity; ``clock``
    overrides the timestamp source (tests pass a fake).  Configuration
    is process-global, like the metrics registry and the span sink.
    """
    global _stream, _threshold, _clock
    if level not in _LEVELS:
        known = ", ".join(sorted(_LEVELS))
        raise ValueError(
            f"unknown log level {level!r}; expected one of {known}"
        )
    _stream = stream
    _threshold = _LEVELS[level]
    if clock is not None:
        _clock = clock


def logging_configured() -> bool:
    """Whether records currently go anywhere."""
    return _stream is not None


def current_tenant() -> str | None:
    """The tenant bound to the current context, if any."""
    return _tenant.get()


@contextmanager
def bind_tenant(tenant: str | None) -> Iterator[None]:
    """Attach ``tenant`` to every record emitted inside the block.

    The serving core wraps each request in this, so kernel-level and
    resilience-level logs carry the tenant without the engine knowing
    tenants exist.
    """
    token = _tenant.set(tenant)
    try:
        yield
    finally:
        _tenant.reset(token)


class StructuredLogger:
    """Named emitter of one-line JSON records.

    Records look like::

        {"event": "serve.shed", "level": "warning",
         "logger": "repro.serve", "tenant": "acme",
         "trace_id": "9f2c...", "ts": 1700000000.25, "reason": "quota"}

    Free-form fields ride alongside the envelope; collisions with
    envelope keys are resolved in favour of the envelope (a field
    cannot spoof the trace id).
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def log(self, level: str, event: str, **fields: object) -> None:
        """Emit one record; free when logging is unconfigured."""
        stream = _stream
        if stream is None:
            return
        severity = _LEVELS.get(level)
        if severity is None:
            raise ValueError(f"unknown log level {level!r}")
        if severity < _threshold:
            return
        # Imported lazily to keep module import order flexible (trace
        # imports metrics; logging must not complete the cycle).
        from repro.obs.trace import current_trace_id

        record: dict[str, object] = dict(fields)
        record.update(
            ts=round(_clock(), 6),
            level=level,
            logger=self.name,
            event=event,
            trace_id=current_trace_id(),
            tenant=_tenant.get(),
        )
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        with _write_lock:
            stream.write(line)
            stream.flush()

    def debug(self, event: str, **fields: object) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: object) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: object) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: object) -> None:
        self.log("error", event, **fields)


def get_logger(name: str) -> StructuredLogger:
    """The process-wide logger called ``name`` (created on first use)."""
    logger = _loggers.get(name)
    if logger is None:
        logger = _loggers.setdefault(name, StructuredLogger(name))
    return logger
