"""Lightweight spans with pluggable sinks.

A *span* wraps one logical operation — a ranking query, a kernel
invocation, a benchmark repetition — and records its duration plus
free-form attributes:

    with trace("t_erank", n=relation.size):
        tuple_expected_ranks(relation)

Spans nest via a :mod:`contextvars` stack, so a query span shows the
kernel spans it contains through their ``parent_id``.  The outermost
span of a stack additionally mints a **trace id** that every nested
span (and :func:`emit_event` record) inherits, so one query's full
tree — planner decision, kernel invocation, retries, degradation —
is reconstructable from a JSONL trace by filtering on ``trace_id``.
Finished spans go to the configured sink (:class:`NullSink` by
default, :class:`LoggingSink` for stdlib logging, :class:`JsonlSink`
for a machine-readable trace file) and their durations also land in
the default metrics registry as ``span.<name>.seconds`` histograms.

Tracing follows the registry's enablement: when the default registry
is disabled, :func:`trace` returns a shared no-op handle and costs one
attribute load — the same zero-cost contract as the metrics layer.
"""

from __future__ import annotations

import itertools
import json
import logging
import threading
import time
import uuid
from contextvars import ContextVar
from pathlib import Path
from types import TracebackType
from typing import IO, Protocol

from repro.obs.metrics import get_registry

__all__ = [
    "JsonlSink",
    "LoggingSink",
    "NullSink",
    "Sink",
    "current_span_id",
    "current_trace_id",
    "emit_event",
    "get_sink",
    "set_sink",
    "trace",
]


class Sink(Protocol):
    """Anything that accepts finished-span dictionaries."""

    def emit(self, span: dict) -> None:  # pragma: no cover - protocol
        ...


class NullSink:
    """Discards spans (the default)."""

    def emit(self, span: dict) -> None:
        return None


class LoggingSink:
    """Forwards spans to a stdlib logger, one INFO record each."""

    def __init__(
        self,
        logger: logging.Logger | None = None,
        *,
        level: int = logging.INFO,
    ) -> None:
        self.logger = logger if logger is not None else logging.getLogger(
            "repro.obs"
        )
        self.level = level

    def emit(self, span: dict) -> None:
        self.logger.log(
            self.level,
            "span %s: %.6fs %s",
            span.get("name"),
            span.get("duration_seconds", 0.0),
            span.get("attributes") or "",
        )


class JsonlSink:
    """Appends one JSON object per span to a file (JSON lines).

    Accepts a path (opened lazily, append mode) or an open text
    stream.  :meth:`write` takes arbitrary JSON-serialisable records,
    which the CLI uses to append a final metrics snapshot after the
    span lines.

    ``max_bytes`` caps the file so a long capture or trace session
    cannot grow it unboundedly: once the next record would push past
    the cap, one final ``{"type": "truncation_notice", ...}`` record
    is written (so readers can tell a capped file from a crashed
    writer) and every later record is silently dropped and counted in
    :attr:`dropped_records`.
    """

    def __init__(
        self,
        target: Path | str | IO[str],
        *,
        max_bytes: int | None = None,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(
                f"max_bytes must be > 0, got {max_bytes!r}"
            )
        if isinstance(target, (str, Path)):
            self._path: Path | None = Path(target)
            self._stream: IO[str] | None = None
        else:
            self._path = None
            self._stream = target
        self.max_bytes = max_bytes
        self.dropped_records = 0
        self._bytes_written = 0
        self._truncated = False
        # Spans may finish on several threads at once; the lock keeps
        # each JSON line atomic (no interleaved partial writes).
        self._lock = threading.Lock()

    @property
    def truncated(self) -> bool:
        """Whether the ``max_bytes`` cap has tripped."""
        return self._truncated

    def _handle(self) -> IO[str]:
        if self._stream is None:
            assert self._path is not None
            self._stream = self._path.open("a")
        return self._stream

    def emit(self, span: dict) -> None:
        self.write(span)

    def write(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            if self._truncated:
                self.dropped_records += 1
                return
            handle = self._handle()
            if self.max_bytes is not None:
                size = len(line.encode("utf-8"))
                if self._bytes_written + size > self.max_bytes:
                    self._truncated = True
                    self.dropped_records = 1
                    notice = json.dumps(
                        {
                            "type": "truncation_notice",
                            "max_bytes": self.max_bytes,
                            "bytes_written": self._bytes_written,
                        },
                        sort_keys=True,
                    )
                    handle.write(notice + "\n")
                    handle.flush()
                    return
                self._bytes_written += size
            handle.write(line)
            handle.flush()

    def close(self) -> None:
        if self._stream is not None and self._path is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


_sink: Sink = NullSink()
_span_ids = itertools.count(1)
_active_span: ContextVar[int | None] = ContextVar(
    "repro_active_span", default=None
)
_active_trace: ContextVar[str | None] = ContextVar(
    "repro_active_trace", default=None
)


def get_sink() -> Sink:
    """The sink finished spans are emitted to."""
    return _sink


def set_sink(sink: Sink) -> Sink:
    """Swap the span sink; returns the previous one."""
    global _sink
    previous = _sink
    _sink = sink
    return previous


def current_span_id() -> int | None:
    """The innermost active span's id, if any (for correlation)."""
    return _active_span.get()


def current_trace_id() -> str | None:
    """The trace id of the active span stack, if any.

    Minted by the outermost span and inherited by everything nested
    inside it, including spans opened by other layers (planner, kernel,
    retry ladder) — so one id stitches a whole query together.
    """
    return _active_trace.get()


def new_trace_id() -> str:
    """A fresh, process-unique trace id (16 hex chars)."""
    return uuid.uuid4().hex[:16]


def emit_event(name: str, **attributes: object) -> None:
    """Emit a point-in-time record to the sink, inside the live trace.

    Events carry the ambient ``trace_id`` / ``span_id`` so they land in
    the right place of a reconstructed query tree; the retry layer uses
    them for "recovered after N attempts" / "retries exhausted" marks.
    Free (no record, no dict) while the default registry is disabled.
    """
    if not get_registry().enabled:
        return
    _sink.emit(
        {
            "type": "event",
            "name": name,
            "trace_id": _active_trace.get(),
            "span_id": _active_span.get(),
            "attributes": attributes,
        }
    )


class _SpanHandle:
    """Live span: times the block, then emits and records it."""

    __slots__ = (
        "name",
        "attributes",
        "span_id",
        "parent_id",
        "trace_id",
        "_start",
        "_token",
        "_trace_token",
        "error",
    )

    def __init__(self, name: str, attributes: dict) -> None:
        self.name = name
        self.attributes = attributes
        self.span_id = next(_span_ids)
        self.parent_id: int | None = None
        self.trace_id: str | None = None
        self.error: str | None = None
        self._start = 0.0
        self._token = None
        self._trace_token = None

    def __enter__(self) -> "_SpanHandle":
        self.parent_id = _active_span.get()
        self._token = _active_span.set(self.span_id)
        trace_id = _active_trace.get()
        if trace_id is None:
            # Outermost span of the stack: mint the trace id that
            # every nested span and event will inherit.
            trace_id = new_trace_id()
            self._trace_token = _active_trace.set(trace_id)
        self.trace_id = trace_id
        self._start = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        traceback: TracebackType | None,
    ) -> None:
        duration = time.perf_counter() - self._start
        if self._token is not None:
            _active_span.reset(self._token)
        if self._trace_token is not None:
            _active_trace.reset(self._trace_token)
        if exc is not None:
            self.error = f"{type(exc).__name__}: {exc}"
        registry = get_registry()
        if registry.enabled:
            registry.histogram(f"span.{self.name}.seconds").observe(
                duration
            )
        record = {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            # perf_counter origin: meaningless absolutely, but shared
            # by every span of the process, so Chrome-trace export can
            # lay spans out on one consistent timeline.
            "start_seconds": self._start,
            "duration_seconds": duration,
            "attributes": self.attributes,
        }
        if self.error is not None:
            record["error"] = self.error
        _sink.emit(record)


class _NullSpan:
    """Shared no-op handle returned while tracing is disabled."""

    __slots__ = ()
    name = "<disabled>"
    span_id = None
    parent_id = None
    trace_id = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


def trace(name: str, **attributes: object) -> _SpanHandle | _NullSpan:
    """Open a span around a block: ``with trace("query", k=5): ...``.

    Free (a shared no-op handle) when the default registry is
    disabled.
    """
    if not get_registry().enabled:
        return _NULL_SPAN
    return _SpanHandle(name, attributes)
