"""Lightweight spans with pluggable sinks.

A *span* wraps one logical operation — a ranking query, a kernel
invocation, a benchmark repetition — and records its duration plus
free-form attributes:

    with trace("t_erank", n=relation.size):
        tuple_expected_ranks(relation)

Spans nest via a :mod:`contextvars` stack, so a query span shows the
kernel spans it contains through their ``parent_id``.  Finished spans
go to the configured sink (:class:`NullSink` by default,
:class:`LoggingSink` for stdlib logging, :class:`JsonlSink` for a
machine-readable trace file) and their durations also land in the
default metrics registry as ``span.<name>.seconds`` histograms.

Tracing follows the registry's enablement: when the default registry
is disabled, :func:`trace` returns a shared no-op handle and costs one
attribute load — the same zero-cost contract as the metrics layer.
"""

from __future__ import annotations

import itertools
import json
import logging
import time
from contextvars import ContextVar
from pathlib import Path
from types import TracebackType
from typing import IO, Protocol

from repro.obs.metrics import get_registry

__all__ = [
    "JsonlSink",
    "LoggingSink",
    "NullSink",
    "Sink",
    "current_span_id",
    "get_sink",
    "set_sink",
    "trace",
]


class Sink(Protocol):
    """Anything that accepts finished-span dictionaries."""

    def emit(self, span: dict) -> None:  # pragma: no cover - protocol
        ...


class NullSink:
    """Discards spans (the default)."""

    def emit(self, span: dict) -> None:
        return None


class LoggingSink:
    """Forwards spans to a stdlib logger, one INFO record each."""

    def __init__(
        self,
        logger: logging.Logger | None = None,
        *,
        level: int = logging.INFO,
    ) -> None:
        self.logger = logger if logger is not None else logging.getLogger(
            "repro.obs"
        )
        self.level = level

    def emit(self, span: dict) -> None:
        self.logger.log(
            self.level,
            "span %s: %.6fs %s",
            span.get("name"),
            span.get("duration_seconds", 0.0),
            span.get("attributes") or "",
        )


class JsonlSink:
    """Appends one JSON object per span to a file (JSON lines).

    Accepts a path (opened lazily, append mode) or an open text
    stream.  :meth:`write` takes arbitrary JSON-serialisable records,
    which the CLI uses to append a final metrics snapshot after the
    span lines.
    """

    def __init__(self, target: Path | str | IO[str]) -> None:
        if isinstance(target, (str, Path)):
            self._path: Path | None = Path(target)
            self._stream: IO[str] | None = None
        else:
            self._path = None
            self._stream = target

    def _handle(self) -> IO[str]:
        if self._stream is None:
            assert self._path is not None
            self._stream = self._path.open("a")
        return self._stream

    def emit(self, span: dict) -> None:
        self.write(span)

    def write(self, record: dict) -> None:
        handle = self._handle()
        handle.write(json.dumps(record, sort_keys=True) + "\n")
        handle.flush()

    def close(self) -> None:
        if self._stream is not None and self._path is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


_sink: Sink = NullSink()
_span_ids = itertools.count(1)
_active_span: ContextVar[int | None] = ContextVar(
    "repro_active_span", default=None
)


def get_sink() -> Sink:
    """The sink finished spans are emitted to."""
    return _sink


def set_sink(sink: Sink) -> Sink:
    """Swap the span sink; returns the previous one."""
    global _sink
    previous = _sink
    _sink = sink
    return previous


def current_span_id() -> int | None:
    """The innermost active span's id, if any (for correlation)."""
    return _active_span.get()


class _SpanHandle:
    """Live span: times the block, then emits and records it."""

    __slots__ = ("name", "attributes", "span_id", "parent_id",
                 "_start", "_token", "error")

    def __init__(self, name: str, attributes: dict) -> None:
        self.name = name
        self.attributes = attributes
        self.span_id = next(_span_ids)
        self.parent_id: int | None = None
        self.error: str | None = None
        self._start = 0.0
        self._token = None

    def __enter__(self) -> "_SpanHandle":
        self.parent_id = _active_span.get()
        self._token = _active_span.set(self.span_id)
        self._start = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        traceback: TracebackType | None,
    ) -> None:
        duration = time.perf_counter() - self._start
        if self._token is not None:
            _active_span.reset(self._token)
        if exc is not None:
            self.error = f"{type(exc).__name__}: {exc}"
        registry = get_registry()
        if registry.enabled:
            registry.histogram(f"span.{self.name}.seconds").observe(
                duration
            )
        record = {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "duration_seconds": duration,
            "attributes": self.attributes,
        }
        if self.error is not None:
            record["error"] = self.error
        _sink.emit(record)


class _NullSpan:
    """Shared no-op handle returned while tracing is disabled."""

    __slots__ = ()
    name = "<disabled>"
    span_id = None
    parent_id = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


def trace(name: str, **attributes: object) -> _SpanHandle | _NullSpan:
    """Open a span around a block: ``with trace("query", k=5): ...``.

    Free (a shared no-op handle) when the default registry is
    disabled.
    """
    if not get_registry().enabled:
        return _NULL_SPAN
    return _SpanHandle(name, attributes)
