"""Export a span JSONL stream as Chrome trace-event JSON.

The span sink writes one record per *finished* span, so a JSONL trace
lists children before their parents and interleaves concurrent
queries.  This module reconstructs the span tree via ``parent_id``
(:func:`build_span_tree`), lays every span out on a shared timeline,
and emits the Chrome trace-event format that Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing`` load directly —
one track per trace id, so a query's planner → kernel → cursor
timeline reads as a flamegraph.

Spans recorded by this version carry ``start_seconds`` (a shared
``perf_counter`` origin) and are placed at their true offsets.  Older
traces without it are laid out synthetically from the tree alone:
children packed end-to-end from their parent's start, roots from the
previous root's end — nesting stays faithful even when absolute time
is unknown.

``emit_event`` records become instant events on their trace's track,
placed inside their owning span.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping, Sequence

__all__ = [
    "SpanNode",
    "build_span_tree",
    "to_chrome_trace",
    "write_chrome_trace",
]


@dataclass
class SpanNode:
    """One span record plus its children, in emit order."""

    record: dict
    children: list["SpanNode"] = field(default_factory=list)
    #: Start offset on the shared timeline, filled by the layout pass
    #: (equals the recorded ``start_seconds`` when present).
    start: float = 0.0

    @property
    def span_id(self) -> object:
        return self.record.get("span_id")

    @property
    def name(self) -> str:
        return str(self.record.get("name"))

    @property
    def trace_id(self) -> str | None:
        value = self.record.get("trace_id")
        return None if value is None else str(value)

    @property
    def duration(self) -> float:
        return float(self.record.get("duration_seconds") or 0.0)

    def walk(self) -> Iterator["SpanNode"]:
        yield self
        for child in self.children:
            yield from child.walk()


def build_span_tree(
    records: Sequence[Mapping],
) -> list[SpanNode]:
    """Reconstruct the span forest of a JSONL trace via parent ids.

    Accepts the full record stream (events, metrics lines, and
    truncation notices are ignored) and returns the roots: spans with
    no ``parent_id``, or whose parent never made it into the stream
    (a truncated trace) — orphans become roots rather than vanishing.
    Children keep the stream's emit order, which for a single-threaded
    trace is completion order; the layout pass restores start order
    from ``start_seconds`` where available.
    """
    spans = [
        dict(record)
        for record in records
        if record.get("type") == "span"
        and record.get("span_id") is not None
    ]
    nodes = {
        record["span_id"]: SpanNode(record) for record in spans
    }
    roots: list[SpanNode] = []
    for record in spans:
        node = nodes[record["span_id"]]
        parent = nodes.get(record.get("parent_id"))
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent.children.append(node)
    _layout(roots)
    return roots


def _layout(roots: list[SpanNode]) -> None:
    """Assign every node a start offset on one shared timeline."""
    timed = all(
        node.record.get("start_seconds") is not None
        for root in roots
        for node in root.walk()
    )
    if timed:
        for root in roots:
            for node in root.walk():
                node.start = float(node.record["start_seconds"])
                node.children.sort(
                    key=lambda child: float(
                        child.record["start_seconds"]
                    )
                )
        return
    # No (or partial) timestamps: synthesize a consistent layout from
    # the tree alone — siblings packed end-to-end from the parent's
    # start, roots from the previous root's end.
    cursor = 0.0
    for root in roots:
        _pack(root, cursor)
        cursor = root.start + root.duration


def _pack(node: SpanNode, start: float) -> None:
    node.start = start
    offset = start
    for child in node.children:
        _pack(child, offset)
        offset += child.duration


def to_chrome_trace(records: Sequence[Mapping]) -> dict:
    """The Chrome trace-event document for a span/event stream.

    Returns ``{"traceEvents": [...], "displayTimeUnit": "ms"}`` with
    complete (``"X"``) events for spans, instant (``"i"``) events for
    ``emit_event`` records, and thread-name metadata naming each trace
    id's track.  Timestamps are microseconds from the earliest span.
    """
    roots = build_span_tree(records)
    nodes = [node for root in roots for node in root.walk()]
    origin = min(
        (node.start for node in nodes), default=0.0
    )
    track_of: dict[str | None, int] = {}
    trace_events: list[dict] = []

    def track(trace_id: str | None) -> int:
        existing = track_of.get(trace_id)
        if existing is not None:
            return existing
        number = len(track_of) + 1
        track_of[trace_id] = number
        trace_events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 1,
                "tid": number,
                "args": {
                    "name": (
                        f"trace {trace_id}"
                        if trace_id is not None
                        else "untraced"
                    )
                },
            }
        )
        return number

    starts: dict[object, float] = {}
    for node in sorted(nodes, key=lambda item: item.start):
        starts[node.span_id] = node.start
        event = {
            "ph": "X",
            "name": node.name,
            "cat": "span",
            "pid": 1,
            "tid": track(node.trace_id),
            "ts": (node.start - origin) * 1e6,
            "dur": node.duration * 1e6,
            "args": {
                "span_id": node.span_id,
                "parent_id": node.record.get("parent_id"),
                "trace_id": node.trace_id,
                **(node.record.get("attributes") or {}),
            },
        }
        error = node.record.get("error")
        if error is not None:
            event["args"]["error"] = error
        trace_events.append(event)
    for record in records:
        if record.get("type") != "event":
            continue
        trace_id = record.get("trace_id")
        trace_id = None if trace_id is None else str(trace_id)
        anchor = starts.get(record.get("span_id"), origin)
        trace_events.append(
            {
                "ph": "i",
                "name": str(record.get("name")),
                "cat": "event",
                "pid": 1,
                "tid": track(trace_id),
                "ts": (anchor - origin) * 1e6,
                "s": "t",
                "args": dict(record.get("attributes") or {}),
            }
        )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(
    records: Sequence[Mapping], path: Path | str
) -> dict:
    """Write :func:`to_chrome_trace` output to ``path``; returns it."""
    document = to_chrome_trace(records)
    Path(path).write_text(json.dumps(document, indent=1))
    return document
