"""Prometheus text-exposition export for :class:`MetricsRegistry`.

Serialises every instrument of a registry into the Prometheus text
format (version 0.0.4) so the library's metrics plug into standard
scrapers — node exporters, pushgateways, ``promtool`` — without any
new dependency:

* counters become ``<name>_total`` samples with ``# TYPE ... counter``;
* gauges become plain samples (unset gauges are skipped);
* histograms emit cumulative ``_bucket{le="..."}`` lines straight from
  the fixed log-spaced buckets, plus ``_sum`` and ``_count``.

Metric names are sanitised to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``): the library's dotted names have their
dots mapped to underscores and gain a ``repro_`` prefix, so
``t_erank.tuples_accessed`` exports as
``repro_t_erank_tuples_accessed_total``.

:func:`parse_prometheus` is the matching minimal parser — enough to
round-trip this module's own output (CI does exactly that) and to
sanity-check any exposition snapshot in tests; it is *not* a general
Prometheus client.
"""

from __future__ import annotations

import math
import re
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "metric_name",
    "parse_prometheus",
    "to_prometheus",
]

PREFIX = "repro_"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def metric_name(name: str, *, prefix: str = PREFIX) -> str:
    """Sanitise a dotted registry name into a Prometheus metric name."""
    sanitized = _INVALID_CHARS.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return prefix + sanitized


def _format_value(value: float) -> str:
    """Render one sample value (Prometheus accepts Go-style floats)."""
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value.is_integer():
        return str(int(value))
    return repr(value)


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def to_prometheus(registry: "MetricsRegistry") -> str:
    """Serialise ``registry`` to the Prometheus text format.

    Families are emitted in sorted-name order; the output always ends
    with a newline (scrapers require it).  An empty registry yields an
    empty string.
    """
    lines: list[str] = []
    for name, counter in sorted(registry._counters.items()):
        exported = metric_name(name) + "_total"
        lines.append(f"# TYPE {exported} counter")
        lines.append(f"{exported} {_format_value(counter.value)}")
    for name, gauge in sorted(registry._gauges.items()):
        if gauge.value is None:
            continue
        exported = metric_name(name)
        lines.append(f"# TYPE {exported} gauge")
        lines.append(f"{exported} {_format_value(gauge.value)}")
    for name, histogram in sorted(registry._histograms.items()):
        exported = metric_name(name)
        lines.append(f"# TYPE {exported} histogram")
        for bound, cumulative in histogram.cumulative_buckets():
            le = "+Inf" if math.isinf(bound) else _format_value(bound)
            lines.append(
                f'{exported}_bucket{{le="{le}"}} {cumulative}'
            )
        lines.append(f"{exported}_sum {_format_value(histogram.total)}")
        lines.append(f"{exported}_count {histogram.count}")
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[str, dict]:
    """Parse an exposition snapshot back into plain data.

    Returns ``{family_name: {"type": ..., "samples": [...]}}`` where
    each sample is ``{"name": ..., "labels": {...}, "value": float}``.
    Raises :class:`ValueError` on a malformed sample line, so a failed
    round-trip is loud.
    """
    families: dict[str, dict] = {}
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                families.setdefault(
                    parts[2], {"type": parts[3], "samples": []}
                )
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"malformed exposition line: {line!r}")
        name = match.group("name")
        labels = {
            key: value.replace('\\"', '"')
            for key, value in _LABEL.findall(
                match.group("labels") or ""
            )
        }
        sample = {
            "name": name,
            "labels": labels,
            "value": _parse_value(match.group("value")),
        }
        # Histogram series (_bucket/_sum/_count) belong to their base
        # family when one was declared.
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                family = name[: -len(suffix)]
                break
        families.setdefault(
            family, {"type": "untyped", "samples": []}
        )["samples"].append(sample)
    return families
