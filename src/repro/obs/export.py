"""Prometheus / OpenMetrics text export for :class:`MetricsRegistry`.

Serialises every instrument of a registry into the Prometheus text
format (version 0.0.4) so the library's metrics plug into standard
scrapers — node exporters, pushgateways, ``promtool`` — without any
new dependency:

* counters become ``<name>_total`` samples with ``# TYPE ... counter``;
* gauges become plain samples (unset gauges are skipped);
* histograms emit cumulative ``_bucket{le="..."}`` lines straight from
  the fixed log-spaced buckets, plus ``_sum`` and ``_count``;
* labelled instruments (``registry.counter("x", {"tenant": "a"})``)
  render as one family with per-sample label sets, values escaped per
  the exposition format (backslash, double quote, newline);
* help strings registered via :meth:`MetricsRegistry.describe` emit
  as escaped ``# HELP`` lines.

Metric names are sanitised to the Prometheus grammar
(``[a-zA-Z_:][a-zA-Z0-9_:]*``): the library's dotted names have their
dots mapped to underscores and gain a ``repro_`` prefix, so
``t_erank.tuples_accessed`` exports as
``repro_t_erank_tuples_accessed_total``.

:func:`to_openmetrics` is the OpenMetrics 1.0 sibling the admin
plane's ``/metrics`` endpoint serves: same families, plus per-bucket
**exemplars** (``... # {trace_id="9f2c..."} 0.0031``) linking latency
buckets to recent trace ids, terminated by the mandatory ``# EOF``.

:func:`parse_prometheus` is the matching minimal parser — enough to
round-trip both of this module's own outputs (CI does exactly that,
exemplars included) and to sanity-check any exposition snapshot in
tests; it is *not* a general Prometheus client.
"""

from __future__ import annotations

import math
import re
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = [
    "OPENMETRICS_CONTENT_TYPE",
    "escape_help",
    "escape_label_value",
    "metric_name",
    "parse_prometheus",
    "to_openmetrics",
    "to_prometheus",
]

PREFIX = "repro_"

#: The content type OpenMetrics scrapers negotiate for.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
#: One quoted label pair: ``name="value"`` with escape-aware value.
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
#: A full label block body — only escape-aware quoted pairs, so a
#: ``}`` *inside* a quoted value cannot end the block early.
_LABEL_BLOCK = r'(?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*",?\s*)*'
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    rf"(?:\{{(?P<labels>{_LABEL_BLOCK})\}})?"
    r"\s+(?P<value>\S+)"
    rf"(?:\s+#\s+\{{(?P<exemplar>{_LABEL_BLOCK})\}}"
    r"\s+(?P<exemplar_value>\S+))?"
    r"\s*$"
)


def metric_name(name: str, *, prefix: str = PREFIX) -> str:
    """Sanitise a dotted registry name into a Prometheus metric name."""
    sanitized = _INVALID_CHARS.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return prefix + sanitized


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format.

    Backslash, double quote, and line feed are the three characters
    the format reserves; everything else passes through verbatim.
    """
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _unescape_label_value(value: str) -> str:
    out: list[str] = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            nxt = value[index + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ('"', "\\"):
                out.append(nxt)
            else:  # unknown escape: keep it verbatim
                out.append(char)
                out.append(nxt)
            index += 2
            continue
        out.append(char)
        index += 1
    return "".join(out)


def escape_help(text: str) -> str:
    """Escape a ``# HELP`` string (backslash and line feed only)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _unescape_help(text: str) -> str:
    out: list[str] = []
    index = 0
    while index < len(text):
        char = text[index]
        if char == "\\" and index + 1 < len(text):
            nxt = text[index + 1]
            if nxt == "n":
                out.append("\n")
                index += 2
                continue
            if nxt == "\\":
                out.append("\\")
                index += 2
                continue
        out.append(char)
        index += 1
    return "".join(out)


def _format_value(value: float) -> str:
    """Render one sample value (Prometheus accepts Go-style floats)."""
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value.is_integer():
        return str(int(value))
    return repr(value)


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def _render_labels(
    pairs: Iterable[tuple[str, str]], *, extra: str | None = None
) -> str:
    """``{k="v",...}`` with escaped values; empty string when bare."""
    rendered = [
        f'{key}="{escape_label_value(value)}"' for key, value in pairs
    ]
    if extra is not None:
        rendered.append(extra)
    if not rendered:
        return ""
    return "{" + ",".join(rendered) + "}"


def _grouped(instruments: Iterable) -> dict[str, list]:
    """Instruments grouped into families by base metric name."""
    families: dict[str, list] = {}
    for instrument in instruments:
        families.setdefault(instrument.name, []).append(instrument)
    return families


def _help_line(
    name: str, exported: str, help_texts: dict[str, str]
) -> list[str]:
    text = help_texts.get(name)
    if text is None:
        return []
    return [f"# HELP {exported} {escape_help(text)}"]


def _histogram_lines(
    exported: str,
    histogram: "Histogram",
    *,
    exemplars: bool,
) -> list[str]:
    lines: list[str] = []
    bucket_exemplars = histogram.exemplars() if exemplars else {}
    for index, (bound, cumulative) in enumerate(
        histogram.cumulative_buckets()
    ):
        le = "+Inf" if math.isinf(bound) else _format_value(bound)
        labels = _render_labels(histogram.labels, extra=f'le="{le}"')
        line = f"{exported}_bucket{labels} {cumulative}"
        exemplar = bucket_exemplars.get(index)
        if exemplar is not None:
            ex_labels, ex_value = exemplar
            line += (
                f" # {_render_labels(ex_labels) or '{}'}"
                f" {_format_value(ex_value)}"
            )
        lines.append(line)
    plain = _render_labels(histogram.labels)
    lines.append(
        f"{exported}_sum{plain} {_format_value(histogram.total)}"
    )
    lines.append(f"{exported}_count{plain} {histogram.count}")
    return lines


def _exposition(
    registry: "MetricsRegistry", *, exemplars: bool
) -> list[str]:
    help_texts = registry.help_texts()
    lines: list[str] = []
    counters = _grouped(registry._counters.values())
    for name in sorted(counters):
        exported = metric_name(name) + "_total"
        lines.extend(
            _help_line(name, exported, help_texts)
        )
        lines.append(f"# TYPE {exported} counter")
        for counter in counters[name]:
            labels = _render_labels(counter.labels)
            lines.append(
                f"{exported}{labels} {_format_value(counter.value)}"
            )
    gauges = _grouped(registry._gauges.values())
    for name in sorted(gauges):
        live = [g for g in gauges[name] if g.value is not None]
        if not live:
            continue
        exported = metric_name(name)
        lines.extend(_help_line(name, exported, help_texts))
        lines.append(f"# TYPE {exported} gauge")
        for gauge in live:
            labels = _render_labels(gauge.labels)
            lines.append(
                f"{exported}{labels} {_format_value(gauge.value)}"
            )
    histograms = _grouped(registry._histograms.values())
    for name in sorted(histograms):
        exported = metric_name(name)
        lines.extend(_help_line(name, exported, help_texts))
        lines.append(f"# TYPE {exported} histogram")
        for histogram in histograms[name]:
            lines.extend(
                _histogram_lines(
                    exported, histogram, exemplars=exemplars
                )
            )
    return lines


def to_prometheus(registry: "MetricsRegistry") -> str:
    """Serialise ``registry`` to the Prometheus text format (0.0.4).

    Families are emitted in sorted-name order; the output always ends
    with a newline (scrapers require it).  An empty registry yields an
    empty string.  Exemplars are an OpenMetrics feature and are *not*
    rendered here — classic 0.0.4 consumers reject them.
    """
    lines = _exposition(registry, exemplars=False)
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


def to_openmetrics(registry: "MetricsRegistry") -> str:
    """Serialise ``registry`` to OpenMetrics 1.0 text, with exemplars.

    Identical family layout to :func:`to_prometheus`, plus per-bucket
    exemplars recorded by :meth:`Histogram.observe` and the mandatory
    trailing ``# EOF``.  Serve it under
    :data:`OPENMETRICS_CONTENT_TYPE`.
    """
    lines = _exposition(registry, exemplars=True)
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict[str, dict]:
    """Parse an exposition snapshot back into plain data.

    Returns ``{family_name: {"type": ..., "samples": [...]}}`` where
    each sample is ``{"name": ..., "labels": {...}, "value": float}``
    plus, when present, ``"exemplar": {"labels": {...}, "value":
    float}``.  ``# HELP`` strings land under the family's ``"help"``
    key (unescaped); the OpenMetrics ``# EOF`` terminator is accepted.
    Raises :class:`ValueError` on a malformed sample line, so a failed
    round-trip is loud.
    """
    families: dict[str, dict] = {}
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                families.setdefault(
                    parts[2], {"type": parts[3], "samples": []}
                )
            elif len(parts) >= 3 and parts[1] == "HELP":
                family = families.setdefault(
                    parts[2], {"type": "untyped", "samples": []}
                )
                family["help"] = _unescape_help(
                    parts[3] if len(parts) > 3 else ""
                )
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"malformed exposition line: {line!r}")
        name = match.group("name")
        labels = {
            key: _unescape_label_value(value)
            for key, value in _LABEL.findall(
                match.group("labels") or ""
            )
        }
        sample: dict = {
            "name": name,
            "labels": labels,
            "value": _parse_value(match.group("value")),
        }
        if match.group("exemplar_value") is not None:
            sample["exemplar"] = {
                "labels": {
                    key: _unescape_label_value(value)
                    for key, value in _LABEL.findall(
                        match.group("exemplar") or ""
                    )
                },
                "value": _parse_value(
                    match.group("exemplar_value")
                ),
            }
        # Histogram series (_bucket/_sum/_count) belong to their base
        # family when one was declared.
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                family = name[: -len(suffix)]
                break
        families.setdefault(
            family, {"type": "untyped", "samples": []}
        )["samples"].append(sample)
    return families
