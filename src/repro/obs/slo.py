"""Per-tenant SLOs with multi-window burn-rate alerting.

The serving core already emits every signal an SLO needs — request
outcomes, wall-clock latency, degradation flags — but PRs 1–7 left
their interpretation to whoever reads the metrics.  This module makes
the contract explicit: a declarative :class:`SLOSpec` per tenant and
objective, an :class:`SLOEngine` that folds the live request stream
into time-bucketed good/bad counts on the **injectable clock**
(RPR004: no wall-clock reads inside the engine), and the SRE-style
**multi-window burn-rate** evaluation:

* the *burn rate* is ``bad_fraction / error_budget`` — burning at 1.0
  exactly exhausts the budget over the SLO period; at 14.4 a 30-day
  99.9% budget is gone in two hours;
* one window is never enough — a long window alone alerts hours after
  the incident started, a short window alone pages on every blip — so
  each spec carries a **fast** window (default 5 min) and a **slow**
  window (default 1 h) with their own thresholds;
* the state machine is deliberately small: ``breach`` when *both*
  windows exceed their thresholds (the incident is real and current),
  ``warn`` when only one does (either just started or almost over),
  ``ok`` otherwise.

Three objectives cover the serving layer's failure modes:

``availability``
    Fraction of requests that complete without an error outcome
    (sheds, deadline misses, engine errors are all bad).
``latency_p99``
    Fraction of completed requests under ``latency_threshold_ms``.
    Expressing a percentile target as a good/bad fraction (target
    0.99 = "99% of requests are fast") keeps burn-rate math exact
    without streaming quantile sketches.
``degradation_rate``
    Fraction of answers produced by the *exact* kernel rather than a
    pruned/Monte-Carlo fallback of the resilience ladder.

States are exported as labelled gauges (``slo.state{slo=...,
tenant=...}`` ∈ {0 ok, 1 warn, 2 breach} plus the two burn rates), so
the admin plane's ``/metrics`` and ``/slo`` endpoints read the same
numbers an alerting pipeline would.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Mapping, Sequence

from repro.obs.metrics import get_registry

__all__ = [
    "OBJECTIVES",
    "SLOEngine",
    "SLOSpec",
    "SLOStatus",
    "parse_slo_specs",
]

#: Objectives a spec may target, with the record field each reads.
OBJECTIVES = ("availability", "latency_p99", "degradation_rate")

_STATE_VALUES = {"ok": 0, "warn": 1, "breach": 2}


@dataclass(frozen=True)
class SLOSpec:
    """One declarative objective for one tenant (or ``"*"`` for all).

    ``target`` is the good-fraction objective (0.99 = "99% good");
    the error budget is ``1 - target``.  ``latency_threshold_ms``
    is required for (and only meaningful to) ``latency_p99``.
    """

    name: str
    objective: str
    target: float
    tenant: str = "*"
    latency_threshold_ms: float | None = None
    fast_window_seconds: float = 300.0
    slow_window_seconds: float = 3600.0
    fast_burn_threshold: float = 14.0
    slow_burn_threshold: float = 2.0

    def __post_init__(self) -> None:
        if self.objective not in OBJECTIVES:
            known = ", ".join(OBJECTIVES)
            raise ValueError(
                f"unknown objective {self.objective!r} for SLO"
                f" {self.name!r}; expected one of {known}"
            )
        if not 0.0 < self.target < 1.0:
            raise ValueError(
                f"SLO {self.name!r} target must be in (0, 1),"
                f" got {self.target!r}"
            )
        if (
            self.objective == "latency_p99"
            and self.latency_threshold_ms is None
        ):
            raise ValueError(
                f"SLO {self.name!r}: latency_p99 requires"
                " latency_threshold_ms"
            )
        if not (
            0 < self.fast_window_seconds < self.slow_window_seconds
        ):
            raise ValueError(
                f"SLO {self.name!r}: windows must satisfy"
                " 0 < fast < slow, got"
                f" {self.fast_window_seconds!r} /"
                f" {self.slow_window_seconds!r}"
            )

    @property
    def error_budget(self) -> float:
        return 1.0 - self.target

    def is_bad(
        self,
        *,
        ok: bool,
        latency_seconds: float | None,
        degraded: bool,
    ) -> bool | None:
        """Classify one request; ``None`` means "not in scope".

        Latency objectives skip failed requests (their latency is the
        failure's, not the service's) — availability already charges
        them.
        """
        if self.objective == "availability":
            return not ok
        if self.objective == "latency_p99":
            if not ok or latency_seconds is None:
                return None
            assert self.latency_threshold_ms is not None
            return latency_seconds * 1000.0 > self.latency_threshold_ms
        return degraded


@dataclass(frozen=True)
class SLOStatus:
    """One spec's evaluation: counts, burn rates, state."""

    spec: SLOSpec
    state: str
    fast_burn: float
    slow_burn: float
    good: int
    bad: int

    def to_dict(self) -> dict:
        """Plain data for the ``/slo`` endpoint (deterministic keys)."""
        return {
            "name": self.spec.name,
            "tenant": self.spec.tenant,
            "objective": self.spec.objective,
            "target": self.spec.target,
            "state": self.state,
            "fast_burn": round(self.fast_burn, 6),
            "slow_burn": round(self.slow_burn, 6),
            "good": self.good,
            "bad": self.bad,
        }


@dataclass
class _Buckets:
    """Time-bucketed good/bad counts for one spec's slow window."""

    entries: deque = field(default_factory=deque)  # (bucket, good, bad)

    def add(self, bucket: int, good: int, bad: int) -> None:
        if self.entries and self.entries[-1][0] == bucket:
            last = self.entries[-1]
            self.entries[-1] = (bucket, last[1] + good, last[2] + bad)
        else:
            self.entries.append((bucket, good, bad))

    def evict_before(self, bucket: int) -> None:
        entries = self.entries
        while entries and entries[0][0] < bucket:
            entries.popleft()

    def totals_since(self, bucket: int) -> tuple[int, int]:
        good = bad = 0
        for entry_bucket, entry_good, entry_bad in self.entries:
            if entry_bucket >= bucket:
                good += entry_good
                bad += entry_bad
        return good, bad


class SLOEngine:
    """Folds the live request stream into per-spec burn-rate states.

    Single-threaded by design: the serving core calls
    :meth:`observe` from its event loop and the admin plane calls
    :meth:`evaluate` from the same loop, so there is no lock.  All
    time comes from ``clock`` (monotonic seconds); nothing here reads
    the wall clock.
    """

    def __init__(
        self,
        specs: Sequence[SLOSpec],
        *,
        clock: Callable[[], float],
        bucket_seconds: float = 10.0,
    ) -> None:
        if bucket_seconds <= 0:
            raise ValueError(
                f"bucket_seconds must be > 0, got {bucket_seconds!r}"
            )
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            dupes = sorted(
                {name for name in names if names.count(name) > 1}
            )
            raise ValueError(f"duplicate SLO spec names: {dupes}")
        self.specs = tuple(specs)
        self.bucket_seconds = bucket_seconds
        self._clock = clock
        self._buckets: dict[str, _Buckets] = {
            spec.name: _Buckets() for spec in self.specs
        }

    def _bucket(self, now: float) -> int:
        return int(now // self.bucket_seconds)

    def observe(
        self,
        tenant: str,
        *,
        ok: bool,
        latency_seconds: float | None = None,
        degraded: bool = False,
    ) -> None:
        """Fold one finished request into every matching spec."""
        now = self._clock()
        bucket = self._bucket(now)
        for spec in self.specs:
            if spec.tenant != "*" and spec.tenant != tenant:
                continue
            bad = spec.is_bad(
                ok=ok, latency_seconds=latency_seconds, degraded=degraded
            )
            if bad is None:
                continue
            buckets = self._buckets[spec.name]
            buckets.add(bucket, 0 if bad else 1, 1 if bad else 0)
            horizon = self._bucket(now - spec.slow_window_seconds)
            buckets.evict_before(horizon)

    @staticmethod
    def _burn(good: int, bad: int, budget: float) -> float:
        total = good + bad
        if total == 0:
            return 0.0
        return (bad / total) / budget

    def evaluate(self) -> list[SLOStatus]:
        """Burn rates and states for every spec, gauges updated.

        A spec with no traffic in its slow window is ``ok`` with zero
        burn — an idle tenant is not an incident.
        """
        now = self._clock()
        registry = get_registry()
        statuses: list[SLOStatus] = []
        for spec in self.specs:
            buckets = self._buckets[spec.name]
            slow_good, slow_bad = buckets.totals_since(
                self._bucket(now - spec.slow_window_seconds)
            )
            fast_good, fast_bad = buckets.totals_since(
                self._bucket(now - spec.fast_window_seconds)
            )
            fast_burn = self._burn(
                fast_good, fast_bad, spec.error_budget
            )
            slow_burn = self._burn(
                slow_good, slow_bad, spec.error_budget
            )
            fast_hot = fast_burn >= spec.fast_burn_threshold
            slow_hot = slow_burn >= spec.slow_burn_threshold
            if fast_hot and slow_hot:
                state = "breach"
            elif fast_hot or slow_hot:
                state = "warn"
            else:
                state = "ok"
            status = SLOStatus(
                spec=spec,
                state=state,
                fast_burn=fast_burn,
                slow_burn=slow_burn,
                good=slow_good,
                bad=slow_bad,
            )
            statuses.append(status)
            if registry.enabled:
                labels = {"slo": spec.name, "tenant": spec.tenant}
                registry.gauge("slo.state", labels).set(
                    _STATE_VALUES[state]
                )
                registry.gauge("slo.fast_burn", labels).set(
                    round(fast_burn, 6)
                )
                registry.gauge("slo.slow_burn", labels).set(
                    round(slow_burn, 6)
                )
        return statuses


def parse_slo_specs(source: str | Path | Iterable[Mapping]) -> list[SLOSpec]:
    """Load specs from JSON text, a JSON file path, or parsed dicts.

    The format is a JSON array of objects mirroring
    :class:`SLOSpec`'s fields::

        [{"name": "acme-latency", "tenant": "acme",
          "objective": "latency_p99", "target": 0.99,
          "latency_threshold_ms": 50}]

    Unknown keys raise (a typo'd threshold silently defaulting is how
    SLOs lie); so do duplicate names, handled by :class:`SLOEngine`.
    """
    if isinstance(source, Path):
        data = json.loads(source.read_text())
    elif isinstance(source, str):
        candidate = source.strip()
        if candidate.startswith("["):
            data = json.loads(candidate)
        else:
            data = json.loads(Path(source).read_text())
    else:
        data = list(source)
    if not isinstance(data, list):
        raise ValueError(
            "SLO specs must be a JSON array of objects,"
            f" got {type(data).__name__}"
        )
    allowed = {
        "name",
        "objective",
        "target",
        "tenant",
        "latency_threshold_ms",
        "fast_window_seconds",
        "slow_window_seconds",
        "fast_burn_threshold",
        "slow_burn_threshold",
    }
    specs: list[SLOSpec] = []
    for index, entry in enumerate(data):
        if not isinstance(entry, Mapping):
            raise ValueError(
                f"SLO spec #{index} is not an object: {entry!r}"
            )
        unknown = sorted(set(entry) - allowed)
        if unknown:
            raise ValueError(
                f"SLO spec #{index} has unknown keys: {unknown}"
            )
        specs.append(SLOSpec(**dict(entry)))
    return specs
