"""Process-local metrics: counters, gauges, and histogram timers.

The registry is the single collection point for everything the library
observes about itself — call counts, wall-clock timings, and the
paper's own cost metric, tuples accessed (Sections 5.2/6.2 motivate
pruning entirely through that count).  Two design rules keep it safe
to thread through the hot kernels:

* **Disabled means free.**  A disabled registry hands out shared no-op
  instruments and every recording helper checks ``registry.enabled``
  first, so the vectorized kernels pay at most one attribute load per
  *call* (never per tuple) when observability is off — which is the
  default.
* **Aggregates only.**  Histograms keep count/total/min/max plus a
  fixed set of log-spaced bucket counts rather than samples, so a
  million observations cost the same memory as one — while still
  supporting percentile estimates (p50/p95/p99) and the Prometheus
  ``_bucket`` exposition lines.

Enable collection explicitly (:func:`MetricsRegistry.enable`, the CLI
``--metrics-out`` flag) or ambiently via the ``REPRO_METRICS=1``
environment variable.
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_left
from time import perf_counter
from types import TracebackType
from typing import Mapping, Sequence

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_LABEL_CARDINALITY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "count",
    "get_registry",
    "metrics_enabled",
    "set_registry",
]

#: Distinct label sets one metric name may hold before further sets
#: are dropped (and counted in ``obs.dropped_labels``).  Tenant ids
#: arrive from the wire; without a cap a hostile workload could mint
#: one instrument per request and grow the registry without bound.
DEFAULT_LABEL_CARDINALITY = 64

#: Canonical form of a label mapping: sorted, hashable, immutable.
Labels = tuple[tuple[str, str], ...]


def _canonical_labels(labels: Mapping[str, str] | None) -> Labels:
    if not labels:
        return ()
    return tuple(
        (str(key), str(value))
        for key, value in sorted(labels.items())
    )


def _instrument_key(name: str, labels: Labels) -> str:
    """The registry key: ``name`` alone, or ``name{k="v",...}``."""
    if not labels:
        return name
    rendered = ",".join(f'{key}="{value}"' for key, value in labels)
    return f"{name}{{{rendered}}}"

#: Default histogram bucket upper bounds: doubling steps from 1 µs to
#: ~67 s (27 finite buckets plus the implicit overflow bucket).  Every
#: histogram this library records is a wall-clock duration in seconds,
#: so a fixed log-spaced ladder makes percentiles exact-enough (at
#: most one doubling of error) without storing samples.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    1e-6 * 2.0**exponent for exponent in range(27)
)


class Counter:
    """A monotonically adjusted total (use :meth:`reset` to zero it)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (default 1) to the running total."""
        self.value += amount

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = None


class _Timing:
    """Context manager that feeds elapsed seconds into a histogram."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: "Histogram") -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_Timing":
        self._start = perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        traceback: TracebackType | None,
    ) -> None:
        self._histogram.observe(perf_counter() - self._start)


class Histogram:
    """Aggregate distribution summary with fixed log-spaced buckets.

    Keeps count/total/min/max plus one integer per bucket — never the
    samples themselves — so memory is constant and ``observe`` is a
    handful of compares plus one binary search.  Bucket ``i`` counts
    samples with ``value <= buckets[i]`` (Prometheus ``le``
    semantics); one extra overflow bucket catches everything above the
    last bound.  :meth:`quantile` interpolates within the landing
    bucket and clamps to the observed ``[min, max]``, so percentile
    estimates are off by at most one bucket width.

    Via ``observe``'s ``exemplar`` keyword a sample can carry a tiny
    label set (typically ``{"trace_id": ...}``), remembered per
    landing bucket, last-write-wins.  The OpenMetrics export renders
    exemplars after their ``_bucket`` lines — that is how a latency
    histogram on a dashboard links straight to a recent concrete
    trace.  Exemplars cost one dict entry per bucket at most, and
    nothing at all when never provided.
    """

    __slots__ = (
        "name",
        "labels",
        "count",
        "total",
        "min",
        "max",
        "buckets",
        "_bucket_counts",
        "_exemplars",
    )

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] | None = None,
        labels: Labels = (),
    ) -> None:
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.buckets: tuple[float, ...] = (
            DEFAULT_BUCKETS
            if buckets is None
            else tuple(sorted(buckets))
        )
        self._bucket_counts = [0] * (len(self.buckets) + 1)
        self._exemplars: dict[int, tuple[Labels, float]] = {}

    def observe(
        self,
        value: float,
        *,
        exemplar: Mapping[str, str] | None = None,
    ) -> None:
        """Record one sample, optionally tagged with an exemplar."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = bisect_left(self.buckets, value)
        self._bucket_counts[index] += 1
        if exemplar:
            self._exemplars[index] = (
                _canonical_labels(exemplar),
                value,
            )

    def exemplars(self) -> dict[int, tuple[Labels, float]]:
        """Per-bucket-index ``(labels, value)`` exemplars recorded."""
        return dict(self._exemplars)

    def time(self) -> _Timing:
        """``with histogram.time(): ...`` records the block's seconds."""
        return _Timing(self)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, Prometheus-style.

        The last pair's bound is ``inf`` and its count equals
        :attr:`count` — exactly the ``le="+Inf"`` exposition line.
        """
        pairs: list[tuple[float, int]] = []
        cumulative = 0
        for bound, bucket_count in zip(
            self.buckets, self._bucket_counts
        ):
            cumulative += bucket_count
            pairs.append((bound, cumulative))
        pairs.append((float("inf"), self.count))
        return pairs

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the bucket counts.

        Linear interpolation within the landing bucket (uniform
        assumption), clamped to the observed extremes; an empty
        histogram answers 0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if not self.count:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, in_bucket in enumerate(self._bucket_counts):
            if not in_bucket:
                continue
            previous = cumulative
            cumulative += in_bucket
            if cumulative >= target:
                lower = self.buckets[index - 1] if index else 0.0
                upper = (
                    self.buckets[index]
                    if index < len(self.buckets)
                    else self.max
                )
                fraction = (target - previous) / in_bucket
                estimate = lower + (upper - lower) * min(
                    1.0, max(0.0, fraction)
                )
                return min(max(estimate, self.min), self.max)
        return self.max  # pragma: no cover - defensive

    def percentiles(self) -> dict[str, float]:
        """The conventional p50/p95/p99 trio, from the buckets."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._bucket_counts = [0] * (len(self.buckets) + 1)
        self._exemplars.clear()

    def summary(self) -> dict[str, float]:
        """The aggregates as a plain dict (empty histogram -> zeros)."""
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            **self.percentiles(),
        }


class _NullContext:
    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


class _NullCounter:
    """Shared do-nothing counter handed out by a disabled registry."""

    __slots__ = ()
    name = "<disabled>"
    labels: tuple = ()
    value = 0

    def inc(self, amount: float = 1) -> None:
        return None

    def reset(self) -> None:
        return None


class _NullGauge:
    __slots__ = ()
    name = "<disabled>"
    labels: tuple = ()
    value = None

    def set(self, value: float) -> None:
        return None

    def reset(self) -> None:
        return None


class _NullHistogram:
    __slots__ = ()
    name = "<disabled>"
    labels: tuple = ()
    count = 0
    total = 0.0
    min = 0.0
    max = 0.0
    mean = 0.0
    buckets: tuple[float, ...] = ()

    def observe(
        self,
        value: float,
        *,
        exemplar: Mapping[str, str] | None = None,
    ) -> None:
        return None

    def exemplars(self) -> dict:
        return {}

    def time(self) -> _NullContext:
        return _NULL_CONTEXT

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        return [(float("inf"), 0)]

    def quantile(self, q: float) -> float:
        return 0.0

    def percentiles(self) -> dict[str, float]:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def reset(self) -> None:
        return None

    def summary(self) -> dict[str, float]:
        return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}


_NULL_CONTEXT = _NullContext()
_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Create-or-get instruments by name; snapshot them as plain data.

    Instrument creation is locked (safe under threads); recording is a
    plain ``+=`` — the registry is process-local and best-effort by
    design, matching its benchmark/diagnostic purpose.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        label_cardinality: int = DEFAULT_LABEL_CARDINALITY,
    ) -> None:
        if label_cardinality < 1:
            raise ValueError(
                "label_cardinality must be >= 1, got "
                f"{label_cardinality!r}"
            )
        self.enabled = enabled
        self.label_cardinality = label_cardinality
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        #: Distinct label sets seen per metric name, across kinds.
        self._label_sets: dict[str, set[Labels]] = {}
        self._help: dict[str, str] = {}

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def describe(self, name: str, help_text: str) -> None:
        """Attach a ``# HELP`` string to the metric called ``name``.

        The export escapes it per the exposition format; describing a
        metric never creates an instrument.
        """
        with self._lock:
            self._help[name] = help_text

    def help_texts(self) -> dict[str, str]:
        """All registered help strings, keyed by metric name."""
        with self._lock:
            return dict(self._help)

    def _admit_labels(self, name: str, labels: Labels) -> bool:
        """Whether this ``(name, labels)`` pair may create an instrument.

        Caps distinct label sets per metric name at
        :attr:`label_cardinality`; beyond it the observation is
        dropped and tallied in ``obs.dropped_labels`` so the loss is
        itself observable.  Must be called with the lock held.
        """
        seen = self._label_sets.setdefault(name, set())
        if labels in seen:
            return True
        if len(seen) >= self.label_cardinality:
            dropped = self._counters.get("obs.dropped_labels")
            if dropped is None:
                dropped = self._counters.setdefault(
                    "obs.dropped_labels", Counter("obs.dropped_labels")
                )
            dropped.inc()
            return False
        seen.add(labels)
        return True

    def counter(
        self,
        name: str,
        labels: Mapping[str, str] | None = None,
    ) -> Counter:
        """The counter called ``name`` (a shared no-op when disabled)."""
        if not self.enabled:
            return _NULL_COUNTER  # type: ignore[return-value]
        canonical = _canonical_labels(labels)
        key = _instrument_key(name, canonical)
        instrument = self._counters.get(key)
        if instrument is None:
            with self._lock:
                if canonical and not self._admit_labels(
                    name, canonical
                ):
                    return _NULL_COUNTER  # type: ignore[return-value]
                instrument = self._counters.setdefault(
                    key, Counter(name, canonical)
                )
        return instrument

    def gauge(
        self,
        name: str,
        labels: Mapping[str, str] | None = None,
    ) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE  # type: ignore[return-value]
        canonical = _canonical_labels(labels)
        key = _instrument_key(name, canonical)
        instrument = self._gauges.get(key)
        if instrument is None:
            with self._lock:
                if canonical and not self._admit_labels(
                    name, canonical
                ):
                    return _NULL_GAUGE  # type: ignore[return-value]
                instrument = self._gauges.setdefault(
                    key, Gauge(name, canonical)
                )
        return instrument

    def histogram(
        self,
        name: str,
        labels: Mapping[str, str] | None = None,
    ) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM  # type: ignore[return-value]
        canonical = _canonical_labels(labels)
        key = _instrument_key(name, canonical)
        instrument = self._histograms.get(key)
        if instrument is None:
            with self._lock:
                if canonical and not self._admit_labels(
                    name, canonical
                ):
                    return _NULL_HISTOGRAM  # type: ignore[return-value]
                instrument = self._histograms.setdefault(
                    key, Histogram(name, labels=canonical)
                )
        return instrument

    def timer(self, name: str) -> _Timing | _NullContext:
        """``with registry.timer("x"): ...`` — histogram sugar."""
        if not self.enabled:
            return _NULL_CONTEXT
        return self.histogram(name).time()

    def snapshot(self) -> dict[str, dict]:
        """All instruments as one JSON-serialisable dict."""
        with self._lock:
            return {
                "counters": {
                    name: instrument.value
                    for name, instrument in sorted(self._counters.items())
                },
                "gauges": {
                    name: instrument.value
                    for name, instrument in sorted(self._gauges.items())
                },
                "histograms": {
                    name: instrument.summary()
                    for name, instrument in sorted(
                        self._histograms.items()
                    )
                },
            }

    def to_prometheus(self) -> str:
        """The registry in Prometheus text exposition format.

        Delegates to :func:`repro.obs.export.to_prometheus`; see that
        module for the naming and formatting contract.
        """
        from repro.obs.export import to_prometheus

        return to_prometheus(self)

    def reset(self) -> None:
        """Zero every instrument (names and identities survive)."""
        with self._lock:
            for counter in self._counters.values():
                counter.reset()
            for gauge in self._gauges.values():
                gauge.reset()
            for histogram in self._histograms.values():
                histogram.reset()


_registry = MetricsRegistry(
    enabled=bool(os.environ.get("REPRO_METRICS"))
)


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry; returns the previous one."""
    global _registry
    previous = _registry
    _registry = registry
    return previous


def metrics_enabled() -> bool:
    """Whether the default registry is currently recording."""
    return _registry.enabled


def count(
    name: str,
    amount: float = 1,
    labels: Mapping[str, str] | None = None,
) -> None:
    """Add to a default-registry counter; free when disabled."""
    registry = _registry
    if registry.enabled:
        registry.counter(name, labels).inc(amount)
