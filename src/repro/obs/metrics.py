"""Process-local metrics: counters, gauges, and histogram timers.

The registry is the single collection point for everything the library
observes about itself — call counts, wall-clock timings, and the
paper's own cost metric, tuples accessed (Sections 5.2/6.2 motivate
pruning entirely through that count).  Two design rules keep it safe
to thread through the hot kernels:

* **Disabled means free.**  A disabled registry hands out shared no-op
  instruments and every recording helper checks ``registry.enabled``
  first, so the vectorized kernels pay at most one attribute load per
  *call* (never per tuple) when observability is off — which is the
  default.
* **Aggregates only.**  Histograms keep count/total/min/max rather
  than samples, so a million observations cost the same memory as one.

Enable collection explicitly (:func:`MetricsRegistry.enable`, the CLI
``--metrics-out`` flag) or ambiently via the ``REPRO_METRICS=1``
environment variable.
"""

from __future__ import annotations

import os
import threading
from time import perf_counter
from types import TracebackType

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "count",
    "get_registry",
    "metrics_enabled",
    "set_registry",
]


class Counter:
    """A monotonically adjusted total (use :meth:`reset` to zero it)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (default 1) to the running total."""
        self.value += amount

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = value

    def reset(self) -> None:
        self.value = None


class _Timing:
    """Context manager that feeds elapsed seconds into a histogram."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: "Histogram") -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_Timing":
        self._start = perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        traceback: TracebackType | None,
    ) -> None:
        self._histogram.observe(perf_counter() - self._start)


class Histogram:
    """Aggregate distribution summary: count, total, min, max, mean."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def time(self) -> _Timing:
        """``with histogram.time(): ...`` records the block's seconds."""
        return _Timing(self)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def summary(self) -> dict[str, float]:
        """The aggregates as a plain dict (empty histogram -> zeros)."""
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class _NullContext:
    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


class _NullCounter:
    """Shared do-nothing counter handed out by a disabled registry."""

    __slots__ = ()
    name = "<disabled>"
    value = 0

    def inc(self, amount: float = 1) -> None:
        return None

    def reset(self) -> None:
        return None


class _NullGauge:
    __slots__ = ()
    name = "<disabled>"
    value = None

    def set(self, value: float) -> None:
        return None

    def reset(self) -> None:
        return None


class _NullHistogram:
    __slots__ = ()
    name = "<disabled>"
    count = 0
    total = 0.0
    min = 0.0
    max = 0.0
    mean = 0.0

    def observe(self, value: float) -> None:
        return None

    def time(self) -> _NullContext:
        return _NULL_CONTEXT

    def reset(self) -> None:
        return None

    def summary(self) -> dict[str, float]:
        return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                "mean": 0.0}


_NULL_CONTEXT = _NullContext()
_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Create-or-get instruments by name; snapshot them as plain data.

    Instrument creation is locked (safe under threads); recording is a
    plain ``+=`` — the registry is process-local and best-effort by
    design, matching its benchmark/diagnostic purpose.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (a shared no-op when disabled)."""
        if not self.enabled:
            return _NULL_COUNTER  # type: ignore[return-value]
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(name, Counter(name))
        return instrument

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NULL_GAUGE  # type: ignore[return-value]
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(name, Gauge(name))
        return instrument

    def histogram(self, name: str) -> Histogram:
        if not self.enabled:
            return _NULL_HISTOGRAM  # type: ignore[return-value]
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(
                    name, Histogram(name)
                )
        return instrument

    def timer(self, name: str) -> _Timing | _NullContext:
        """``with registry.timer("x"): ...`` — histogram sugar."""
        if not self.enabled:
            return _NULL_CONTEXT
        return self.histogram(name).time()

    def snapshot(self) -> dict[str, dict]:
        """All instruments as one JSON-serialisable dict."""
        with self._lock:
            return {
                "counters": {
                    name: instrument.value
                    for name, instrument in sorted(self._counters.items())
                },
                "gauges": {
                    name: instrument.value
                    for name, instrument in sorted(self._gauges.items())
                },
                "histograms": {
                    name: instrument.summary()
                    for name, instrument in sorted(
                        self._histograms.items()
                    )
                },
            }

    def reset(self) -> None:
        """Zero every instrument (names and identities survive)."""
        with self._lock:
            for counter in self._counters.values():
                counter.reset()
            for gauge in self._gauges.values():
                gauge.reset()
            for histogram in self._histograms.values():
                histogram.reset()


_registry = MetricsRegistry(
    enabled=bool(os.environ.get("REPRO_METRICS"))
)


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry; returns the previous one."""
    global _registry
    previous = _registry
    _registry = registry
    return previous


def metrics_enabled() -> bool:
    """Whether the default registry is currently recording."""
    return _registry.enabled


def count(name: str, amount: float = 1) -> None:
    """Add to a default-registry counter; free when disabled."""
    registry = _registry
    if registry.enabled:
        registry.counter(name).inc(amount)
