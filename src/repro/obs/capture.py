"""Workload capture: a durable JSONL record of every executed query.

A :class:`CaptureLog` appends one JSON object per ranking query — the
dataset's content digest, the request (``k``/method/options), what
actually ran (plan, trace id, tuples accessed, wall time, retry and
degradation outcomes), and a stable digest of the ranked answer.  The
resulting file is the unit of reproducibility: :mod:`repro.obs.replay`
re-runs it against the current code and diffs the digests, and
:mod:`repro.obs.report` aggregates it into a session report.

Capture is ambient, like the span sink: install a log with
:func:`set_capture` (the CLI's ``--capture-out`` does this per
invocation) and every query that flows through
``ProbabilisticDatabase.topk``, a
:class:`~repro.engine.query.ResilientExecutor`, or the ``topk`` CLI
records itself.  Nested layers claim the capture point through
:func:`query_capture`, outermost wins, so one query is never recorded
twice.  With no log installed the whole machinery is one ``None``
check per query.
"""

from __future__ import annotations

import hashlib
import json
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import IO, TYPE_CHECKING, Iterator, Mapping

from repro.obs.explain import _json_safe
from repro.obs.metrics import count
from repro.obs.trace import JsonlSink, current_trace_id

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.result import TopKResult
    from repro.engine.query import ResilientExecutor
    from repro.models.attribute import AttributeLevelRelation
    from repro.models.tuple_level import TupleLevelRelation

    Relation = AttributeLevelRelation | TupleLevelRelation

__all__ = [
    "CAPTURE_SCHEMA_VERSION",
    "CaptureLog",
    "answer_digest",
    "get_capture",
    "query_capture",
    "read_jsonl",
    "relation_digest",
    "resilience_config",
    "set_capture",
]

#: Bumped on breaking changes to the capture record layout.
CAPTURE_SCHEMA_VERSION = 1

#: Significant digits a statistic keeps inside :func:`answer_digest`.
#: Coarse enough that cross-platform ulp noise never flips a digest,
#: fine enough that a real behavioural change always does.
_DIGEST_PRECISION = 9


def relation_digest(relation: "Relation") -> str:
    """Stable 16-hex content digest of a relation.

    Hashes the canonical JSON document of
    :func:`repro.engine.io.relation_document`, so the digest survives
    save/load round-trips and identifies the *data*, not the object.
    """
    from repro.engine.io import relation_document

    payload = json.dumps(
        relation_document(relation), sort_keys=True
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def answer_digest(result: "TopKResult") -> str:
    """Stable 16-hex digest of a ranked answer.

    Covers the tuple ids in rank order plus each reported statistic
    rounded to :data:`_DIGEST_PRECISION` significant digits — two
    replays agree iff they ranked the same tuples in the same order
    with the same (to rounding) statistics.
    """
    payload = json.dumps(
        [
            [
                item.tid,
                None
                if item.statistic is None
                else float(f"{item.statistic:.{_DIGEST_PRECISION}g}"),
            ]
            for item in result
        ]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def resilience_config(
    executor: "ResilientExecutor | None",
) -> dict | None:
    """A replayable description of an executor's configuration.

    Everything :func:`repro.obs.replay.replay_capture` needs to
    rebuild an identical degradation ladder: retry policy, deadline,
    Monte-Carlo budget, the shared seed, and — when a chaos injector
    is attached — its rates, seed, and budget.
    """
    if executor is None:
        return None
    config: dict = {
        "deadline_ms": executor.deadline_ms,
        "max_retries": executor.retry.max_retries,
        "base_delay": executor.retry.base_delay,
        "max_delay": executor.retry.max_delay,
        "seed": executor.seed,
        "mc_batch": executor.mc_batch,
        "mc_max_samples": executor.mc_max_samples,
    }
    injector = executor.injector
    if injector is not None:
        config["injector"] = {
            "error_rate": injector.error_rate,
            "latency_rate": injector.latency_rate,
            "latency_seconds": injector.latency_seconds,
            "corrupt_rate": injector.corrupt_rate,
            "drop_rate": injector.drop_rate,
            "seed": injector.seed,
            "fault_budget": injector.fault_budget,
        }
    return config


def _plain_json(value: object) -> bool:
    """Whether ``value`` is natively JSON (no lossy repr coercion)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return True
    if isinstance(value, Mapping):
        return all(
            isinstance(key, str) and _plain_json(item)
            for key, item in value.items()
        )
    if isinstance(value, (list, tuple)):
        return all(_plain_json(item) for item in value)
    return False


class CaptureLog:
    """Append-only JSONL log of executed queries.

    Wraps a :class:`~repro.obs.trace.JsonlSink` (same locking, same
    optional ``max_bytes`` truncation cap) and stamps each record with
    a sequence number and ``schema_version``.
    """

    def __init__(
        self,
        target: Path | str | IO[str],
        *,
        max_bytes: int | None = None,
    ) -> None:
        self._sink = JsonlSink(target, max_bytes=max_bytes)
        self._next_seq = 0

    @property
    def records_written(self) -> int:
        """Queries recorded so far (including any the cap dropped)."""
        return self._next_seq

    @property
    def truncated(self) -> bool:
        """Whether the underlying sink's byte cap has tripped."""
        return self._sink.truncated

    def record_query(
        self,
        relation: "Relation",
        result: "TopKResult",
        *,
        k: int,
        method: str,
        options: Mapping[str, object] | None = None,
        wall_seconds: float | None = None,
        relation_name: str | None = None,
        executor: "ResilientExecutor | None" = None,
        trace_id: str | None = None,
        annotations: Mapping[str, object] | None = None,
    ) -> dict:
        """Append one executed query; returns the written record.

        ``annotations`` is a free-form extension point for layers
        above the engine: the serving core marks coalesced requests
        here (tenant, shared leader trace id), keeping the core record
        layout stable.
        """
        from repro.models.attribute import AttributeLevelRelation

        options = dict(options or {})
        metadata = dict(result.metadata)
        accessed = metadata.get("tuples_accessed")
        degraded = bool(metadata.get("degraded", False))
        resilience = resilience_config(executor)
        if trace_id is None:
            trace_id = metadata.get("trace_id") or current_trace_id()
        if degraded:
            reason = (
                "degradation ladder answered with "
                f"{result.method!r}"
            )
        elif metadata.get("resilient"):
            reason = "degradation ladder answered at the exact rung"
        elif result.method != method:
            reason = "planner routed to a pruned variant"
        else:
            reason = "direct execution of the requested method"
        # A record replays faithfully only when its options are
        # natively JSON and any sampling is seeded (the executor seeds
        # its Monte-Carlo rung; a bare monte_carlo query is not).
        replayable = _plain_json(options) and (
            method != "monte_carlo" or executor is not None
        )
        record = {
            "type": "query",
            "schema_version": CAPTURE_SCHEMA_VERSION,
            "seq": self._next_seq,
            "relation": relation_name,
            "model": (
                "attribute"
                if isinstance(relation, AttributeLevelRelation)
                else "tuple"
            ),
            "n": relation.size,
            "dataset_digest": relation_digest(relation),
            "k": k,
            "method": method,
            "options": _json_safe(options),
            "replayable": replayable,
            "plan": {"method": result.method, "reason": reason},
            "trace_id": trace_id,
            "wall_seconds": wall_seconds,
            "tuples_accessed": (
                int(accessed) if accessed is not None else None
            ),
            "answer": list(result.tids()),
            "answer_digest": answer_digest(result),
            "degraded": degraded,
            "fallback_method": (
                str(metadata["fallback_method"]) if degraded else None
            ),
            "attempts": metadata.get("attempts"),
            "faults_survived": metadata.get("faults_survived"),
            "faults_injected": metadata.get("faults_injected"),
            "gf_fallback": bool(metadata.get("gf_fallback", False)),
            "resilience": resilience,
        }
        if annotations:
            record["annotations"] = _json_safe(dict(annotations))
        self._next_seq += 1
        self._sink.write(record)
        count("obs.capture.records")
        return record

    def close(self) -> None:
        self._sink.close()

    def __enter__(self) -> "CaptureLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


_capture: CaptureLog | None = None
_claimed: ContextVar[bool] = ContextVar(
    "repro_capture_claimed", default=False
)


def get_capture() -> CaptureLog | None:
    """The ambient capture log, if one is installed."""
    return _capture


def set_capture(log: CaptureLog | None) -> CaptureLog | None:
    """Install (or clear) the ambient log; returns the previous one."""
    global _capture
    previous = _capture
    _capture = log
    return previous


@contextmanager
def query_capture() -> Iterator[CaptureLog | None]:
    """Claim the capture point for one query; outermost claim wins.

    Yields the ambient :class:`CaptureLog` to exactly one layer of a
    nested execution (``db.topk`` → executor → plan), and ``None`` to
    every layer beneath it — so a query is recorded once, by the
    layer closest to the caller.  Yields ``None`` everywhere when no
    log is installed.
    """
    log = _capture
    if log is None or _claimed.get():
        yield None
        return
    token = _claimed.set(True)
    try:
        yield log
    finally:
        _claimed.reset(token)


def read_jsonl(path: Path | str) -> tuple[list[dict], list[str]]:
    """Read a JSONL file, skipping malformed lines instead of raising.

    Returns ``(records, problems)``: every line that parsed to a JSON
    object, plus one human-readable description per line that did not
    (truncated writes, partial lines, non-object payloads).  Blank
    lines are ignored silently.  The capture/trace consumers —
    ``repro replay``, ``repro report``, ``repro chrome-trace`` — treat
    a non-empty ``problems`` list as "warn and exit 12", never as a
    crash: a half-written observability file should degrade the
    report, not destroy it.

    :class:`OSError` (missing file, unreadable path) still propagates
    — there is nothing to salvage from no file at all.
    """
    records: list[dict] = []
    problems: list[str] = []
    text = Path(path).read_text()
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            problems.append(
                f"line {number}: invalid JSON ({error.msg})"
            )
            continue
        if not isinstance(record, dict):
            problems.append(
                f"line {number}: expected an object, got "
                f"{type(record).__name__}"
            )
            continue
        records.append(record)
    return records, problems
