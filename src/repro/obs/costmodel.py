"""The calibrated planner cost model: per-kernel coefficients.

The paper's efficiency argument (Sections 6-7) is a *cost* argument:
the exact expected-rank pass is ``O(N log N)``, the median/quantile
generating-function engine pays ``O(N^2)`` coefficient work, and the
pruned sorted-access variants touch a data-dependent prefix.  Until
now those costs lived only in ``docs/kernels.md`` and the bench
suite; this module turns them into numbers the planner can consume.

A :class:`CostModel` holds one fitted coefficient per kernel family
(seconds per complexity unit) plus a prefix ratio per pruned kernel
(observed tuples accessed relative to ``k log2 n``).  Coefficients
are *calibrated*, not assumed: :func:`fit_cost_model` regresses them
from ``BENCH_history.jsonl`` entries (metric names like
``a_erank/uu/n=2000/seconds``) and/or capture-log query records, and
``repro calibrate`` persists the result as versioned JSON.

Given a query, :meth:`CostModel.estimate` returns a
:class:`CostEstimate` — predicted tuples accessed, the kernel's
complexity term, and predicted seconds split into kernel time and
access time — which :class:`~repro.engine.query.TopKPlanner` uses to
rank candidate plans and :class:`~repro.obs.costs.CostLedger` keeps
next to the measured actuals.  A missing coefficient yields ``None``
and the planner falls back to its static heuristic, so an uncalibrated
process behaves exactly as before.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping

__all__ = [
    "COST_MODEL_SCHEMA_VERSION",
    "CostEstimate",
    "CostModel",
    "fit_cost_model",
    "parse_metric_name",
]

#: Bumped on breaking changes to the persisted coefficient layout.
COST_MODEL_SCHEMA_VERSION = 1

#: Default predicted seconds per tuple access when the planner declares
#: access expensive (remote/on-disk data).  Deliberately conservative:
#: one access ~ a fast network round trip, so pruned scans keep winning
#: under expensive access unless the kernel term dominates outright.
DEFAULT_EXPENSIVE_ACCESS_SECONDS = 1e-4


def _units_nlogn(n: int) -> float:
    return n * math.log2(max(n, 2))


def _units_quadratic(n: int) -> float:
    return float(n) * float(n)


#: Kernel families the model can be calibrated for, keyed by
#: ``(relation model, method)``.  Each entry names the bench kernel the
#: coefficient is fitted from and the complexity-unit function from the
#: ``docs/kernels.md`` table.  Pruned methods reuse their exact twin's
#: per-unit coefficient over a predicted prefix instead of ``n``.
_KERNELS: dict[tuple[str, str], tuple[str, str]] = {
    ("attribute", "expected_rank"): ("a_erank", "nlogn"),
    ("tuple", "expected_rank"): ("t_erank", "nlogn"),
    ("attribute", "median_rank"): ("a_mqrank_gf", "quadratic"),
    ("attribute", "quantile_rank"): ("a_mqrank_gf", "quadratic"),
    ("tuple", "median_rank"): ("t_mqrank_gf", "quadratic"),
    ("tuple", "quantile_rank"): ("t_mqrank_gf", "quadratic"),
    ("attribute", "expected_rank_prune"): ("a_erank", "nlogn"),
    ("tuple", "expected_rank_prune"): ("t_erank", "nlogn"),
    ("attribute", "quantile_rank_prune"): (
        "a_mqrank_gf",
        "quadratic",
    ),
    ("tuple", "quantile_rank_prune"): ("t_mqrank_gf", "quadratic"),
}

#: Bench prune kernels feeding the prefix-ratio fit, keyed by the
#: ``(relation model, pruned method)`` they inform.
_PRUNE_KERNELS: dict[str, tuple[str, str]] = {
    "a_erank_prune": ("attribute", "expected_rank_prune"),
    "t_erank_prune": ("tuple", "expected_rank_prune"),
    "a_mqrank_prune": ("attribute", "quantile_rank_prune"),
    "t_mqrank_prune": ("tuple", "quantile_rank_prune"),
}

_UNIT_FUNCTIONS = {
    "nlogn": _units_nlogn,
    "quadratic": _units_quadratic,
}

#: Methods whose cost estimate runs over a predicted prefix, not ``n``.
_PRUNED_METHODS = frozenset(
    {"expected_rank_prune", "quantile_rank_prune"}
)


@dataclass(frozen=True)
class CostEstimate:
    """The planner's predicted cost for one candidate plan.

    ``kernel_seconds`` is ``units * seconds_per_unit`` from the
    calibrated coefficient; ``access_seconds`` prices the predicted
    ``tuples`` accesses under the planner's declared access cost.
    ``total_seconds`` is what candidate plans are ranked by.
    """

    method: str
    kernel: str
    units: float
    tuples: int
    kernel_seconds: float
    access_seconds: float
    model_version: int = COST_MODEL_SCHEMA_VERSION

    @property
    def total_seconds(self) -> float:
        return self.kernel_seconds + self.access_seconds

    def to_dict(self) -> dict:
        return {
            "method": self.method,
            "kernel": self.kernel,
            "units": self.units,
            "tuples": self.tuples,
            "kernel_seconds": self.kernel_seconds,
            "access_seconds": self.access_seconds,
            "total_seconds": self.total_seconds,
            "model_version": self.model_version,
        }


def parse_metric_name(name: str) -> dict | None:
    """Decompose a bench metric name into its structured parts.

    ``a_erank/uu/n=2000/seconds`` →
    ``{"kernel": "a_erank", "workload": "uu", "n": 2000, "k": None,
    "kind": "seconds"}``; returns ``None`` for names outside the
    convention (the fit skips them instead of guessing).
    """
    parts = name.split("/")
    if len(parts) < 4:
        return None
    kernel, workload = parts[0], parts[1]
    kind = parts[-1]
    n = None
    k = None
    for part in parts[2:-1]:
        key, _, value = part.partition("=")
        if not value or not value.isdigit():
            return None
        if key == "n":
            n = int(value)
        elif key == "k":
            k = int(value)
    if n is None or kind not in ("seconds", "tuples_accessed"):
        return None
    return {
        "kernel": kernel,
        "workload": workload,
        "n": n,
        "k": k,
        "kind": kind,
    }


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


class CostModel:
    """Calibrated per-kernel cost coefficients.

    Parameters
    ----------
    kernels:
        ``{kernel: {"seconds_per_unit": ..., "observations": ...}}``
        for exact kernels, plus ``{"prefix_ratio": ...}`` entries for
        pruned kernels (the observed accessed-prefix length relative
        to ``k * log2(n)``).
    expensive_access_seconds:
        Predicted seconds charged per tuple access when the planner
        declares access expensive; ``0.0`` is charged when cheap.
    fitted_from:
        Provenance strings (file paths, commits) for the report
        header and the persisted JSON.
    """

    def __init__(
        self,
        kernels: Mapping[str, Mapping[str, float]] | None = None,
        *,
        expensive_access_seconds: float = (
            DEFAULT_EXPENSIVE_ACCESS_SECONDS
        ),
        fitted_from: Iterable[str] = (),
        schema_version: int = COST_MODEL_SCHEMA_VERSION,
    ) -> None:
        self.kernels = {
            str(name): dict(entry)
            for name, entry in (kernels or {}).items()
        }
        self.expensive_access_seconds = float(
            expensive_access_seconds
        )
        self.fitted_from = tuple(str(item) for item in fitted_from)
        self.schema_version = int(schema_version)

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def predicted_prefix(
        self, model: str, method: str, n: int, k: int
    ) -> int:
        """Tuples a pruned scan is predicted to touch.

        ``ratio * k * log2(n)`` with the ratio calibrated from bench
        prune counts (default 1.0), clamped into ``[k + 1, n]`` — a
        pruned scan must read at least the answer plus one stopping
        witness and can never exceed the relation.
        """
        kernel, _ = _KERNELS[(model, method)]
        entry = self.kernels.get(f"{kernel}_prune", {})
        ratio = float(entry.get("prefix_ratio", 1.0))
        predicted = ratio * max(k, 1) * math.log2(max(n, 2))
        return max(min(n, int(math.ceil(predicted))), min(n, k + 1))

    def estimate(
        self,
        model: str,
        method: str,
        n: int,
        k: int,
        *,
        expensive_access: bool = False,
    ) -> CostEstimate | None:
        """Predicted cost of running ``method``, or ``None``.

        ``None`` means the model has no calibrated coefficient for the
        kernel this query would run — the planner then falls back to
        its static heuristic rather than trusting a made-up number.
        """
        key = (model, method)
        if key not in _KERNELS:
            return None
        kernel, units_name = _KERNELS[key]
        entry = self.kernels.get(kernel)
        if entry is None or "seconds_per_unit" not in entry:
            return None
        if method in _PRUNED_METHODS:
            tuples = self.predicted_prefix(model, method, n, k)
        else:
            tuples = n
        units = _UNIT_FUNCTIONS[units_name](tuples)
        access_seconds = (
            tuples * self.expensive_access_seconds
            if expensive_access
            else 0.0
        )
        return CostEstimate(
            method=method,
            kernel=kernel,
            units=units,
            tuples=tuples,
            kernel_seconds=units * float(entry["seconds_per_unit"]),
            access_seconds=access_seconds,
            model_version=self.schema_version,
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_document(self) -> dict:
        """The versioned JSON document ``repro calibrate`` writes."""
        return {
            "schema": self.schema_version,
            "kind": "repro-cost-model",
            "fitted_from": list(self.fitted_from),
            "expensive_access_seconds": (
                self.expensive_access_seconds
            ),
            "kernels": {
                name: dict(entry)
                for name, entry in sorted(self.kernels.items())
            },
        }

    @classmethod
    def from_document(cls, document: Mapping) -> "CostModel":
        if document.get("kind") != "repro-cost-model":
            raise ValueError(
                "not a cost-model document (kind="
                f"{document.get('kind')!r})"
            )
        schema = document.get("schema")
        if schema != COST_MODEL_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported cost-model schema {schema!r} "
                f"(this build reads {COST_MODEL_SCHEMA_VERSION})"
            )
        return cls(
            document.get("kernels", {}),
            expensive_access_seconds=float(
                document.get(
                    "expensive_access_seconds",
                    DEFAULT_EXPENSIVE_ACCESS_SECONDS,
                )
            ),
            fitted_from=document.get("fitted_from", ()),
            schema_version=int(schema),
        )

    def save(self, path: Path | str) -> None:
        Path(path).write_text(
            json.dumps(self.to_document(), indent=2, sort_keys=True)
            + "\n"
        )

    @classmethod
    def load(cls, path: Path | str) -> "CostModel":
        return cls.from_document(
            json.loads(Path(path).read_text())
        )

    def describe(self) -> str:
        """A terminal rendering of the fitted coefficients."""
        lines = [
            f"cost model v{self.schema_version} "
            f"({len(self.kernels)} kernels)"
        ]
        for name in sorted(self.kernels):
            entry = self.kernels[name]
            parts = []
            if "seconds_per_unit" in entry:
                parts.append(
                    f"seconds_per_unit={entry['seconds_per_unit']:.3e}"
                )
            if "prefix_ratio" in entry:
                parts.append(
                    f"prefix_ratio={entry['prefix_ratio']:.3f}"
                )
            parts.append(
                f"observations={int(entry.get('observations', 0))}"
            )
            lines.append(f"  {name}: {' '.join(parts)}")
        if self.fitted_from:
            lines.append(
                "fitted from: " + ", ".join(self.fitted_from)
            )
        return "\n".join(lines)


#: Capture-record method → the kernel its wall time calibrates, per
#: relation model.  Degraded or Monte-Carlo answers are skipped: their
#: wall time reflects retries and sampling budgets, not the kernel.
_CAPTURE_KERNELS: dict[tuple[str, str], str] = {
    (model, method): kernel
    for (model, method), (kernel, _) in _KERNELS.items()
    if method not in _PRUNED_METHODS
}


def fit_cost_model(
    history_entries: Iterable[Mapping] = (),
    capture_records: Iterable[Mapping] = (),
    *,
    fitted_from: Iterable[str] = (),
    expensive_access_seconds: float = (
        DEFAULT_EXPENSIVE_ACCESS_SECONDS
    ),
) -> CostModel:
    """Fit per-kernel coefficients from bench history and captures.

    Each ``seconds`` metric of a known kernel contributes one
    ``seconds / units(n)`` sample; each prune ``tuples_accessed``
    metric contributes one ``accessed / (k * log2 n)`` prefix-ratio
    sample; each fault-free capture query record of a known kernel
    contributes a seconds sample from its recorded ``wall_seconds``.
    Coefficients are the per-kernel medians — robust to one noisy CI
    run polluting the history.
    """
    seconds_samples: dict[str, list[float]] = {}
    ratio_samples: dict[str, list[float]] = {}
    observations: dict[str, int] = {}

    def add_seconds(kernel: str, n: int, seconds: float) -> None:
        units_name = next(
            (
                units
                for (_, method), (name, units) in _KERNELS.items()
                if name == kernel
            ),
            None,
        )
        if units_name is None or seconds <= 0 or n <= 0:
            return
        units = _UNIT_FUNCTIONS[units_name](n)
        seconds_samples.setdefault(kernel, []).append(
            seconds / units
        )
        observations[kernel] = observations.get(kernel, 0) + 1

    for entry in history_entries:
        metrics = entry.get("metrics")
        if not isinstance(metrics, Mapping):
            continue
        for name, value in metrics.items():
            parsed = parse_metric_name(str(name))
            if parsed is None or not isinstance(
                value, (int, float)
            ):
                continue
            if parsed["kind"] == "seconds":
                add_seconds(
                    parsed["kernel"], parsed["n"], float(value)
                )
            elif (
                parsed["kind"] == "tuples_accessed"
                and parsed["kernel"] in _PRUNE_KERNELS
                and parsed["k"]
            ):
                denominator = parsed["k"] * math.log2(
                    max(parsed["n"], 2)
                )
                key = parsed["kernel"]
                ratio_samples.setdefault(key, []).append(
                    float(value) / denominator
                )
                observations[key] = observations.get(key, 0) + 1

    for record in capture_records:
        if record.get("type") != "query":
            continue
        model = record.get("model")
        plan = record.get("plan") or {}
        method = plan.get("method") or record.get("method")
        kernel = _CAPTURE_KERNELS.get((str(model), str(method)))
        wall = record.get("wall_seconds")
        n = record.get("n")
        if (
            kernel is None
            or not isinstance(wall, (int, float))
            or not isinstance(n, int)
            or record.get("degraded")
        ):
            continue
        add_seconds(kernel, n, float(wall))

    kernels: dict[str, dict[str, float]] = {}
    for kernel, samples in seconds_samples.items():
        kernels[kernel] = {
            "seconds_per_unit": _median(samples),
            "observations": float(observations.get(kernel, 0)),
        }
    for kernel, samples in ratio_samples.items():
        kernels.setdefault(kernel, {})["prefix_ratio"] = _median(
            samples
        )
        kernels[kernel]["observations"] = float(
            observations.get(kernel, 0)
        )
    return CostModel(
        kernels,
        expensive_access_seconds=expensive_access_seconds,
        fitted_from=fitted_from,
    )
