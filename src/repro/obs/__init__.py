"""Observability: metrics, spans, and the ``@profiled`` decorator.

The layer the benchmarks, the CLI and CI's perf smoke all read from:

* :class:`MetricsRegistry` — process-local counters, gauges, and
  histogram timers (:mod:`repro.obs.metrics`);
* :func:`trace` — spans with pluggable sinks: no-op, stdlib logging,
  or JSON lines (:mod:`repro.obs.trace`);
* :func:`profiled` — wall time + call counts per function
  (:mod:`repro.obs.profile`);
* :func:`explain` — one query run under a fresh registry, folded into
  a schema-validated :class:`ExplainReport`
  (:mod:`repro.obs.explain`);
* :func:`to_prometheus` / :func:`parse_prometheus` — registry
  snapshots in Prometheus text exposition format
  (:mod:`repro.obs.export`);
* :class:`CostLedger` / :class:`CostModel` — per-query resource
  accounting against a calibrated planner cost model
  (:mod:`repro.obs.costs`, :mod:`repro.obs.costmodel`);
* :class:`SamplingProfiler` — stdlib-only continuous sampling
  profiler with collapsed-stack and speedscope output
  (:mod:`repro.obs.profiler`);
* :class:`CaptureLog` / :func:`replay_capture` / :func:`build_report`
  / :func:`to_chrome_trace` — durable workload capture, deterministic
  replay with per-query regression verdicts, session-wide reports,
  and Perfetto-loadable trace export (:mod:`repro.obs.capture`,
  :mod:`repro.obs.replay`, :mod:`repro.obs.report`,
  :mod:`repro.obs.chrome_trace`).

Spans carry per-query trace ids: the outermost span mints one, nested
spans and :func:`emit_event` records inherit it, and
``ProbabilisticDatabase.topk`` stamps it into the query log.

Everything is **off by default and free while off**: the hot ranking
kernels check one flag per call and skip all bookkeeping.  Turn
collection on per process with :func:`configure`, per registry with
:meth:`MetricsRegistry.enable`, or ambiently with ``REPRO_METRICS=1``.

>>> from repro.obs import configure, get_registry, trace
>>> configure(enabled=True)
>>> with trace("demo", n=3):
...     get_registry().counter("demo.tuples").inc(3)
>>> get_registry().snapshot()["counters"]["demo.tuples"]
3
>>> configure(enabled=False)
"""

from __future__ import annotations

from repro.obs.capture import (
    CaptureLog,
    answer_digest,
    get_capture,
    query_capture,
    read_jsonl,
    relation_digest,
    set_capture,
)
from repro.obs.chrome_trace import (
    build_span_tree,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.costmodel import (
    CostEstimate,
    CostModel,
    fit_cost_model,
)
from repro.obs.costs import (
    CostEntry,
    CostLedger,
    get_cost_ledger,
    query_accounting,
    set_cost_ledger,
)
from repro.obs.explain import (
    EXPLAIN_SCHEMA,
    ExplainReport,
    explain,
    validate_report,
)
from repro.obs.replay import (
    QueryReplay,
    ReplayReport,
    replay_capture,
)
from repro.obs.report import SessionReport, build_report
from repro.obs.export import (
    OPENMETRICS_CONTENT_TYPE,
    escape_help,
    escape_label_value,
    parse_prometheus,
    to_openmetrics,
    to_prometheus,
)
from repro.obs.flight import (
    FlightRecorder,
    get_flight_recorder,
    notify_anomaly,
    set_flight_recorder,
)
from repro.obs.logging import (
    StructuredLogger,
    bind_tenant,
    configure_logging,
    current_tenant,
    get_logger,
    logging_configured,
)
from repro.obs.slo import (
    SLOEngine,
    SLOSpec,
    SLOStatus,
    parse_slo_specs,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    count,
    get_registry,
    metrics_enabled,
    set_registry,
)
from repro.obs.profile import profiled
from repro.obs.profiler import SamplingProfiler, validate_speedscope
from repro.obs.trace import (
    JsonlSink,
    LoggingSink,
    NullSink,
    Sink,
    current_span_id,
    current_trace_id,
    emit_event,
    get_sink,
    set_sink,
    trace,
)

__all__ = [
    "EXPLAIN_SCHEMA",
    "OPENMETRICS_CONTENT_TYPE",
    "CaptureLog",
    "CostEntry",
    "CostEstimate",
    "CostLedger",
    "CostModel",
    "Counter",
    "ExplainReport",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "LoggingSink",
    "MetricsRegistry",
    "NullSink",
    "QueryReplay",
    "ReplayReport",
    "SLOEngine",
    "SLOSpec",
    "SLOStatus",
    "SamplingProfiler",
    "SessionReport",
    "Sink",
    "StructuredLogger",
    "answer_digest",
    "bind_tenant",
    "build_report",
    "build_span_tree",
    "configure",
    "configure_logging",
    "count",
    "current_span_id",
    "current_tenant",
    "current_trace_id",
    "emit_event",
    "escape_help",
    "escape_label_value",
    "explain",
    "fit_cost_model",
    "get_capture",
    "get_cost_ledger",
    "get_flight_recorder",
    "get_logger",
    "get_registry",
    "get_sink",
    "logging_configured",
    "metrics_enabled",
    "notify_anomaly",
    "parse_prometheus",
    "parse_slo_specs",
    "profiled",
    "query_accounting",
    "query_capture",
    "read_jsonl",
    "relation_digest",
    "replay_capture",
    "set_capture",
    "set_cost_ledger",
    "set_flight_recorder",
    "set_registry",
    "set_sink",
    "to_chrome_trace",
    "to_openmetrics",
    "to_prometheus",
    "trace",
    "validate_report",
    "validate_speedscope",
    "write_chrome_trace",
]


def configure(
    *,
    enabled: bool | None = None,
    sink: Sink | None = None,
) -> None:
    """One-call setup: flip collection on/off and/or install a sink.

    ``configure(enabled=True, sink=JsonlSink("trace.jsonl"))`` is the
    typical whole-process opt-in; omitted arguments leave the current
    state alone.
    """
    if enabled is not None:
        registry = get_registry()
        if enabled:
            registry.enable()
        else:
            registry.disable()
    if sink is not None:
        set_sink(sink)
