"""Deterministic replay of a captured workload against current code.

:func:`replay_capture` reads a capture JSONL file (see
:mod:`repro.obs.capture`), re-executes every recorded query against a
relation loaded today, and diffs what happened: answer digest, tuples
accessed, wall time.  Each query gets a verdict —

* ``ok`` — same answer digest, same tuples-accessed count;
* ``cost_change`` — same answer, different tuples accessed (the
  paper's cost metric moved; the perf gate decides if that is bad);
* ``answer_regression`` — the ranked answer changed;
* ``error`` — the replayed query raised;
* ``dataset_mismatch`` — the relation on disk is not the one captured
  (content digests differ), so the diff is meaningless;
* ``skipped`` — the record declared itself non-replayable (unseeded
  sampling or non-JSON options).

Determinism: records captured through a
:class:`~repro.engine.query.ResilientExecutor` carry their full
resilience configuration — retry policy, deadline, Monte-Carlo
budget, fault-injector rates and seed — and replay rebuilds a fresh,
identically seeded executor per query.  A chaos run captured under
``REPRO_FAULT_SEED=3`` therefore replays its exact fault sequence and
its exact degraded answers, every time.  (Deadline-driven degradation
is the one caveat: a much slower machine can legitimately degrade
where the capture did not.)

Exit-status contract (``repro replay``): 0 = clean, 9 = at least one
``answer_regression`` or ``error``, 12 = no regression but the input
was degraded (corrupt capture lines, dataset mismatches, skips).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

from repro.obs.capture import (
    answer_digest,
    read_jsonl,
    relation_digest,
)
from repro.obs.metrics import count
from repro.obs.trace import emit_event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.query import ResilientExecutor
    from repro.models.attribute import AttributeLevelRelation
    from repro.models.tuple_level import TupleLevelRelation

    Relation = AttributeLevelRelation | TupleLevelRelation

__all__ = [
    "EXIT_PARTIAL_INPUT",
    "EXIT_REPLAY_REGRESSION",
    "QueryReplay",
    "ReplayReport",
    "replay_capture",
]

#: ``repro replay`` exit code when any query's answer regressed.
EXIT_REPLAY_REGRESSION = 9
#: Exit code when the input was degraded but nothing regressed —
#: shared with ``repro report`` / ``repro chrome-trace`` for corrupt
#: JSONL lines.
EXIT_PARTIAL_INPUT = 12

#: Verdicts that fail the replay outright.
_REGRESSION_VERDICTS = frozenset({"answer_regression", "error"})
#: Verdicts that degrade the replay without failing it.
_DEGRADED_VERDICTS = frozenset({"dataset_mismatch", "skipped"})


@dataclass(frozen=True)
class QueryReplay:
    """The diff between one captured query and its replay."""

    seq: int
    method: str
    k: int
    verdict: str
    detail: str = ""
    trace_id: str | None = None
    digest_recorded: str | None = None
    digest_replayed: str | None = None
    tuples_recorded: int | None = None
    tuples_replayed: int | None = None
    wall_recorded: float | None = None
    wall_replayed: float | None = None

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "method": self.method,
            "k": self.k,
            "verdict": self.verdict,
            "detail": self.detail,
            "trace_id": self.trace_id,
            "answer_digest": {
                "recorded": self.digest_recorded,
                "replayed": self.digest_replayed,
            },
            "tuples_accessed": {
                "recorded": self.tuples_recorded,
                "replayed": self.tuples_replayed,
            },
            "wall_seconds": {
                "recorded": self.wall_recorded,
                "replayed": self.wall_replayed,
            },
        }


@dataclass(frozen=True)
class ReplayReport:
    """Every per-query diff plus the file-level problems."""

    capture_path: str
    dataset_digest: str
    results: tuple[QueryReplay, ...]
    problems: tuple[str, ...]

    def counts(self) -> dict[str, int]:
        """Verdict histogram over :attr:`results`."""
        tally: dict[str, int] = {}
        for result in self.results:
            tally[result.verdict] = tally.get(result.verdict, 0) + 1
        return tally

    @property
    def regressions(self) -> tuple[QueryReplay, ...]:
        return tuple(
            result
            for result in self.results
            if result.verdict in _REGRESSION_VERDICTS
        )

    @property
    def degraded(self) -> bool:
        """Corrupt lines, mismatched datasets, or skipped records."""
        return bool(self.problems) or any(
            result.verdict in _DEGRADED_VERDICTS
            for result in self.results
        )

    def exit_code(self) -> int:
        """The machine-readable verdict for the whole replay."""
        if self.regressions:
            return EXIT_REPLAY_REGRESSION
        if self.degraded:
            return EXIT_PARTIAL_INPUT
        return 0

    def to_dict(self) -> dict:
        return {
            "capture": self.capture_path,
            "dataset_digest": self.dataset_digest,
            "queries": len(self.results),
            "counts": self.counts(),
            "exit_code": self.exit_code(),
            "problems": list(self.problems),
            "results": [result.to_dict() for result in self.results],
        }

    def describe(self) -> str:
        """A human-readable rendering for terminal output."""
        lines = [
            f"replay of {self.capture_path} "
            f"(dataset {self.dataset_digest})"
        ]
        for result in self.results:
            parts = [
                f"  [{result.seq}] {result.method} k={result.k}: "
                f"{result.verdict}"
            ]
            if result.verdict == "cost_change":
                parts.append(
                    f" (tuples {result.tuples_recorded} -> "
                    f"{result.tuples_replayed})"
                )
            if (
                result.wall_recorded is not None
                and result.wall_replayed is not None
            ):
                parts.append(
                    f" wall {result.wall_recorded * 1e3:.2f}ms -> "
                    f"{result.wall_replayed * 1e3:.2f}ms"
                )
            if result.detail:
                parts.append(f" — {result.detail}")
            lines.append("".join(parts))
        for problem in self.problems:
            lines.append(f"  ! {problem}")
        tally = ", ".join(
            f"{verdict}={total}"
            for verdict, total in sorted(self.counts().items())
        )
        lines.append(
            f"summary: {len(self.results)} queries ({tally or 'none'}),"
            f" {len(self.problems)} corrupt lines, "
            f"exit {self.exit_code()}"
        )
        return "\n".join(lines)


def _executor_from(config: Mapping) -> "ResilientExecutor":
    """Rebuild the executor a capture record describes, fresh."""
    from repro.engine.query import ResilientExecutor
    from repro.robust import FaultInjector, RetryPolicy

    injector = None
    injector_config = config.get("injector")
    if injector_config:
        budget = injector_config.get("fault_budget")
        injector = FaultInjector(
            error_rate=float(injector_config.get("error_rate", 0.0)),
            latency_rate=float(
                injector_config.get("latency_rate", 0.0)
            ),
            latency_seconds=float(
                injector_config.get("latency_seconds", 0.0)
            ),
            corrupt_rate=float(
                injector_config.get("corrupt_rate", 0.0)
            ),
            drop_rate=float(injector_config.get("drop_rate", 0.0)),
            seed=int(injector_config.get("seed", 0)),
            fault_budget=None if budget is None else int(budget),
        )
    retry = RetryPolicy(
        max_retries=int(config.get("max_retries", 3)),
        base_delay=float(config.get("base_delay", 0.05)),
        max_delay=float(config.get("max_delay", 2.0)),
    )
    deadline_ms = config.get("deadline_ms")
    return ResilientExecutor(
        retry=retry,
        deadline_ms=(
            None if deadline_ms is None else float(deadline_ms)
        ),
        injector=injector,
        mc_batch=int(config.get("mc_batch", 250)),
        mc_max_samples=int(config.get("mc_max_samples", 4_000)),
        seed=int(config.get("seed", 0)),
    )


def _replay_one(
    record: Mapping, relation: "Relation", digest: str
) -> QueryReplay:
    from repro.core.semantics import rank

    seq = int(record.get("seq", -1))
    method = str(record.get("method", ""))
    k = int(record.get("k", 0))
    base = {
        "seq": seq,
        "method": method,
        "k": k,
        "trace_id": record.get("trace_id"),
        "digest_recorded": record.get("answer_digest"),
        "tuples_recorded": record.get("tuples_accessed"),
        "wall_recorded": record.get("wall_seconds"),
    }
    recorded_digest = record.get("answer_digest")
    if not method or recorded_digest is None:
        return QueryReplay(
            verdict="skipped",
            detail="record is missing 'method' or 'answer_digest'",
            **base,
        )
    recorded_dataset = record.get("dataset_digest")
    if recorded_dataset is not None and recorded_dataset != digest:
        return QueryReplay(
            verdict="dataset_mismatch",
            detail=(
                f"captured against {recorded_dataset}, replaying "
                f"against {digest}"
            ),
            **base,
        )
    if not record.get("replayable", True):
        return QueryReplay(
            verdict="skipped",
            detail="record was captured as non-replayable",
            **base,
        )
    options = dict(record.get("options") or {})
    resilience = record.get("resilience")
    start = time.perf_counter()
    try:
        if resilience:
            executor = _executor_from(resilience)
            result = executor.execute(
                relation, k, method=method, **options
            )
        else:
            result = rank(relation, k, method=method, **options)
    # Quarantine boundary; see comment below.  # repro: noqa RPR005
    except Exception as error:  # noqa: BLE001 - replay must not crash
        # Quarantine philosophy: a query that cannot replay (engine
        # error, alien options from an old capture, ...) is a finding
        # to report, never a reason to abandon the rest of the file.
        return QueryReplay(
            verdict="error",
            detail=f"{type(error).__name__}: {error}",
            wall_replayed=time.perf_counter() - start,
            **base,
        )
    wall = time.perf_counter() - start
    replayed_digest = answer_digest(result)
    accessed = result.metadata.get("tuples_accessed")
    replayed_tuples = int(accessed) if accessed is not None else None
    if replayed_digest != recorded_digest:
        verdict, detail = (
            "answer_regression",
            f"answer changed: {list(result.tids())!r}",
        )
        # Anomaly signal: an armed flight recorder dumps on this
        # (see DEFAULT_TRIGGERS in repro.obs.flight); free otherwise.
        emit_event(
            "capture.digest_mismatch",
            recorded=recorded_digest,
            replayed=replayed_digest,
            k=k,
            method=method,
        )
    elif replayed_tuples != record.get("tuples_accessed"):
        verdict, detail = "cost_change", ""
    else:
        verdict, detail = "ok", ""
    return QueryReplay(
        verdict=verdict,
        detail=detail,
        digest_replayed=replayed_digest,
        tuples_replayed=replayed_tuples,
        wall_replayed=wall,
        **base,
    )


def replay_capture(
    capture_path: Path | str, relation: "Relation"
) -> ReplayReport:
    """Replay every query of a capture file against ``relation``.

    Malformed JSONL lines are reported in ``problems`` rather than
    raised (a truncated capture still replays its intact prefix);
    non-``query`` records — metrics snapshots, truncation notices —
    are ignored.
    """
    records, problems = read_jsonl(capture_path)
    digest = relation_digest(relation)
    results = []
    for record in records:
        if record.get("type") != "query":
            continue
        replay = _replay_one(record, relation, digest)
        results.append(replay)
        count(f"obs.replay.{replay.verdict}")
    return ReplayReport(
        capture_path=str(capture_path),
        dataset_digest=digest,
        results=tuple(results),
        problems=tuple(problems),
    )
