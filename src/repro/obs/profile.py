"""``@profiled`` — per-function wall time and call counts.

The decorator is the one-line way to make a function observable:

    @profiled
    def tuple_expected_ranks(relation, ...): ...

Each call (while the default registry is enabled) records

* ``<name>.calls``   — a counter of invocations, and
* ``<name>.seconds`` — a histogram of wall-clock durations,

where ``<name>`` defaults to ``<module tail>.<function name>`` and can
be overridden with ``@profiled("t_erank")``.  Algorithm-specific
counters (tuples accessed, pruning halts) are recorded separately by
the algorithms themselves via :func:`repro.obs.count`.

Generator functions are detected and wrapped with a driving generator
instead: the call counter still ticks once per invocation, and the
``.seconds`` histogram records the *cumulative time spent inside the
generator* (summed across ``next()`` resumptions, observed when the
generator finishes or is closed) — not the microseconds it takes to
create the generator object.

When the registry is disabled the wrapper is a single attribute check
followed by a tail call — cheap enough for the vectorized kernels,
whose per-call work dwarfs it by orders of magnitude.
"""

from __future__ import annotations

import functools
import inspect
from time import perf_counter
from typing import Callable, TypeVar, overload

from repro.obs.metrics import get_registry

__all__ = ["profiled"]

F = TypeVar("F", bound=Callable)


def _default_name(function: Callable) -> str:
    module_tail = function.__module__.rpartition(".")[2]
    return f"{module_tail}.{function.__name__}"


@overload
def profiled(function: F) -> F: ...


@overload
def profiled(
    function: str | None = ..., *, name: str | None = ...
) -> Callable[[F], F]: ...


def profiled(function=None, *, name=None):
    """Record wall time and call count of every (enabled) invocation.

    Usable bare (``@profiled``), with a positional name
    (``@profiled("t_erank")``), or with a keyword
    (``@profiled(name="t_erank")``).
    """
    if isinstance(function, str):  # @profiled("name")
        name = function
        function = None

    def decorate(inner: Callable) -> Callable:
        metric = name if name is not None else _default_name(inner)
        calls_metric = f"{metric}.calls"
        seconds_metric = f"{metric}.seconds"

        if inspect.isgeneratorfunction(inner):

            @functools.wraps(inner)
            def generator_wrapper(*args, **kwargs):
                registry = get_registry()
                if not registry.enabled:
                    yield from inner(*args, **kwargs)
                    return
                registry.counter(calls_metric).inc()
                # Accumulate only the time spent *inside* the
                # generator body; the consumer's time between items
                # must not be charged to the producer.
                elapsed = 0.0
                iterator = inner(*args, **kwargs)
                try:
                    while True:
                        start = perf_counter()
                        try:
                            item = next(iterator)
                        except StopIteration:
                            elapsed += perf_counter() - start
                            return
                        elapsed += perf_counter() - start
                        yield item
                finally:
                    registry.histogram(seconds_metric).observe(
                        elapsed
                    )

            setattr(generator_wrapper, "__profiled_metric__", metric)
            return generator_wrapper

        @functools.wraps(inner)
        def wrapper(*args, **kwargs):
            registry = get_registry()
            if not registry.enabled:
                return inner(*args, **kwargs)
            start = perf_counter()
            try:
                return inner(*args, **kwargs)
            finally:
                elapsed = perf_counter() - start
                registry.counter(calls_metric).inc()
                registry.histogram(seconds_metric).observe(elapsed)

        wrapper.__profiled_metric__ = metric  # type: ignore[attr-defined]
        return wrapper

    if function is not None:
        return decorate(function)
    return decorate
