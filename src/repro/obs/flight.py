"""The flight recorder: recent telemetry, dumped the moment it matters.

Post-hoc observability (capture files, session reports, Chrome
traces) answers "what happened last run"; an *operable* service also
needs "what just happened" — the spans, events, and metric deltas of
the last few seconds, snapshotted at the instant something went
wrong.  :class:`FlightRecorder` is that black box:

* it **tees** the live span sink (:func:`FlightRecorder.arm` wraps
  the installed sink, forwarding every record untouched), keeping the
  most recent ``capacity`` records in a bounded ring — O(1) append,
  O(1) amortised eviction, constant memory;
* it maintains a **per-trace index** so the complete span/event tree
  of any still-buffered trace id is retrievable in one lookup;
  eviction is per-trace too — once a trace's last buffered record
  falls off the ring, the trace id vanishes from the index;
* **anomalies trigger a dump**: watched event names flowing through
  the sink (``breaker.open``, ``kernel.gf_fallback``,
  ``capture.digest_mismatch`` by default) and typed exception hooks
  from the serving layer (:func:`notify_anomaly` with an
  :class:`~repro.exceptions.OverloadedError`,
  :class:`~repro.exceptions.CircuitOpenError`, or
  :class:`~repro.exceptions.DeadlineExceededError`) both snapshot the
  ring to a deterministic JSONL file plus a Perfetto-loadable Chrome
  trace (via :mod:`repro.obs.chrome_trace`), rate-limited so an
  anomaly storm cannot turn the recorder into the outage.

The module-level :func:`get_flight_recorder` / :func:`set_flight_-
recorder` pair mirrors the registry and sink globals: library code
calls :func:`notify_anomaly` unconditionally and pays one global load
plus a ``None`` check while no recorder is armed — the observability-
off hot path stays bit-identical.
"""

from __future__ import annotations

import json
import re
import threading
import time
from collections import deque
from pathlib import Path
from typing import Callable

from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceededError,
    OverloadedError,
)
from repro.obs.chrome_trace import to_chrome_trace
from repro.obs.metrics import get_registry
from repro.obs.trace import Sink, get_sink, set_sink

__all__ = [
    "DEFAULT_TRIGGERS",
    "FlightRecorder",
    "get_flight_recorder",
    "notify_anomaly",
    "set_flight_recorder",
]

#: Event names that trigger a dump while flowing through the sink.
#: Each marks a moment the ISSUE calls out: a circuit opening, a
#: generating-function sweep falling back to the DP on a mass
#: violation, a replayed answer digest disagreeing with its capture.
DEFAULT_TRIGGERS = frozenset(
    {
        "breaker.open",
        "kernel.gf_fallback",
        "capture.digest_mismatch",
    }
)

#: Typed anomaly reasons for the serving layer's exception hooks.
_ANOMALY_REASONS: tuple[tuple[type[BaseException], str], ...] = (
    (OverloadedError, "overloaded"),
    (CircuitOpenError, "circuit_open"),
    (DeadlineExceededError, "deadline_exceeded"),
)

_SAFE_REASON = re.compile(r"[^a-zA-Z0-9_.-]+")


def _reason_for(error: BaseException) -> str | None:
    """The dump reason for a typed anomaly, ``None`` if untyped."""
    for kind, reason in _ANOMALY_REASONS:
        if isinstance(error, kind):
            suffix = getattr(error, "reason", None)
            if isinstance(suffix, str) and suffix:
                return f"{reason}.{suffix}"
            return reason
    return None


class FlightRecorder(Sink):
    """Bounded ring of recent span-sink records with anomaly dumps.

    Parameters
    ----------
    capacity:
        Records retained; the 2048 default holds several hundred
        queries' span trees at the serving core's span fan-out.
    dump_dir:
        Where anomaly dumps land.  ``None`` keeps dumps in memory
        only (:attr:`last_dump`) — tests and the ``/debug/flight``
        endpoint still see them.
    triggers:
        Event names that fire a dump when they flow through the sink.
    max_dumps:
        Hard cap on dumps per recorder lifetime; later anomalies are
        counted (``obs.flight.suppressed``) but not written.
    min_interval_seconds:
        Cool-down between dumps, on the injectable ``clock`` —
        a breaker flapping every 10 ms must not write 100 files/s.
    clock:
        Monotonic time source for the cool-down (RPR004: injectable).
    """

    def __init__(
        self,
        *,
        capacity: int = 2048,
        dump_dir: Path | str | None = None,
        triggers: frozenset[str] | set[str] = DEFAULT_TRIGGERS,
        max_dumps: int = 16,
        min_interval_seconds: float = 0.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError(
                f"capacity must be >= 1, got {capacity!r}"
            )
        if max_dumps < 1:
            raise ValueError(
                f"max_dumps must be >= 1, got {max_dumps!r}"
            )
        self.capacity = capacity
        self.dump_dir = None if dump_dir is None else Path(dump_dir)
        self.triggers = frozenset(triggers)
        self.max_dumps = max_dumps
        self.min_interval_seconds = min_interval_seconds
        self._clock = clock
        self._ring: deque[dict] = deque()
        self._by_trace: dict[str, deque[dict]] = {}
        self._inner: Sink | None = None
        self._armed = False
        # Spans finish on worker threads too; the lock keeps ring and
        # index consistent (appends are tiny, contention negligible).
        self._lock = threading.Lock()
        self._dump_seq = 0
        self._suppressed = 0
        self._last_dump_at: float | None = None
        # Trigger events fire *inside* their span stack, before the
        # enclosing spans have closed and reached the ring; dumping
        # immediately would miss the triggering trace's own tree.  A
        # matched trace id is parked here and dumped when its root
        # span (parent_id None) lands.
        self._pending: dict[str, str] = {}
        #: The most recent dump document (kept even with a dump_dir).
        self.last_dump: dict | None = None
        #: Paths written so far, in dump order.
        self.dump_paths: list[Path] = []

    # ------------------------------------------------------------------
    # Sink protocol + ring maintenance
    # ------------------------------------------------------------------
    def arm(self) -> "FlightRecorder":
        """Install the recorder as a tee over the current sink."""
        if not self._armed:
            self._inner = set_sink(self)
            self._armed = True
        return self

    def disarm(self) -> None:
        """Restore the wrapped sink (idempotent)."""
        if self._armed:
            assert self._inner is not None
            set_sink(self._inner)
            self._inner = None
            self._armed = False

    def __enter__(self) -> "FlightRecorder":
        return self.arm()

    def __exit__(self, *exc_info: object) -> None:
        self.disarm()

    def emit(self, record: dict) -> None:
        """Tee one record: forward it, buffer it, check triggers.

        A trigger event belonging to a live trace does not dump on
        the spot — its enclosing spans have not closed yet, so the
        ring lacks the very tree the dump is for.  The trace id is
        parked instead and the dump fires when the trace's root span
        arrives, at which point the complete span tree is buffered.
        """
        inner = self._inner
        if inner is not None:
            inner.emit(record)
        due: str | None = None
        trace_id = record.get("trace_id")
        with self._lock:
            self._append(record)
            kind = record.get("type")
            if (
                kind == "event"
                and record.get("name") in self.triggers
            ):
                if trace_id is None:
                    due = str(record.get("name"))
                else:
                    self._pending.setdefault(
                        str(trace_id), str(record.get("name"))
                    )
            elif (
                kind == "span"
                and record.get("parent_id") is None
                and trace_id in self._pending
            ):
                due = self._pending.pop(str(trace_id))
        if due is not None:
            self.trigger(due, trace_id=trace_id)

    def _append(self, record: dict) -> None:
        self._ring.append(record)
        trace_id = record.get("trace_id")
        if trace_id is not None:
            per_trace = self._by_trace.get(trace_id)
            if per_trace is None:
                per_trace = self._by_trace.setdefault(
                    trace_id, deque()
                )
            per_trace.append(record)
        if len(self._ring) > self.capacity:
            evicted = self._ring.popleft()
            evicted_trace = evicted.get("trace_id")
            if evicted_trace is not None:
                per_trace = self._by_trace.get(evicted_trace)
                if per_trace is not None:
                    # Ring order is append order, so the evicted
                    # record is this trace's oldest buffered one.
                    per_trace.popleft()
                    if not per_trace:
                        del self._by_trace[evicted_trace]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ring)

    @property
    def traces(self) -> tuple[str, ...]:
        """Trace ids with at least one buffered record (oldest first)."""
        return tuple(self._by_trace)

    def records_for(self, trace_id: str) -> list[dict]:
        """Every buffered record of ``trace_id``, in append order."""
        with self._lock:
            return list(self._by_trace.get(trace_id, ()))

    def last_records(self) -> list[dict]:
        """The whole ring, oldest first (what a dump would contain)."""
        with self._lock:
            return list(self._ring)

    def snapshot(self) -> dict:
        """Recorder status as plain data (the ``/debug/flight`` body)."""
        with self._lock:
            return {
                "armed": self._armed,
                "capacity": self.capacity,
                "records": len(self._ring),
                "traces": len(self._by_trace),
                "dumps_written": self._dump_seq,
                "dumps_suppressed": self._suppressed,
                "dump_paths": [str(path) for path in self.dump_paths],
                "triggers": sorted(self.triggers),
            }

    # ------------------------------------------------------------------
    # Anomaly hooks + dumping
    # ------------------------------------------------------------------
    def notify(
        self,
        anomaly: BaseException | str,
        *,
        trace_id: str | None = None,
        **attributes: object,
    ) -> Path | None:
        """Typed anomaly hook: record it, then dump.

        Accepts either a reason string or one of the typed serving
        exceptions (:class:`OverloadedError`, :class:`CircuitOpenError`,
        :class:`DeadlineExceededError`); any other exception type is
        ignored — the recorder documents *expected* operational
        anomalies, it is not an error handler.
        """
        if isinstance(anomaly, BaseException):
            reason = _reason_for(anomaly)
            if reason is None:
                return None
            attributes.setdefault("error", str(anomaly))
            attributes.setdefault(
                "error_type", type(anomaly).__name__
            )
        else:
            reason = anomaly
        with self._lock:
            self._append(
                {
                    "type": "anomaly",
                    "name": reason,
                    "trace_id": trace_id,
                    "attributes": attributes,
                }
            )
        return self.trigger(reason, trace_id=trace_id)

    def trigger(
        self,
        reason: str,
        *,
        trace_id: str | None = None,
        force: bool = False,
    ) -> Path | None:
        """Snapshot the ring to a dump, subject to rate limits.

        ``force`` (the ``/debug/flight`` on-demand path) bypasses the
        cool-down but still honours ``max_dumps``.  Returns the path
        written, or ``None`` when the dump was suppressed or
        ``dump_dir`` is unset (the document still lands in
        :attr:`last_dump`).
        """
        registry = get_registry()
        with self._lock:
            now = self._clock()
            if self._dump_seq >= self.max_dumps or (
                not force
                and self._last_dump_at is not None
                and now - self._last_dump_at
                < self.min_interval_seconds
            ):
                self._suppressed += 1
                if registry.enabled:
                    registry.counter("obs.flight.suppressed").inc()
                return None
            self._last_dump_at = now
            self._dump_seq += 1
            sequence = self._dump_seq
            records = list(self._ring)
            trace_records = (
                list(self._by_trace.get(trace_id, ()))
                if trace_id is not None
                else []
            )
        document = {
            "type": "flight_dump",
            "sequence": sequence,
            "reason": reason,
            "trace_id": trace_id,
            "trace_records": len(trace_records),
            "records": len(records),
            "metrics": (
                registry.snapshot() if registry.enabled else None
            ),
        }
        self.last_dump = {"header": document, "records": records}
        if registry.enabled:
            registry.counter("obs.flight.dumps").inc()
            registry.counter(f"obs.flight.trigger.{reason}").inc()
        if self.dump_dir is None:
            return None
        self.dump_dir.mkdir(parents=True, exist_ok=True)
        safe_reason = _SAFE_REASON.sub("_", reason) or "anomaly"
        stem = f"flight-{sequence:04d}-{safe_reason}"
        path = self.dump_dir / f"{stem}.jsonl"
        with path.open("w") as stream:
            stream.write(
                json.dumps(document, sort_keys=True) + "\n"
            )
            for record in records:
                stream.write(
                    json.dumps(record, sort_keys=True, default=str)
                    + "\n"
                )
        chrome_path = self.dump_dir / f"{stem}.chrome.json"
        chrome_path.write_text(
            json.dumps(
                to_chrome_trace(records), sort_keys=True, default=str
            )
        )
        self.dump_paths.append(path)
        return path


_recorder: FlightRecorder | None = None


def get_flight_recorder() -> FlightRecorder | None:
    """The armed process-wide recorder, if any."""
    return _recorder


def set_flight_recorder(
    recorder: FlightRecorder | None,
) -> FlightRecorder | None:
    """Swap the process-wide recorder; returns the previous one.

    Arming/disarming the sink tee is the caller's business
    (:meth:`FlightRecorder.arm` / :meth:`FlightRecorder.disarm` or
    the ``with`` form); this only publishes the instance that
    :func:`notify_anomaly` reaches.
    """
    global _recorder
    previous = _recorder
    _recorder = recorder
    return previous


def notify_anomaly(
    anomaly: BaseException | str,
    *,
    trace_id: str | None = None,
    **attributes: object,
) -> None:
    """Forward a typed anomaly to the armed recorder, if any.

    One global load and a ``None`` check when no recorder is
    installed — safe to call on every error path of the serving
    layer.
    """
    recorder = _recorder
    if recorder is None:
        return
    recorder.notify(anomaly, trace_id=trace_id, **attributes)
