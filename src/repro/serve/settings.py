"""Serving-core configuration.

One frozen dataclass holds every knob of the serving layer so a test,
the CLI, and the chaos soak configure it the same way.  All limits are
validated eagerly — a serving core must not discover a nonsensical
quota at request time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.exceptions import EngineError

__all__ = ["ServeSettings"]


@dataclass(frozen=True)
class ServeSettings:
    """Knobs of :class:`repro.serve.core.ServingCore`.

    Parameters
    ----------
    queue_limit:
        Maximum requests in the system at once (admitted but not yet
        resolved).  Admission sheds with reason ``queue_full`` beyond
        it — the bounded queue that keeps overload from turning into
        unbounded memory and latency.
    tenant_rate, tenant_burst:
        Default token-bucket quota per tenant: sustained requests per
        second and the burst capacity.  ``quotas`` overrides both for
        named tenants.
    quotas:
        Per-tenant ``{tenant: (rate, burst)}`` overrides.
    default_deadline_ms:
        Deadline applied to requests that do not carry their own;
        ``None`` leaves such requests unbounded.
    drain_deadline_ms:
        How long :meth:`ServingCore.drain` waits for in-flight
        requests before abandoning the stragglers.
    coalesce:
        Whether identical in-flight queries share one execution.
    max_workers:
        Kernel threads.  Query execution is synchronous numpy work;
        the event loop dispatches it to this pool.
    max_retries:
        Retry budget of each degradation-ladder rung.
    seed:
        Seeds backoff jitter and Monte-Carlo sampling per request, so
        degraded answers stay reproducible.
    breaker_window, breaker_threshold, breaker_min_calls,
    breaker_reset_seconds:
        Shared circuit-breaker configuration (see
        :class:`repro.robust.CircuitBreaker`).
    """

    queue_limit: int = 64
    tenant_rate: float = 50.0
    tenant_burst: float = 20.0
    quotas: Mapping[str, tuple[float, float]] = field(
        default_factory=dict
    )
    default_deadline_ms: float | None = 5_000.0
    drain_deadline_ms: float = 2_000.0
    coalesce: bool = True
    max_workers: int = 4
    max_retries: int = 3
    seed: int = 0
    breaker_window: int = 16
    breaker_threshold: float = 0.5
    breaker_min_calls: int = 4
    breaker_reset_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise EngineError(
                f"queue_limit must be >= 1, got {self.queue_limit!r}"
            )
        if self.tenant_rate <= 0.0 or self.tenant_burst < 1.0:
            raise EngineError(
                "need tenant_rate > 0 and tenant_burst >= 1, got "
                f"{self.tenant_rate!r}, {self.tenant_burst!r}"
            )
        for tenant, (rate, burst) in self.quotas.items():
            if rate <= 0.0 or burst < 1.0:
                raise EngineError(
                    f"quota for tenant {tenant!r} needs rate > 0 and "
                    f"burst >= 1, got {rate!r}, {burst!r}"
                )
        if (
            self.default_deadline_ms is not None
            and self.default_deadline_ms < 0
        ):
            raise EngineError(
                "default_deadline_ms must be >= 0, got "
                f"{self.default_deadline_ms!r}"
            )
        if self.drain_deadline_ms < 0:
            raise EngineError(
                "drain_deadline_ms must be >= 0, got "
                f"{self.drain_deadline_ms!r}"
            )
        if self.max_workers < 1:
            raise EngineError(
                f"max_workers must be >= 1, got {self.max_workers!r}"
            )
        if self.max_retries < 0:
            raise EngineError(
                f"max_retries must be >= 0, got {self.max_retries!r}"
            )

    def quota_for(self, tenant: str) -> tuple[float, float]:
        """The ``(rate, burst)`` pair governing ``tenant``."""
        return self.quotas.get(
            tenant, (self.tenant_rate, self.tenant_burst)
        )
