"""Line-JSON transports over the serving core.

Two thin adapters around :class:`~repro.serve.core.ServingCore`, both
speaking the same wire format — one JSON object per line, request in,
response out:

* :func:`run_batch` — submit a workload of request lines
  concurrently and collect the responses (the ``repro serve`` CLI's
  default mode, and the chaos soak's driver);
* :func:`serve_tcp` — an asyncio TCP server; each connection
  pipelines request lines, responses stream back as they resolve,
  correlated by an optional client-chosen ``id`` echoed verbatim.

Malformed lines become ``status="error"`` responses for that line
only — a bad request never takes down the connection or the batch.
"""

from __future__ import annotations

import asyncio
import json

from repro.exceptions import SchemaError
from repro.serve.core import ServingCore, ServeRequest

__all__ = ["handle_line", "run_batch", "serve_tcp"]


async def handle_line(core: ServingCore, line: str) -> dict:
    """Resolve one request line to one response object.

    An optional ``id`` field is stripped before validation and echoed
    in the response, so pipelined clients can correlate out-of-order
    completions.
    """
    request_id: object = None
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        return {
            "status": "error",
            "id": None,
            "error_type": "SchemaError",
            "error": f"invalid JSON: {error.msg}",
        }
    if isinstance(payload, dict):
        request_id = payload.pop("id", None)
    try:
        request = ServeRequest.from_json(payload)
    except SchemaError as error:
        return {
            "status": "error",
            "id": request_id,
            "error_type": "SchemaError",
            "error": str(error),
        }
    response = await core.submit(request)
    record = response.to_json()
    record["id"] = request_id
    return record


async def run_batch(
    core: ServingCore,
    lines: list[str],
    *,
    drain: bool = True,
) -> list[dict]:
    """Submit every line concurrently; responses in input order.

    Blank lines are skipped.  With ``drain`` (the default) the core is
    drained afterwards, so a batch run exercises the full lifecycle.
    """
    tasks = [
        asyncio.create_task(handle_line(core, line))
        for line in lines
        if line.strip()
    ]
    responses = [await task for task in tasks]
    if drain:
        await core.drain()
    return responses


async def serve_tcp(
    core: ServingCore,
    host: str = "127.0.0.1",
    port: int = 0,
) -> asyncio.base_events.Server:
    """Start the line-JSON TCP server; the caller owns its lifecycle.

    Each connection pipelines: every received line spawns a request
    task and responses are written back as they complete (use ``id``
    to correlate).  The caller typically runs
    ``server.serve_forever()`` and, on shutdown, closes the server and
    drains the core.
    """

    async def handler(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        pending: set[asyncio.Task] = set()

        async def respond(line: str) -> None:
            record = await handle_line(core, line)
            async with write_lock:
                writer.write(
                    (json.dumps(record) + "\n").encode("utf-8")
                )
                await writer.drain()

        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                task = asyncio.create_task(
                    respond(raw.decode("utf-8"))
                )
                pending.add(task)
                task.add_done_callback(pending.discard)
            if pending:
                await asyncio.gather(*pending)
        finally:
            writer.close()
            await writer.wait_closed()

    return await asyncio.start_server(handler, host, port)
