"""The admin plane: live telemetry over minimal HTTP.

A second listener next to the line-JSON data port, speaking just
enough HTTP/1.0 for ``curl``, a Prometheus scraper, and a Kubernetes
probe — request line + headers in, one response out, connection
closed.  No routing framework, no dependency, no keep-alive: every
endpoint is a read-only snapshot of in-process state, so the handler
is a dispatch table over five paths:

``/metrics``
    The process registry as OpenMetrics 1.0 text — histograms carry
    per-bucket **exemplars** linking slow latency buckets to recent
    trace ids (:func:`repro.obs.export.to_openmetrics`).  SLO gauges
    are refreshed on the way out, so a scrape always reads current
    burn rates.
``/healthz``
    Liveness: 200 while the process can serve this very response.
``/readyz``
    Readiness: 200 while the core admits work, 503 once a drain has
    started — the signal a load balancer uses to stop routing here
    *before* requests start shedding.
``/slo``
    Every SLO spec's live evaluation as a JSON array (state, burn
    rates, good/bad counts), 200 even mid-breach — the *content*
    carries the alert, the transport stays boring.
``/debug/flight``
    The armed flight recorder's status; ``/debug/flight?dump=1``
    forces an on-demand dump (reason ``manual``) and returns it, the
    live-incident "give me everything you have" button.

The server binds loopback by default; nothing here authenticates, so
exposing it beyond the host is an operator decision, not a default.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING

from repro.obs import get_registry
from repro.obs.export import OPENMETRICS_CONTENT_TYPE, to_openmetrics
from repro.obs.flight import get_flight_recorder
from repro.obs.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.slo import SLOEngine
    from repro.serve.core import ServingCore

__all__ = ["serve_admin"]

_log = get_logger("repro.serve.admin")

_MAX_REQUEST_BYTES = 8192


def _response(
    status: int,
    body: str,
    *,
    content_type: str = "text/plain; charset=utf-8",
) -> bytes:
    reason = {
        200: "OK",
        404: "Not Found",
        405: "Method Not Allowed",
        503: "Service Unavailable",
    }.get(status, "OK")
    payload = body.encode("utf-8")
    head = (
        f"HTTP/1.0 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + payload


def _json_response(status: int, document: object) -> bytes:
    return _response(
        status,
        json.dumps(document, sort_keys=True, default=str) + "\n",
        content_type="application/json; charset=utf-8",
    )


def handle_admin_request(
    path: str,
    core: "ServingCore",
    *,
    slo: "SLOEngine | None" = None,
) -> bytes:
    """Resolve one GET path to a full HTTP response (transport-free).

    Split out from the socket handler so tests and the chaos soak can
    drive every endpoint without opening a port.
    """
    route, _, query = path.partition("?")
    slo_engine = slo if slo is not None else core.slo
    if route == "/metrics":
        if slo_engine is not None:
            slo_engine.evaluate()
        return _response(
            200,
            to_openmetrics(get_registry()),
            content_type=OPENMETRICS_CONTENT_TYPE,
        )
    if route == "/healthz":
        return _response(200, "ok\n")
    if route == "/readyz":
        if core.ready:
            return _response(200, "ready\n")
        return _response(503, "draining\n")
    if route == "/slo":
        if slo_engine is None:
            return _json_response(200, [])
        return _json_response(
            200,
            [status.to_dict() for status in slo_engine.evaluate()],
        )
    if route == "/debug/flight":
        recorder = get_flight_recorder()
        if recorder is None:
            return _json_response(200, {"armed": False})
        document = recorder.snapshot()
        if "dump=1" in query.split("&"):
            recorder.trigger("manual", force=True)
            document = recorder.snapshot()
            document["last_dump"] = recorder.last_dump
        return _json_response(200, document)
    return _response(404, f"unknown path {route}\n")


async def serve_admin(
    core: "ServingCore",
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    slo: "SLOEngine | None" = None,
) -> asyncio.base_events.Server:
    """Start the admin listener; the caller owns its lifecycle.

    Runs on the same event loop as the data plane, so every endpoint
    reads consistent in-process state without locks.  Closing the
    returned server drops the listener; in-flight admin responses are
    one write each and finish on their own.
    """

    async def handler(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            if not request_line:
                return
            parts = request_line.decode("latin-1").split()
            # Drain headers so well-behaved clients see a clean close.
            total = len(request_line)
            while True:
                header = await reader.readline()
                total += len(header)
                if header in (b"\r\n", b"\n", b"") or (
                    total > _MAX_REQUEST_BYTES
                ):
                    break
            if len(parts) < 2:
                writer.write(_response(405, "malformed request\n"))
            elif parts[0] != "GET":
                writer.write(
                    _response(405, f"method {parts[0]} not allowed\n")
                )
            else:
                writer.write(
                    handle_admin_request(parts[1], core, slo=slo)
                )
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    server = await asyncio.start_server(handler, host, port)
    bound = server.sockets[0].getsockname() if server.sockets else None
    _log.info("serve.admin.listening", address=str(bound))
    return server
