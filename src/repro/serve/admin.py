"""The admin plane: live telemetry over minimal HTTP.

A second listener next to the line-JSON data port, speaking just
enough HTTP/1.0 for ``curl``, a Prometheus scraper, and a Kubernetes
probe — request line + headers in, one response out, connection
closed.  No routing framework, no dependency, no keep-alive: every
endpoint is a read-only snapshot of in-process state, so the handler
is a dispatch table over five paths:

``/metrics``
    The process registry as OpenMetrics 1.0 text — histograms carry
    per-bucket **exemplars** linking slow latency buckets to recent
    trace ids (:func:`repro.obs.export.to_openmetrics`).  SLO gauges
    are refreshed on the way out, so a scrape always reads current
    burn rates.
``/healthz``
    Liveness: 200 while the process can serve this very response.
``/readyz``
    Readiness: 200 while the core admits work, 503 once a drain has
    started — the signal a load balancer uses to stop routing here
    *before* requests start shedding.
``/slo``
    Every SLO spec's live evaluation as a JSON array (state, burn
    rates, good/bad counts), 200 even mid-breach — the *content*
    carries the alert, the transport stays boring.
``/costs``
    The cost ledger's summary (per-tenant/per-method resource
    aggregates plus calibration drift) as JSON.  Drain-aware with
    ``/readyz`` semantics: 503 once a drain has started, because a
    draining core's ledger is about to stop moving and dashboards
    should fail over with the traffic.
``/debug/flight``
    The armed flight recorder's status; ``/debug/flight?dump=1``
    forces an on-demand dump (reason ``manual``) and returns it, the
    live-incident "give me everything you have" button.
``/debug/profile``
    Arm a :class:`~repro.obs.profiler.SamplingProfiler` for
    ``?seconds=N`` (default 1, capped at 30) and return the speedscope
    JSON dump.  The only endpoint that awaits: it samples the live
    process while other coroutines keep serving.  One capture at a
    time; a second request mid-capture gets 503.

The server binds loopback by default; nothing here authenticates, so
exposing it beyond the host is an operator decision, not a default.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING

from repro.obs import get_registry
from repro.obs.costs import get_cost_ledger
from repro.obs.export import OPENMETRICS_CONTENT_TYPE, to_openmetrics
from repro.obs.flight import get_flight_recorder
from repro.obs.logging import get_logger
from repro.obs.profiler import SamplingProfiler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.slo import SLOEngine
    from repro.serve.core import ServingCore

__all__ = ["handle_profile_request", "serve_admin"]

_log = get_logger("repro.serve.admin")

_MAX_REQUEST_BYTES = 8192

#: ``/debug/profile`` duration cap: the endpoint holds a sampler
#: thread for the whole capture, so a typo must not pin one for hours.
_MAX_PROFILE_SECONDS = 30.0

#: One capture at a time (single event loop, so a bool suffices).
_profiling = False


def _response(
    status: int,
    body: str,
    *,
    content_type: str = "text/plain; charset=utf-8",
) -> bytes:
    reason = {
        200: "OK",
        400: "Bad Request",
        404: "Not Found",
        405: "Method Not Allowed",
        503: "Service Unavailable",
    }.get(status, "OK")
    payload = body.encode("utf-8")
    head = (
        f"HTTP/1.0 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + payload


def _json_response(status: int, document: object) -> bytes:
    return _response(
        status,
        json.dumps(document, sort_keys=True, default=str) + "\n",
        content_type="application/json; charset=utf-8",
    )


def handle_admin_request(
    path: str,
    core: "ServingCore",
    *,
    slo: "SLOEngine | None" = None,
) -> bytes:
    """Resolve one GET path to a full HTTP response (transport-free).

    Split out from the socket handler so tests and the chaos soak can
    drive every endpoint without opening a port.
    """
    route, _, query = path.partition("?")
    slo_engine = slo if slo is not None else core.slo
    if route == "/metrics":
        if slo_engine is not None:
            slo_engine.evaluate()
        return _response(
            200,
            to_openmetrics(get_registry()),
            content_type=OPENMETRICS_CONTENT_TYPE,
        )
    if route == "/healthz":
        return _response(200, "ok\n")
    if route == "/readyz":
        if core.ready:
            return _response(200, "ready\n")
        return _response(503, "draining\n")
    if route == "/slo":
        if slo_engine is None:
            return _json_response(200, [])
        return _json_response(
            200,
            [status.to_dict() for status in slo_engine.evaluate()],
        )
    if route == "/costs":
        if not core.ready:
            return _json_response(503, {"error": "draining"})
        ledger = core.ledger if core.ledger is not None else (
            get_cost_ledger()
        )
        if ledger is None:
            return _json_response(200, {"enabled": False})
        document = ledger.summary()
        document["enabled"] = True
        return _json_response(200, document)
    if route == "/debug/flight":
        recorder = get_flight_recorder()
        if recorder is None:
            return _json_response(200, {"armed": False})
        document = recorder.snapshot()
        if "dump=1" in query.split("&"):
            recorder.trigger("manual", force=True)
            document = recorder.snapshot()
            document["last_dump"] = recorder.last_dump
        return _json_response(200, document)
    return _response(404, f"unknown path {route}\n")


async def handle_profile_request(path: str) -> bytes:
    """``/debug/profile?seconds=N[&hz=H]`` → speedscope JSON response.

    Async on purpose — the capture *is* the wait — and split from
    :func:`handle_admin_request` so tests can drive it without a
    socket.  Rejects overlapping captures with 503 rather than
    stacking sampler threads.
    """
    global _profiling
    _, _, query = path.partition("?")
    seconds = 1.0
    hz = 97.0
    for pair in query.split("&"):
        key, _, value = pair.partition("=")
        try:
            if key == "seconds":
                seconds = float(value)
            elif key == "hz":
                hz = float(value)
        except ValueError:
            return _json_response(
                400, {"error": f"bad {key} value {value!r}"}
            )
    if not 0.0 < seconds <= _MAX_PROFILE_SECONDS:
        return _json_response(
            400,
            {
                "error": (
                    "seconds must be in "
                    f"(0, {_MAX_PROFILE_SECONDS:g}], got {seconds:g}"
                )
            },
        )
    if _profiling:
        return _json_response(
            503, {"error": "a profile capture is already running"}
        )
    _profiling = True
    try:
        try:
            profiler = SamplingProfiler(hz=hz)
        except ValueError as error:
            return _json_response(400, {"error": str(error)})
        with profiler:
            await asyncio.sleep(seconds)
        return _json_response(
            200, profiler.to_speedscope(name="repro-admin")
        )
    finally:
        _profiling = False


async def serve_admin(
    core: "ServingCore",
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    slo: "SLOEngine | None" = None,
) -> asyncio.base_events.Server:
    """Start the admin listener; the caller owns its lifecycle.

    Runs on the same event loop as the data plane, so every endpoint
    reads consistent in-process state without locks.  Closing the
    returned server drops the listener; in-flight admin responses are
    one write each and finish on their own.
    """

    async def handler(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            if not request_line:
                return
            parts = request_line.decode("latin-1").split()
            # Drain headers so well-behaved clients see a clean close.
            total = len(request_line)
            while True:
                header = await reader.readline()
                total += len(header)
                if header in (b"\r\n", b"\n", b"") or (
                    total > _MAX_REQUEST_BYTES
                ):
                    break
            if len(parts) < 2:
                writer.write(_response(405, "malformed request\n"))
            elif parts[0] != "GET":
                writer.write(
                    _response(405, f"method {parts[0]} not allowed\n")
                )
            elif parts[1].partition("?")[0] == "/debug/profile":
                writer.write(await handle_profile_request(parts[1]))
            else:
                writer.write(
                    handle_admin_request(parts[1], core, slo=slo)
                )
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    server = await asyncio.start_server(handler, host, port)
    bound = server.sockets[0].getsockname() if server.sockets else None
    _log.info("serve.admin.listening", address=str(bound))
    return server
