"""Multi-tenant asyncio serving core for ranking queries.

The ROADMAP's north star is serving the paper's top-k semantics to
many concurrent callers; this package is the load-bearing layer in
front of :class:`repro.engine.database.ProbabilisticDatabase` that
keeps those queries correct and responsive under overload and partial
failure, using only stdlib asyncio:

* :mod:`repro.serve.admission` — a bounded in-system limit plus
  per-tenant token-bucket quotas; excess load is shed synchronously
  with a typed :class:`~repro.exceptions.OverloadedError` reason, not
  queued without bound;
* :mod:`repro.serve.coalesce` — identical in-flight queries (same
  dataset digest, ``k``, method, options) share one kernel execution
  and one answer digest;
* :mod:`repro.serve.core` — :class:`ServingCore` ties admission,
  coalescing, deadline propagation, the circuit-breaker board, and
  graceful drain together; every request resolves to exactly one
  typed :class:`ServeResponse`;
* :mod:`repro.serve.transport` — a line-JSON batch driver and TCP
  server behind the ``repro serve`` CLI;
* :mod:`repro.serve.admin` — the admin plane: ``/metrics`` (live
  OpenMetrics scrape with exemplars), ``/healthz``, drain-aware
  ``/readyz``, ``/slo`` burn-rate states, and ``/debug/flight``
  recorder dumps, served over minimal HTTP on a second port.

Everything is observable through :mod:`repro.obs`: a queue-depth
gauge, shed/coalesced counters, per-tenant latency histograms, and
trace ids spanning admission through kernel execution.  See
``docs/serving.md`` for the architecture and the overload contract.
"""

from repro.serve.admin import serve_admin
from repro.serve.admission import AdmissionController, TokenBucket
from repro.serve.coalesce import RequestCoalescer, coalesce_key
from repro.serve.core import ServeRequest, ServeResponse, ServingCore
from repro.serve.settings import ServeSettings
from repro.serve.transport import handle_line, run_batch, serve_tcp

__all__ = [
    "AdmissionController",
    "RequestCoalescer",
    "ServeRequest",
    "ServeResponse",
    "ServeSettings",
    "ServingCore",
    "TokenBucket",
    "coalesce_key",
    "handle_line",
    "run_batch",
    "serve_admin",
    "serve_tcp",
]
