"""Admission control: bounded occupancy and per-tenant quotas.

The first gate a request meets.  Two independent limits apply, both
checked synchronously — a request is either admitted immediately or
shed immediately with a typed reason; nothing ever *waits* here, so
overload cannot build an invisible queue:

* the **system bound**: at most ``queue_limit`` admitted-but-
  unresolved requests, shed reason ``queue_full``;
* the **tenant quota**: a token bucket per tenant (sustained ``rate``
  requests/second, ``burst`` capacity), shed reason ``quota``.

Both use an injectable monotonic clock (RPR004) so quota refill and
the tests that drive it are wall-clock-free.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.exceptions import OverloadedError
from repro.obs import count, get_registry
from repro.obs.logging import get_logger

__all__ = ["AdmissionController", "TokenBucket"]

_log = get_logger("repro.serve.admission")


class TokenBucket:
    """The classic token bucket: ``rate`` tokens/second, ``burst`` cap.

    Starts full.  :meth:`take` refills lazily from the elapsed clock
    time, then spends one token if one is available.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = burst
        self._refilled_at = clock()

    @property
    def tokens(self) -> float:
        """Tokens available right now (after a lazy refill)."""
        self._refill()
        return self._tokens

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._refilled_at
        if elapsed > 0.0:
            self._tokens = min(
                self.burst, self._tokens + elapsed * self.rate
            )
        self._refilled_at = now

    def take(self) -> bool:
        """Spend one token; ``False`` means the quota is exhausted."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


class AdmissionController:
    """Synchronous admit-or-shed decisions for the serving core.

    Usage is strictly paired: every successful :meth:`admit` must be
    followed by exactly one :meth:`release` when the request resolves
    (the serving core does this in a ``finally``).  ``serve.queue_depth``
    gauges the in-system count; the labeled ``serve.shed`` counter
    (one ``reason`` series per shed cause) counts every shed decision.
    """

    def __init__(
        self,
        *,
        queue_limit: int,
        quota_for: Callable[[str], tuple[float, float]],
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.queue_limit = queue_limit
        self._quota_for = quota_for
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._in_system = 0
        self._draining = False
        # Publish the zero depth up front: a scrape before the first
        # request must read 0, not an unset gauge.
        self.publish_depth()

    @property
    def in_system(self) -> int:
        """Requests admitted and not yet released."""
        return self._in_system

    @property
    def draining(self) -> bool:
        """Whether new admissions are refused (shutdown in progress)."""
        return self._draining

    def start_draining(self) -> None:
        """Refuse all further admissions (shed reason ``draining``)."""
        self._draining = True
        _log.info("serve.draining", in_system=self._in_system)
        self.publish_depth()

    def bucket(self, tenant: str) -> TokenBucket:
        """The tenant's quota bucket, created on first sight."""
        existing = self._buckets.get(tenant)
        if existing is None:
            rate, burst = self._quota_for(tenant)
            existing = TokenBucket(rate, burst, clock=self._clock)
            self._buckets[tenant] = existing
        return existing

    def _shed(self, reason: str, tenant: str, message: str) -> None:
        count("serve.shed", labels={"reason": reason})
        # A shed request never enters the system, but the gauge must
        # still be fresh at the moment a scrape observes the shed.
        self.publish_depth()
        _log.warning(
            "serve.shed",
            reason=reason,
            tenant=tenant,
            in_system=self._in_system,
        )
        raise OverloadedError(message, reason=reason, tenant=tenant)

    def admit(self, tenant: str) -> None:
        """Admit one request or raise a typed ``OverloadedError``.

        Checks run cheapest-first: the drain flag, then the system
        bound, then the tenant's bucket — a drained or full system
        never spends tenant tokens.
        """
        if self._draining:
            self._shed(
                "draining",
                tenant,
                "the serving core is draining; not admitting requests",
            )
        if self._in_system >= self.queue_limit:
            self._shed(
                "queue_full",
                tenant,
                f"{self._in_system} requests in the system "
                f"(limit {self.queue_limit})",
            )
        if not self.bucket(tenant).take():
            self._shed(
                "quota",
                tenant,
                f"tenant {tenant!r} exhausted its request quota",
            )
        self._in_system += 1
        count("serve.admitted")
        self.publish_depth()

    def release(self) -> None:
        """Mark one admitted request as resolved."""
        self._in_system = max(0, self._in_system - 1)
        self.publish_depth()

    def publish_depth(self) -> None:
        """Refresh the ``serve.queue_depth`` gauge from the true count.

        Called on every transition — construction, admit, shed,
        release, drain — so a scrape between requests always reads
        the current depth, never the depth as of the last admission.
        """
        registry = get_registry()
        if registry.enabled:
            registry.gauge("serve.queue_depth").set(self._in_system)
