"""Request coalescing: identical in-flight queries run once.

A ranking query is a pure function of (dataset contents, ``k``,
method, options), and the capture layer already computes a stable
content digest per relation — so two requests with the same key can
share one kernel execution bit-for-bit.  The first arrival becomes the
**leader** and runs the query; arrivals while it is in flight become
**followers** and await the leader's outcome future.

Outcomes are stored as ``("ok", result)`` / ``("error", error)``
tuples rather than via ``Future.set_exception`` — a future holding an
exception that no follower ever awaits would trigger Python's
"exception was never retrieved" warning; a tuple is inert.

Single-threaded by design: all methods must be called from the event
loop thread (the serving core's), so no locking is needed.
"""

from __future__ import annotations

import asyncio
import json
from typing import Mapping

from repro.obs import count

__all__ = ["RequestCoalescer", "coalesce_key"]


def coalesce_key(
    dataset_digest: str,
    k: int,
    method: str,
    options: Mapping[str, object],
) -> str:
    """The canonical identity of a query for coalescing purposes.

    Options are serialised as sorted-key JSON so dict ordering never
    splits identical queries; an option that does not serialise (an
    injected object, say) degrades to its ``repr`` via ``default=repr``
    — a safe over-approximation that can only *prevent* coalescing,
    never wrongly merge distinct queries with differing reprs.
    """
    canonical = json.dumps(
        dict(options), sort_keys=True, default=repr
    )
    return f"{dataset_digest}:{k}:{method}:{canonical}"


class RequestCoalescer:
    """In-flight deduplication keyed by :func:`coalesce_key`."""

    def __init__(self) -> None:
        self._inflight: dict[str, asyncio.Future] = {}

    @property
    def inflight(self) -> int:
        """Distinct query executions currently in flight."""
        return len(self._inflight)

    def join(self, key: str) -> tuple[bool, asyncio.Future]:
        """Attach to the in-flight execution of ``key``.

        Returns ``(is_leader, outcome_future)``.  The leader MUST
        eventually call :meth:`resolve` with the outcome tuple (the
        serving core does so in a ``finally``); followers only await
        the future.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            count("serve.coalesced")
            return False, existing
        future: asyncio.Future = (
            asyncio.get_running_loop().create_future()
        )
        self._inflight[key] = future
        count("serve.coalesce.leaders")
        return True, future

    def resolve(self, key: str, outcome: tuple[str, object]) -> None:
        """Publish the leader's outcome and retire the key."""
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_result(outcome)

    def abandon_all(self) -> int:
        """Resolve every in-flight future as drained (for shutdown).

        Returns how many executions were abandoned.  Followers see a
        ``("drained", None)`` outcome and shed; this is the drain
        deadline's last resort, not the normal path.
        """
        abandoned = 0
        for key in list(self._inflight):
            future = self._inflight.pop(key)
            if not future.done():
                future.set_result(("drained", None))
                abandoned += 1
        return abandoned
